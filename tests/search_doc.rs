//! `docs/SEARCH.md` is a *test-enforced* architecture contract, in the
//! same spirit as `docs/OBSERVABILITY.md`: every named invariant,
//! frontier counter, CLI knob, and schema version the document states
//! is cross-referenced here against the code registries, so the
//! document cannot silently drift from the implementation.

use aceso::obs::schema::COUNTERS;
use aceso::obs::NONDETERMINISTIC_COUNTERS;
use aceso::search::CHECKPOINT_SCHEMA_VERSION;

const DOC_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/SEARCH.md");

fn doc() -> String {
    std::fs::read_to_string(DOC_PATH).unwrap_or_else(|e| panic!("cannot read {DOC_PATH}: {e}"))
}

/// Every `INV-<NAME>` token in `text`, deduplicated.
fn inv_tokens(text: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut i = 0;
    while let Some(pos) = text[i..].find("INV-") {
        let start = i + pos + "INV-".len();
        let name: String = text[start..]
            .chars()
            .take_while(|c| c.is_ascii_uppercase())
            .collect();
        i = start;
        if !name.is_empty() && !out.contains(&name) {
            out.push(name);
        }
    }
    out
}

/// The frontier counters must exist in the schema registry and be
/// documented by name, and every counter the schema declares
/// non-deterministic must be called out.
#[test]
fn doc_names_every_frontier_and_nondeterministic_counter() {
    let doc = doc();
    for name in ["search_worker_batches", "search_steals"] {
        assert!(
            COUNTERS.iter().any(|(n, _)| *n == name),
            "frontier counter `{name}` is gone from the schema registry — \
             update docs/SEARCH.md and this test together"
        );
        assert!(
            doc.contains(&format!("`{name}`")),
            "docs/SEARCH.md is missing frontier counter `{name}`"
        );
    }
    for name in NONDETERMINISTIC_COUNTERS {
        assert!(
            doc.contains(&format!("`{name}`")),
            "docs/SEARCH.md must document the non-deterministic counter `{name}`"
        );
    }
}

/// The stated checkpoint schema version must be the code's.
#[test]
fn doc_states_current_checkpoint_schema_version() {
    assert!(
        doc().contains(&format!(
            "checkpoint schema version: {CHECKPOINT_SCHEMA_VERSION}"
        )),
        "docs/SEARCH.md must state `checkpoint schema version: \
         {CHECKPOINT_SCHEMA_VERSION}` (crates/core/src/checkpoint.rs)"
    );
}

/// The worker-count knob is documented under both of its spellings.
#[test]
fn doc_covers_the_worker_count_knob() {
    let doc = doc();
    for needle in ["--search-threads", "ACESO_SEARCH_THREADS", "1..=64"] {
        assert!(
            doc.contains(needle),
            "docs/SEARCH.md must document the worker-count knob: missing `{needle}`"
        );
    }
}

/// Invariant anchors stay in sync in both directions: every `INV-` the
/// core sources cite is defined in the document, and every `INV-` the
/// document defines is cited by at least one source file (a stale
/// anchor in either place is drift).
#[test]
fn invariant_anchors_match_the_code() {
    let doc_invs = inv_tokens(&doc());
    assert!(
        !doc_invs.is_empty(),
        "docs/SEARCH.md must define INV- invariant anchors"
    );

    let core_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/core/src");
    let mut code_invs: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(core_dir).expect("core src listable") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|x| x == "rs") {
            let text = std::fs::read_to_string(&path).expect("source readable");
            for inv in inv_tokens(&text) {
                if !code_invs.contains(&inv) {
                    code_invs.push(inv);
                }
            }
        }
    }
    for inv in &code_invs {
        assert!(
            doc_invs.contains(inv),
            "crates/core cites INV-{inv} but docs/SEARCH.md never defines it"
        );
    }
    for inv in &doc_invs {
        assert!(
            code_invs.contains(inv),
            "docs/SEARCH.md defines INV-{inv} but no crates/core source cites it"
        );
    }
}

/// The document points at the tests that actually enforce its claims.
#[test]
fn doc_references_its_enforcement_tests() {
    let doc = doc();
    for needle in [
        "tests/search_golden.rs",
        "tests/checkpoint_resume.rs",
        "steal_on_empty_is_exercised_and_counted",
        "NONDETERMINISTIC_COUNTERS",
    ] {
        assert!(
            doc.contains(needle),
            "docs/SEARCH.md must reference its enforcement surface: missing `{needle}`"
        );
    }
}
