//! `docs/STORE.md` is a *test-enforced* format and architecture
//! contract, in the same spirit as `docs/SERVER.md` /
//! `tests/serve_doc.rs`: every invariant anchor, store counter, CLI
//! flag, and version number the document states is cross-referenced
//! here against the code, so the document cannot silently drift from
//! the implementation.

use aceso::obs::schema::{COUNTERS, EVENTS};
use aceso::obs::NONDETERMINISTIC_COUNTERS;
use aceso::store::STORE_SCHEMA_VERSION;

const DOC_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/STORE.md");

fn doc() -> String {
    std::fs::read_to_string(DOC_PATH).unwrap_or_else(|e| panic!("cannot read {DOC_PATH}: {e}"))
}

/// The document with runs of whitespace collapsed, so assertions can
/// match phrases that wrap across hard line breaks.
fn doc_flat() -> String {
    doc().split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Every `INV-<NAME>` token in `text`, deduplicated (same scan as
/// `tests/serve_doc.rs`).
fn inv_tokens(text: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut i = 0;
    while let Some(pos) = text[i..].find("INV-") {
        let start = i + pos + "INV-".len();
        let mut name: String = text[start..]
            .chars()
            .take_while(|c| c.is_ascii_uppercase() || *c == '-')
            .collect();
        i = start;
        while name.ends_with('-') {
            name.pop();
        }
        if !name.is_empty() && !out.contains(&name) {
            out.push(name);
        }
    }
    out
}

/// The store counters must exist in the schema registry, stay
/// deterministic (a fixed request sequence against a fixed directory
/// always produces the same values), and be documented by name; the
/// `store_degraded` event and both its fields likewise.
#[test]
fn doc_names_every_store_counter_and_event() {
    let doc = doc();
    for name in [
        "store_hits",
        "store_misses",
        "store_writes",
        "store_evictions",
        "store_rejected",
    ] {
        assert!(
            COUNTERS.iter().any(|(n, _)| *n == name),
            "store counter `{name}` is gone from the schema registry — \
             update docs/STORE.md and this test together"
        );
        assert!(
            !NONDETERMINISTIC_COUNTERS.contains(&name),
            "store counter `{name}` is deterministic by contract and must \
             stay out of NONDETERMINISTIC_COUNTERS"
        );
        assert!(
            doc.contains(&format!("`{name}`")),
            "docs/STORE.md is missing store counter `{name}`"
        );
    }
    let spec = EVENTS
        .iter()
        .find(|s| s.kind == "store_degraded")
        .expect("store_degraded is a registered event kind");
    for field in ["file", "reason"] {
        assert!(
            spec.fields.iter().any(|f| f.name == field),
            "store_degraded must carry the `{field}` field"
        );
    }
    assert!(
        doc.contains("`store_degraded`"),
        "docs/STORE.md must document the store_degraded event"
    );
}

/// The stated store schema version must be the code's.
#[test]
fn doc_states_the_current_store_schema_version() {
    assert!(
        doc_flat().contains(&format!("Store schema version: {STORE_SCHEMA_VERSION}")),
        "docs/STORE.md must state the current store schema version \
         ({STORE_SCHEMA_VERSION}, aceso_store::STORE_SCHEMA_VERSION)"
    );
}

/// The store flags are documented in both the doc and the usage text.
#[test]
fn doc_covers_the_store_flags() {
    let doc = doc();
    for flag in ["--store-dir", "--store-budget-bytes", "--dir"] {
        assert!(
            doc.contains(flag),
            "docs/STORE.md must document the `{flag}` flag"
        );
        assert!(
            aceso::cli::USAGE.contains(flag),
            "the aceso binary must advertise `{flag}` (aceso::cli::USAGE)"
        );
    }
    for subcommand in ["store ls", "store verify", "store prune"] {
        assert!(
            aceso::cli::USAGE.contains("(ls | verify | prune)")
                || aceso::cli::USAGE.contains(subcommand),
            "the aceso binary must advertise `aceso {subcommand}`"
        );
    }
}

/// Invariant anchors stay in sync in both directions: every `INV-STORE`
/// anchor the store sources cite is defined in the document, and every
/// one the document defines is cited by at least one store source file.
#[test]
fn invariant_anchors_match_the_code() {
    let doc_invs = inv_tokens(&doc());
    for required in ["STORE-ATOMIC", "STORE-DEGRADE", "STORE-BITEXACT"] {
        assert!(
            doc_invs.iter().any(|i| i == required),
            "docs/STORE.md must define INV-{required}"
        );
    }

    let store_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/store/src");
    let mut code_invs: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(store_dir).expect("store src listable") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|x| x == "rs") {
            let text = std::fs::read_to_string(&path).expect("source readable");
            for inv in inv_tokens(&text) {
                if !code_invs.contains(&inv) {
                    code_invs.push(inv);
                }
            }
        }
    }
    for inv in &code_invs {
        assert!(
            doc_invs.contains(inv),
            "crates/store cites INV-{inv} but docs/STORE.md never defines it"
        );
    }
    for inv in doc_invs.iter().filter(|i| i.starts_with("STORE")) {
        assert!(
            code_invs.contains(inv),
            "docs/STORE.md defines INV-{inv} but no crates/store source cites it"
        );
    }
}

/// The document points at the tests and harnesses that actually enforce
/// its claims.
#[test]
fn doc_references_its_enforcement_surface() {
    let doc = doc();
    for needle in [
        "tests/store_doc.rs",
        "tests/store.rs",
        "zoo_corpus_round_trips_bit_identically",
        "concurrent_daemons_share_one_store_dir",
        "every_truncation_degrades_typed",
        "every_byte_flip_degrades_or_roundtrips",
        "store_precision_mismatch_is_rejected_not_merged",
        "no_counter_is_silently_dead",
        "serve_bench restart",
        "obs_check",
        "aceso_util::retention",
    ] {
        assert!(
            doc.contains(needle),
            "docs/STORE.md must reference its enforcement surface: missing `{needle}`"
        );
    }
}
