//! Loopback integration tests for the serve daemon (`aceso-serve`).
//!
//! The central claim under test: **serving a search changes nothing about
//! its result**. For iteration-budget requests, a served response must be
//! bit-identical to a direct in-process `AcesoSearch::run_observed` run —
//! the event stream byte-for-byte, every deterministic counter, the best
//! configuration's fingerprint, and the predicted time's bits — even with
//! eight clients in flight at once sharing one profile cache.

use aceso::obs::Counter;
use aceso::prelude::*;
use aceso::search::{SearchStep, CHECKPOINT_SCHEMA_VERSION};
use aceso::serve::{
    self, ClientError, FaultMode, FaultProxy, Request, Response, ServeOptions, Server,
};
use aceso::serve::{
    read_frame, spool_path, write_frame, WireError, MAX_FRAME_BYTES, PIPELINE_DEPTH,
};
use aceso::util::json::{obj, Value};
use std::io::Write as _;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A per-test scratch directory under the system temp dir.
fn temp_spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aceso-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp spool dir");
    dir
}

/// Waits (briefly) for a spool file to disappear. The server unlinks
/// the spool *after* the result frame reaches the kernel, so the client
/// can observe its response a beat before the deletion lands; the
/// contract is "deleted once the client has the result", not "deleted
/// before the result is readable".
fn assert_spool_removed(path: &Path, ctx: &str) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while path.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "{ctx}: spool {} must be removed once the client has the result",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Binds an ephemeral-port daemon and runs it on a background thread.
fn start(opts: ServeOptions) -> (String, std::thread::JoinHandle<aceso::obs::ObsReport>) {
    let server = Server::bind("127.0.0.1:0", opts).expect("binds an ephemeral port");
    let addr = server.local_addr().to_string();
    (addr, std::thread::spawn(move || server.run()))
}

/// Runs the request's search directly through the library, exactly as the
/// server does (same `Request::search_options` mapping).
fn direct_run(req: &Request) -> (aceso::search::SearchResult, aceso::obs::ObsReport) {
    let model = aceso::model::zoo::by_name(&req.model).expect("zoo model");
    let cluster = ClusterSpec::v100_gpus(req.gpus);
    let db = ProfileDb::build(&model, &cluster);
    AcesoSearch::new(&model, &cluster, &db, req.search_options())
        .run_observed(true)
        .expect("direct search succeeds")
}

/// Drops the only nondeterministic parts of a metric snapshot: the
/// wall-clock field and the latency histogram.
fn masked(snapshot: &Value) -> Value {
    let Value::Object(fields) = snapshot else {
        return snapshot.clone();
    };
    let fields = fields
        .iter()
        .filter(|(k, _)| k != "wall_time_secs")
        .map(|(k, v)| {
            if k == "histograms" {
                if let Value::Object(hists) = v {
                    let kept = hists
                        .iter()
                        .filter(|(name, _)| name != "eval_latency_us")
                        .cloned()
                        .collect();
                    return (k.clone(), Value::Object(kept));
                }
            }
            (k.clone(), v.clone())
        })
        .collect();
    Value::Object(fields)
}

/// Asserts a served response is bit-identical to the direct library run.
fn assert_matches_direct(resp: &Response, req: &Request, ctx: &str) {
    let (want, report) = direct_run(req);
    assert_eq!(
        resp.events_jsonl(),
        report.events_jsonl(),
        "{ctx}: event stream must be byte-identical"
    );
    assert_eq!(
        masked(&resp.metrics).to_string_compact(),
        masked(&Value::parse(&report.metrics_json()).unwrap()).to_string_compact(),
        "{ctx}: masked metric snapshot must match"
    );
    let bits = resp
        .result
        .field("best_time_bits")
        .unwrap()
        .as_u64()
        .unwrap();
    assert_eq!(
        bits,
        want.best_time.to_bits(),
        "{ctx}: best_time must match to the bit"
    );
    assert_eq!(
        resp.result
            .field("best_fingerprint")
            .unwrap()
            .as_u64()
            .unwrap(),
        want.best_config.semantic_hash(),
        "{ctx}: best configuration fingerprint"
    );
    assert_eq!(
        resp.result.field("explored").unwrap().as_u64().unwrap(),
        want.explored as u64,
        "{ctx}: explored count"
    );
}

/// Eight clients at once, four distinct (model, gpus) keys — every served
/// response must be bit-identical to its direct library run, while pairs
/// of identical requests share one cached profile build.
#[test]
fn concurrent_requests_are_bit_identical_to_direct_runs() {
    let (addr, handle) = start(ServeOptions {
        workers: 8,
        ..ServeOptions::default()
    });
    let requests: Vec<Request> = [
        ("deepnet-8l", 2, 11u64),
        ("deepnet-8l", 2, 12),
        ("deepnet-12l", 2, 13),
        ("deepnet-12l", 2, 14),
        ("deepnet-8l", 4, 15),
        ("deepnet-8l", 4, 16),
        ("deepnet-16l", 4, 17),
        ("deepnet-16l", 4, 18),
    ]
    .into_iter()
    .map(|(model, gpus, seed)| Request {
        model: model.into(),
        gpus,
        seed,
        max_iterations: 8,
        ..Request::default()
    })
    .collect();

    let responses: Vec<Response> = std::thread::scope(|s| {
        let handles: Vec<_> = requests
            .iter()
            .map(|req| {
                let addr = addr.clone();
                s.spawn(move || serve::submit(&addr, req).expect("submit succeeds"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, (resp, req)) in responses.iter().zip(&requests).enumerate() {
        assert_matches_direct(resp, req, &format!("request {i} ({})", req.model));
    }

    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::ServeRequests), 8);
    assert_eq!(report.counter(Counter::ServeRejected), 0);
    // Four distinct (model, cluster) keys → four builds; the duplicate
    // requests share them (as hits or by waiting out a concurrent build).
    assert_eq!(report.counter(Counter::ProfileCacheMisses), 4);
    assert_eq!(report.counter(Counter::ProfileCacheHits), 4);
}

/// A repeated request is a profile-cache hit with measurably lower
/// profiling latency: the server reports the profiling phase's wall
/// clock in the result frame (`profile_micros`), and a hit collapses it
/// from a full `ProfileDb::build` to a map probe. (End-to-end latency is
/// search-dominated and noisy in a test run; `serve_bench` reports the
/// end-to-end cold/warm numbers.)
#[test]
fn repeated_request_is_a_faster_cache_hit() {
    let (addr, handle) = start(ServeOptions::default());
    let req = Request {
        model: "gpt3-0.35b".into(),
        gpus: 2,
        max_iterations: 2,
        ..Request::default()
    };
    let cold = serve::submit(&addr, &req).expect("cold submit");
    let warm = serve::submit(&addr, &req).expect("warm submit");
    let profile_micros = |r: &Response| r.result.field("profile_micros").unwrap().as_u64().unwrap();

    assert_eq!(cold.cache, "miss");
    assert_eq!(warm.cache, "hit");
    assert!(
        profile_micros(&warm) < profile_micros(&cold),
        "cache hit must cut profiling latency: cold {}µs vs warm {}µs",
        profile_micros(&cold),
        profile_micros(&warm)
    );
    // Bit-equality holds across the hit/miss divide too.
    assert_eq!(cold.events_jsonl(), warm.events_jsonl());
    assert_eq!(
        cold.result
            .field("best_time_bits")
            .unwrap()
            .as_u64()
            .unwrap(),
        warm.result
            .field("best_time_bits")
            .unwrap()
            .as_u64()
            .unwrap()
    );

    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::ProfileCacheHits), 1);
    assert_eq!(report.counter(Counter::ProfileCacheMisses), 1);
}

/// Reads the `code` field of an error frame.
fn error_code(frame: &Value) -> &str {
    assert_eq!(frame.field("type").unwrap().as_str().unwrap(), "error");
    frame.field("code").unwrap().as_str().unwrap()
}

/// Malformed frames get typed rejections: bad JSON keeps the connection
/// (framing stayed aligned), an oversize prefix ends it, and both count
/// as `serve_rejected`.
#[test]
fn malformed_frames_are_rejected_with_typed_errors() {
    let (addr, handle) = start(ServeOptions::default());

    // Bad JSON payload: typed error, connection survives for a retry.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(&3u32.to_be_bytes()).unwrap();
    stream.write_all(b"{{{").unwrap();
    stream.flush().unwrap();
    let reply = read_frame(&mut stream).expect("error frame");
    assert_eq!(error_code(&reply), "bad-frame");
    write_frame(&mut stream, &obj([("type", Value::Str("stats".into()))])).unwrap();
    let stats = read_frame(&mut stream).expect("stats after bad frame");
    assert_eq!(stats.field("type").unwrap().as_str().unwrap(), "stats");
    drop(stream);

    // Oversize length prefix: typed error, then the server hangs up.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .write_all(&((MAX_FRAME_BYTES + 1) as u32).to_be_bytes())
        .unwrap();
    stream.flush().unwrap();
    let reply = read_frame(&mut stream).expect("error frame");
    assert_eq!(error_code(&reply), "oversize-frame");
    assert!(matches!(read_frame(&mut stream), Err(WireError::Closed)));

    // Unknown frame type and wrong protocol version are typed too.
    let mut stream = TcpStream::connect(&addr).unwrap();
    write_frame(&mut stream, &obj([("type", Value::Str("dance".into()))])).unwrap();
    assert_eq!(
        error_code(&read_frame(&mut stream).unwrap()),
        "unknown-frame-type"
    );
    let mut bad_version = aceso::util::json::ToJson::to_json_value(&Request {
        model: "deepnet-8l".into(),
        ..Request::default()
    });
    if let Value::Object(fields) = &mut bad_version {
        for (k, v) in fields.iter_mut() {
            if k == "protocol_version" {
                *v = Value::UInt(999);
            }
        }
    }
    write_frame(&mut stream, &bad_version).unwrap();
    assert_eq!(
        error_code(&read_frame(&mut stream).unwrap()),
        "bad-protocol-version"
    );
    drop(stream);

    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::ServeRequests), 0);
    assert_eq!(report.counter(Counter::ServeRejected), 4);
}

/// With zero workers every well-formed request bounces with
/// `rejected-busy` — the backpressure path, deterministically.
#[test]
fn zero_workers_reject_with_busy() {
    let (addr, handle) = start(ServeOptions {
        workers: 0,
        ..ServeOptions::default()
    });
    let err = serve::submit(
        &addr,
        &Request {
            model: "deepnet-8l".into(),
            gpus: 2,
            ..Request::default()
        },
    )
    .expect_err("must be rejected");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, "rejected-busy"),
        other => panic!("expected a server rejection, got {other:?}"),
    }
    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::ServeRequests), 0);
    assert_eq!(report.counter(Counter::ServeRejected), 1);
}

/// Server-side resource caps bound what one request may ask for: an
/// absurd deepnet depth is rejected before the operator graph is even
/// built, and oversized gpus / iteration budgets bounce the same way,
/// all counting as `serve_rejected`.
#[test]
fn resource_caps_reject_oversized_requests() {
    let (addr, handle) = start(ServeOptions {
        max_deepnet_layers: Some(64),
        max_gpus: Some(8),
        max_iterations: Some(100),
        ..ServeOptions::default()
    });
    let expect_bad_request =
        |req: &Request| match serve::submit(&addr, req).expect_err("must be rejected") {
            ClientError::Server { code, .. } => assert_eq!(code, "bad-request"),
            other => panic!("expected a server rejection, got {other:?}"),
        };
    // Would be billions of ops if the graph were built; the rejection
    // must come back without the allocation (instantly).
    expect_bad_request(&Request {
        model: "deepnet-999999999l".into(),
        gpus: 2,
        ..Request::default()
    });
    expect_bad_request(&Request {
        model: "deepnet-8l".into(),
        gpus: 16,
        ..Request::default()
    });
    expect_bad_request(&Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 101,
        ..Request::default()
    });
    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::ServeRequests), 0);
    assert_eq!(report.counter(Counter::ServeRejected), 3);
}

/// Oversized request budgets are refused before any work happens.
#[test]
fn over_budget_requests_are_refused() {
    let (addr, handle) = start(ServeOptions {
        max_budget_secs: Some(10),
        ..ServeOptions::default()
    });
    let err = serve::submit(
        &addr,
        &Request {
            model: "deepnet-8l".into(),
            gpus: 2,
            budget_secs: Some(11),
            ..Request::default()
        },
    )
    .expect_err("must be rejected");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, "budget-too-large"),
        other => panic!("expected a server rejection, got {other:?}"),
    }
    serve::shutdown(&addr).expect("shutdown");
    handle.join().unwrap();
}

/// Shutdown drains: the daemon acknowledges, finishes, and the listener
/// goes away; the drain report carries the session's counters.
#[test]
fn graceful_shutdown_drains_and_reports() {
    let (addr, handle) = start(ServeOptions::default());
    let req = Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 4,
        ..Request::default()
    };
    serve::submit(&addr, &req).expect("submit");
    serve::shutdown(&addr).expect("shutdown acknowledged");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::ServeRequests), 1);
    assert_eq!(report.counter(Counter::ProfileCacheMisses), 1);
    // The listener is gone: a fresh connection cannot complete a request.
    match TcpStream::connect(&addr) {
        Err(_) => {}
        Ok(mut stream) => {
            // A connect may still succeed transiently (backlog); the
            // stream must be dead end-to-end though.
            let _ = write_frame(&mut stream, &obj([("type", Value::Str("stats".into()))]));
            assert!(read_frame(&mut stream).is_err(), "daemon must be gone");
        }
    }
}

/// A connection that goes quiet trips the server's i/o deadline and is
/// cut loose with a typed `timeout` error — whether it sent nothing at
/// all or stalled mid-frame — and each counts as `serve_rejected`.
#[test]
fn idle_connections_time_out_with_a_typed_error() {
    let (addr, handle) = start(ServeOptions {
        io_timeout: Some(Duration::from_millis(200)),
        ..ServeOptions::default()
    });

    // Connect and send nothing: the read deadline expires.
    let mut stream = TcpStream::connect(&addr).unwrap();
    let reply = read_frame(&mut stream).expect("typed timeout frame");
    assert_eq!(error_code(&reply), "timeout");
    // A stalled read may have consumed part of a frame, so the server
    // drops the connection rather than trust its framing.
    assert!(read_frame(&mut stream).is_err());

    // Stall mid-frame: half a length prefix, then silence.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(&[0, 0]).unwrap();
    stream.flush().unwrap();
    let reply = read_frame(&mut stream).expect("typed timeout frame");
    assert_eq!(error_code(&reply), "timeout");

    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::ServeRejected), 2);
    assert_eq!(report.counter(Counter::ServeRequests), 0);
}

/// The full crash-recovery loop: a connection severed mid-response loses
/// the client but not the work. The retry (bounded backoff riding out
/// the still-occupied worker slot) resumes from the spooled checkpoint
/// and gets a response bit-identical to a never-interrupted direct run.
#[test]
fn severed_connection_resumes_from_spool_on_retry() {
    let spool = temp_spool("sever");
    let (addr, handle) = start(ServeOptions {
        workers: 1,
        spool_dir: Some(spool.clone()),
        checkpoint_every: 1,
        ..ServeOptions::default()
    });
    let req = Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 8,
        seed: 21,
        request_id: Some("sever-job".into()),
        ..Request::default()
    };

    // First attempt through the fault proxy: the connection is severed
    // right after the two status frames, long before the result — the
    // wire view of a daemon crash or network partition.
    let proxy = FaultProxy::start(&addr, 2).expect("proxy starts");
    assert!(
        serve::submit(&proxy.addr(), &req).is_err(),
        "a severed submission must fail client-side"
    );

    // Retry directly at the daemon. The severed request still occupies
    // the only worker slot until its search finishes, so the retry
    // bounces on `rejected-busy` and backs off — exactly the loop
    // `submit_with_retries` exists for.
    let resp = serve::submit_with_retries(&addr, &req, 12).expect("retry succeeds");
    assert_matches_direct(&resp, &req, "resumed after a severed connection");
    // Success deletes the spool: the id is safe to reuse.
    assert_spool_removed(&spool_path(&spool, "sever-job"), "blocking sever");

    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::ServeRequests), 2);
    assert_eq!(report.counter(Counter::SearchResumed), 1);
    assert_eq!(report.counter(Counter::ClientRetries), 1);
    assert!(report.counter(Counter::CheckpointsWritten) >= 1);
    assert!(
        report.events_jsonl().contains("\"search_resumed\""),
        "the drain report must carry the resume event"
    );
    let _ = std::fs::remove_dir_all(&spool);
}

/// Spools survive the daemon itself: a checkpoint left by a previous
/// process (here: written directly, exactly as `--spool-dir` would) is
/// picked up by a freshly started daemon when the same request id is
/// resubmitted, and the resumed response is bit-identical.
#[test]
fn daemon_restart_resumes_a_preseeded_spool() {
    let spool = temp_spool("restart");
    let req = Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 8,
        seed: 33,
        request_id: Some("restart-job".into()),
        ..Request::default()
    };

    // The previous daemon's life, in miniature: run the same search the
    // server would and spool its first pause, then "crash".
    let model = aceso::model::zoo::by_name(&req.model).unwrap();
    let cluster = ClusterSpec::v100_gpus(req.gpus);
    let db = ProfileDb::build(&model, &cluster);
    let search = AcesoSearch::new(&model, &cluster, &db, req.search_options());
    let SearchStep::Paused(ckpt) = search.run_partial(true, 2).expect("partial run") else {
        panic!("an 8-iteration search must pause at bound 2");
    };
    std::fs::write(spool_path(&spool, "restart-job"), ckpt.to_json_string()).unwrap();

    // The restarted daemon finds the spool on resubmit and resumes.
    let (addr, handle) = start(ServeOptions {
        spool_dir: Some(spool.clone()),
        ..ServeOptions::default()
    });
    let resp = serve::submit(&addr, &req).expect("resubmit succeeds");
    assert_matches_direct(&resp, &req, "resumed across a daemon restart");

    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::SearchResumed), 1);
    assert_eq!(report.counter(Counter::ClientRetries), 1);
    assert!(report.events_jsonl().contains("\"search_resumed\""));
    let _ = std::fs::remove_dir_all(&spool);
}

/// A bad spool costs the saved work, never the request: corrupt JSON and
/// a future schema version both degrade to a fresh, still-bit-identical
/// run, each recorded as a `search_restarted` event in the drain report.
#[test]
fn bad_spools_degrade_to_fresh_runs() {
    let spool = temp_spool("bad");
    std::fs::write(spool_path(&spool, "garbage-job"), "{not json").unwrap();
    // A structurally valid checkpoint from a future schema version.
    let model = aceso::model::zoo::by_name("deepnet-8l").unwrap();
    let cluster = ClusterSpec::v100_gpus(2);
    let db = ProfileDb::build(&model, &cluster);
    let base = Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 8,
        seed: 44,
        ..Request::default()
    };
    let search = AcesoSearch::new(&model, &cluster, &db, base.search_options());
    let SearchStep::Paused(ckpt) = search.run_partial(true, 2).expect("partial run") else {
        panic!("must pause at bound 2");
    };
    let future = ckpt.to_json_string().replacen(
        &format!("\"schema_version\":{CHECKPOINT_SCHEMA_VERSION}"),
        "\"schema_version\":999",
        1,
    );
    assert!(
        future.contains("\"schema_version\":999"),
        "failed to forge a future-version checkpoint"
    );
    std::fs::write(spool_path(&spool, "future-job"), future).unwrap();

    let (addr, handle) = start(ServeOptions {
        spool_dir: Some(spool.clone()),
        ..ServeOptions::default()
    });
    for id in ["garbage-job", "future-job"] {
        let req = Request {
            request_id: Some(id.into()),
            ..base.clone()
        };
        let resp = serve::submit(&addr, &req)
            .unwrap_or_else(|e| panic!("{id}: a bad spool must not fail the request: {e}"));
        assert_matches_direct(&resp, &req, &format!("{id}: fresh run after bad spool"));
    }

    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::SearchResumed), 0);
    assert_eq!(report.counter(Counter::ClientRetries), 2);
    let events = report.events_jsonl();
    assert_eq!(
        events.matches("\"search_restarted\"").count(),
        2,
        "each bad spool must be recorded: {events}"
    );
    let _ = std::fs::remove_dir_all(&spool);
}

/// Spool hygiene: the TTL sweep prunes aged checkpoints (and torn-write
/// `.tmp` leftovers) while live spools survive — both when called
/// directly and as the daemon's start-up sweep.
#[test]
fn spool_ttl_sweep_prunes_aged_spools_and_keeps_live_ones() {
    let spool = temp_spool("ttl");
    let aged = spool_path(&spool, "aged-job");
    std::fs::write(&aged, "{}").unwrap();
    let tmp = aged.with_extension("ckpt.tmp");
    std::fs::write(&tmp, "{").unwrap();
    std::thread::sleep(Duration::from_millis(1200));
    let live = spool_path(&spool, "live-job");
    std::fs::write(&live, "{}").unwrap();
    let pruned = serve::sweep_spools(&spool, Duration::from_secs(1));
    assert_eq!(pruned, 2, "the aged spool and its tmp leftover go");
    assert!(!aged.exists());
    assert!(!tmp.exists());
    assert!(live.exists(), "a spool younger than the TTL survives");

    // The daemon runs the same sweep at start when --spool-ttl-secs is
    // set: the re-aged spool disappears without any request arriving.
    std::fs::write(&aged, "{}").unwrap();
    std::thread::sleep(Duration::from_millis(1200));
    let live2 = spool_path(&spool, "live-job-2");
    std::fs::write(&live2, "{}").unwrap();
    let (addr, handle) = start(ServeOptions {
        spool_dir: Some(spool.clone()),
        spool_ttl_secs: Some(1),
        ..ServeOptions::default()
    });
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while aged.exists() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(!aged.exists(), "daemon start must prune aged spools");
    assert!(live2.exists(), "daemon start must keep live spools");
    serve::shutdown(&addr).expect("shutdown");
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&spool);
}

/// Reactor options with sane test defaults.
fn reactor_opts() -> ServeOptions {
    ServeOptions {
        reactor: true,
        ..ServeOptions::default()
    }
}

/// The reactor front-end changes connection handling, never results:
/// sequential submissions and a pipelined batch are all bit-identical
/// to direct library runs (`docs/SERVER.md`, Determinism).
#[test]
fn reactor_responses_are_bit_identical_to_direct_runs() {
    let (addr, handle) = start(reactor_opts());
    let base = Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 8,
        ..Request::default()
    };

    // Sequential, untagged — the classic blocking-client shape.
    let seq = Request {
        seed: 11,
        ..base.clone()
    };
    let resp = serve::submit(&addr, &seq).expect("sequential submit");
    assert_matches_direct(&resp, &seq, "reactor sequential");

    // Pipelined, tagged — three requests written back to back on one
    // connection, responses routed by their request_id tags.
    let reqs: Vec<Request> = [21u64, 22, 23]
        .into_iter()
        .map(|seed| Request {
            seed,
            request_id: Some(format!("pipe-{seed}")),
            ..base.clone()
        })
        .collect();
    let outcomes = serve::submit_pipelined(&addr, &reqs).expect("pipelined submit");
    assert_eq!(outcomes.len(), 3);
    for ((id, outcome), req) in outcomes.iter().zip(&reqs) {
        assert_eq!(id, req.request_id.as_ref().unwrap());
        let resp = outcome.as_ref().unwrap_or_else(|e| panic!("{id}: {e}"));
        assert_matches_direct(resp, req, &format!("reactor pipelined {id}"));
    }

    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::ServeRequests), 4);
    assert_eq!(report.counter(Counter::ServeRejected), 0);
    // The 2nd/3rd pipelined requests joined a connection already
    // carrying work. (Timing-dependent, so >= 1, not an exact value.)
    assert!(report.counter(Counter::ServePipelinedRequests) >= 1);
}

/// INV-FAIRNESS, observably: while one connection pipelines a deep
/// queue, a fresh request on another connection is dispatched first and
/// each such preference is counted as a fairness deferral.
#[test]
fn reactor_counts_fairness_deferrals_and_pipelined_requests() {
    let (addr, handle) = start(ServeOptions {
        workers: 2,
        ..reactor_opts()
    });
    let base = Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 24,
        seed: 7,
        ..Request::default()
    };

    // `a2` carries a strictly larger iteration budget than its batch
    // mates, so it provably outlives `a1`: when `a1`'s worker slot
    // frees, the pipeliner connection still holds `a2` in flight with
    // `a3` queued behind it — the exact state INV-FAIRNESS defers.
    // (Equal budgets flake: both workers can finish inside one sweep,
    // leaving the connection momentarily idle and nothing to defer.)
    let long = Request {
        max_iterations: 128,
        ..base.clone()
    };
    let (pipelined, fresh) = std::thread::scope(|s| {
        let pipeliner = {
            let (addr, base, long) = (addr.clone(), base.clone(), long.clone());
            s.spawn(move || {
                let reqs: Vec<Request> = [("a1", &base), ("a2", &long), ("a3", &base)]
                    .into_iter()
                    .map(|(id, req)| Request {
                        request_id: Some(id.into()),
                        ..req.clone()
                    })
                    .collect();
                serve::submit_pipelined(&addr, &reqs).expect("pipelined batch")
            })
        };
        // Give the pipeliner a head start so its queue is deep when the
        // fresh single request arrives on a second connection.
        std::thread::sleep(Duration::from_millis(20));
        let fresh = serve::submit(&addr, &base).expect("fresh submit");
        (pipeliner.join().unwrap(), fresh)
    });

    // The fresh response is bit-identical to a direct run; so are the
    // pipelined ones to it (`a1`/`a3` are the identical request, `a2`
    // to its own direct run).
    assert_matches_direct(&fresh, &base, "fresh request beside a pipeliner");
    for (id, outcome) in &pipelined {
        let resp = outcome.as_ref().unwrap_or_else(|e| panic!("{id}: {e}"));
        if *id == "a2" {
            assert_matches_direct(resp, &long, "long pipelined request");
        } else {
            assert_eq!(
                resp.events_jsonl(),
                fresh.events_jsonl(),
                "{id}: identical request must produce identical bytes"
            );
        }
    }

    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::ServeRequests), 4);
    assert!(
        report.counter(Counter::ServePipelinedRequests) >= 1,
        "a2/a3 joined a busy connection"
    );
    assert!(
        report.counter(Counter::ServeFairnessDeferrals) >= 1,
        "dispatching the fresh request while a pipelined one waited \
         must be recorded as a deferral"
    );
}

/// INV-NONBLOCK's two halves, against an adversarial peer: a slow-loris
/// writer stalled mid-frame gets a typed `timeout` and is cut loose,
/// while a merely idle connection — quiet far past the same deadline —
/// is held and still served.
#[test]
fn reactor_times_out_slow_loris_but_holds_idle_connections() {
    let (addr, handle) = start(ServeOptions {
        io_timeout: Some(Duration::from_millis(100)),
        ..reactor_opts()
    });

    // The idle connection opens first and outlives everything below.
    let mut idle = TcpStream::connect(&addr).unwrap();

    // Slow loris: the proxy trickles the request one byte per 300 ms —
    // every inter-byte gap overshoots the 100 ms deadline mid-frame.
    let proxy = FaultProxy::start_with(
        &addr,
        FaultMode::SlowLoris {
            byte_delay: Duration::from_millis(300),
        },
    )
    .expect("proxy starts");
    let req = Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        ..Request::default()
    };
    match serve::submit(&proxy.addr(), &req).expect_err("must time out") {
        ClientError::Server { code, .. } => assert_eq!(code, "timeout"),
        other => panic!("expected a typed timeout, got {other:?}"),
    }

    // The idle connection has now been quiet for several deadlines; in
    // blocking mode it would be dead. The reactor still answers it.
    write_frame(&mut idle, &obj([("type", Value::Str("stats".into()))])).unwrap();
    let stats = read_frame(&mut idle).expect("idle connection must survive");
    assert_eq!(stats.field("type").unwrap().as_str().unwrap(), "stats");
    drop(idle);

    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::ServeRequests), 0);
    assert_eq!(report.counter(Counter::ServeRejected), 1);
}

/// A half-closed socket (client EOF after one request) is not an error:
/// the admitted request is answered bit-identically down the still-open
/// write side, then the server closes cleanly.
#[test]
fn reactor_half_close_completes_the_admitted_request() {
    let (addr, handle) = start(reactor_opts());
    let proxy = FaultProxy::start_with(&addr, FaultMode::HalfCloseAfter(1)).expect("proxy starts");
    let req = Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 8,
        seed: 5,
        request_id: Some("hc-1".into()),
        ..Request::default()
    };
    let swallowed = Request {
        request_id: Some("hc-2".into()),
        ..req.clone()
    };

    let mut stream = TcpStream::connect(proxy.addr()).unwrap();
    use aceso::util::json::ToJson as _;
    write_frame(&mut stream, &req.to_json_value()).unwrap();
    // The proxy forwards exactly one frame, then half-closes toward the
    // server; this second request never arrives.
    let _ = write_frame(&mut stream, &swallowed.to_json_value());

    let mut collector = serve::PipelineCollector::new(["hc-1".to_string()]).expect("collector");
    while !collector.is_complete() {
        let frame = read_frame(&mut stream).expect("response survives the half-close");
        collector.accept(&frame).expect("routes");
    }
    let outcomes = collector.into_outcomes();
    let resp = outcomes[0].1.as_ref().expect("admitted request succeeds");
    assert_matches_direct(resp, &req, "half-closed connection");
    // After the reply, the server closes its side too.
    assert!(matches!(
        read_frame(&mut stream),
        Err(WireError::Closed | WireError::Io(_))
    ));

    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::ServeRequests), 1);
}

/// A connection cut mid-pipeline loses its own client, never its
/// neighbours: a concurrent request on another connection completes
/// bit-identically and the daemon drains cleanly.
#[test]
fn reactor_mid_pipeline_cut_leaves_other_connections_intact() {
    let (addr, handle) = start(ServeOptions {
        workers: 2,
        ..reactor_opts()
    });
    let base = Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 8,
        seed: 9,
        ..Request::default()
    };

    let (cut, survivor) = std::thread::scope(|s| {
        let victim = {
            let (addr, base) = (addr.clone(), base.clone());
            s.spawn(move || {
                // Severed after 3 response frames — mid-way through the
                // first response, with the second request queued behind.
                let proxy = FaultProxy::start(&addr, 3).expect("proxy starts");
                let reqs: Vec<Request> = ["cut-a", "cut-b"]
                    .into_iter()
                    .map(|id| Request {
                        request_id: Some(id.into()),
                        ..base.clone()
                    })
                    .collect();
                serve::submit_pipelined(&proxy.addr(), &reqs)
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        let survivor = serve::submit(&addr, &base).expect("survivor submit");
        (victim.join().unwrap(), survivor)
    });

    assert!(cut.is_err(), "the severed pipeline must fail client-side");
    assert_matches_direct(&survivor, &base, "connection beside a severed pipeline");
    serve::shutdown(&addr).expect("shutdown");
    handle.join().unwrap();
}

/// The reactor honours the spool contract under connection loss: a
/// spooled request severed before its result frame drains leaves the
/// checkpoint on disk, and a retry resumes instead of restarting.
#[test]
fn reactor_severed_connection_resumes_from_spool() {
    let spool = temp_spool("reactor-sever");
    let (addr, handle) = start(ServeOptions {
        workers: 1,
        spool_dir: Some(spool.clone()),
        checkpoint_every: 1,
        ..reactor_opts()
    });
    let req = Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 8,
        seed: 21,
        request_id: Some("reactor-sever-job".into()),
        ..Request::default()
    };

    let proxy = FaultProxy::start(&addr, 2).expect("proxy starts");
    assert!(
        serve::submit(&proxy.addr(), &req).is_err(),
        "a severed submission must fail client-side"
    );
    let resp = serve::submit_with_retries(&addr, &req, 12).expect("retry succeeds");
    assert_matches_direct(&resp, &req, "reactor resume after severed connection");
    assert_spool_removed(&spool_path(&spool, "reactor-sever-job"), "reactor sever");

    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::ServeRequests), 2);
    assert_eq!(report.counter(Counter::SearchResumed), 1);
    assert!(report.counter(Counter::CheckpointsWritten) >= 1);
    let _ = std::fs::remove_dir_all(&spool);
}

/// `--max-connections` refuses connection N+1 with a typed
/// `connection-limit` error and closes it; freeing a slot re-admits.
#[test]
fn reactor_connection_limit_rejects_excess_connections() {
    let (addr, handle) = start(ServeOptions {
        max_connections: 2,
        ..reactor_opts()
    });
    let held_one = TcpStream::connect(&addr).unwrap();
    let held_two = TcpStream::connect(&addr).unwrap();
    // Let the reactor accept both holders before the third arrives.
    std::thread::sleep(Duration::from_millis(50));

    let mut excess = TcpStream::connect(&addr).unwrap();
    let reply = read_frame(&mut excess).expect("typed refusal frame");
    assert_eq!(error_code(&reply), "connection-limit");
    assert!(
        read_frame(&mut excess).is_err(),
        "refused connection closes"
    );

    // Dropping a holder frees its slot; a new connection is admitted
    // (poll briefly — the reactor notices the EOF on its next sweeps).
    drop(held_one);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let stats = loop {
        let mut retry = TcpStream::connect(&addr).unwrap();
        write_frame(&mut retry, &obj([("type", Value::Str("stats".into()))])).unwrap();
        match read_frame(&mut retry) {
            Ok(frame) if frame.field("type").unwrap().as_str().unwrap() == "stats" => break frame,
            _ if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("slot never freed: {other:?}"),
        }
    };
    assert_eq!(stats.field("type").unwrap().as_str().unwrap(), "stats");
    drop(held_two);

    // The dropped holders free their slots on the reactor's next
    // sweeps; poll past any `connection-limit` refusal in the interim.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match serve::shutdown(&addr) {
            Ok(()) => break,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("shutdown: {e:?}"),
        }
    }
    let report = handle.join().unwrap();
    assert!(report.counter(Counter::ServeRejected) >= 1);
}

/// The per-connection pipeline depth is a typed bound, not a hangup:
/// request `PIPELINE_DEPTH + 1` bounces with `rejected-busy` while the
/// first `PIPELINE_DEPTH` all complete on the same connection.
#[test]
fn reactor_pipeline_depth_rejects_excess_without_closing() {
    let (addr, handle) = start(ServeOptions {
        workers: 1,
        ..reactor_opts()
    });
    let reqs: Vec<Request> = (0..=PIPELINE_DEPTH)
        .map(|i| Request {
            model: "deepnet-8l".into(),
            gpus: 2,
            // The first request is deliberately slower than the time it
            // takes the remaining frames to arrive, so the connection's
            // queue really reaches the depth bound.
            max_iterations: if i == 0 { 16 } else { 1 },
            request_id: Some(format!("depth-{i}")),
            ..Request::default()
        })
        .collect();
    let outcomes = serve::submit_pipelined(&addr, &reqs).expect("pipelined batch");
    assert_eq!(outcomes.len(), PIPELINE_DEPTH + 1);
    for (id, outcome) in &outcomes[..PIPELINE_DEPTH] {
        assert!(outcome.is_ok(), "{id} must complete: {outcome:?}");
    }
    match &outcomes[PIPELINE_DEPTH].1 {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "rejected-busy"),
        other => panic!("request past the depth bound must bounce, got {other:?}"),
    }

    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(
        report.counter(Counter::ServeRequests),
        PIPELINE_DEPTH as u64
    );
    assert_eq!(report.counter(Counter::ServeRejected), 1);
}

/// Fleet smoke: 64 concurrent mixed connections — idle holders plus
/// single-shot submitters — against one reactor daemon, zero errors.
/// (`serve_bench fleet` scales the same shape to 512+ clients with
/// latency percentiles; `obs_check` gates the committed numbers.)
#[test]
fn reactor_fleet_smoke_sixty_four_clients() {
    let (addr, handle) = start(reactor_opts());
    // One warm-up so the fleet shares a built profile cache entry.
    let req = Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 1,
        ..Request::default()
    };
    serve::submit(&addr, &req).expect("warm-up");

    let clients = 64;
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        let mut submitters = Vec::new();
        for i in 0..clients {
            let (addr, req) = (addr.clone(), req.clone());
            let stop = stop.clone();
            let builder = std::thread::Builder::new().stack_size(256 * 1024);
            if i % 2 == 0 {
                builder
                    .spawn_scoped(s, move || {
                        let conn = TcpStream::connect(&addr).expect("idle connect");
                        while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        drop(conn);
                    })
                    .expect("spawns");
            } else {
                submitters.push(
                    builder
                        .spawn_scoped(s, move || serve::submit(&addr, &req))
                        .expect("spawns"),
                );
            }
        }
        for sub in submitters {
            sub.join().unwrap().expect("every fleet submit succeeds");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(
        report.counter(Counter::ServeRequests),
        1 + clients as u64 / 2
    );
    assert_eq!(report.counter(Counter::ServeRejected), 0);
}

/// The submitted plan round-trips: a `plan: true` request returns the
/// same JSON the runtime's `ExecutionPlan::build` produces directly.
#[test]
fn requested_plan_matches_direct_build() {
    let (addr, handle) = start(ServeOptions::default());
    let req = Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 4,
        plan: true,
        ..Request::default()
    };
    let resp = serve::submit(&addr, &req).expect("submit");
    let plan = resp.plan.as_ref().expect("plan returned");
    let (result, _) = direct_run(&req);
    let direct = aceso::runtime::ExecutionPlan::build(
        &aceso::model::zoo::by_name(&req.model).unwrap(),
        &ClusterSpec::v100_gpus(req.gpus),
        &result.best_config,
    )
    .expect("plan builds");
    assert_eq!(
        plan.to_string_compact(),
        Value::parse(&direct.to_json()).unwrap().to_string_compact()
    );
    serve::shutdown(&addr).expect("shutdown");
    handle.join().unwrap();
}
