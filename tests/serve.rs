//! Loopback integration tests for the serve daemon (`aceso-serve`).
//!
//! The central claim under test: **serving a search changes nothing about
//! its result**. For iteration-budget requests, a served response must be
//! bit-identical to a direct in-process `AcesoSearch::run_observed` run —
//! the event stream byte-for-byte, every deterministic counter, the best
//! configuration's fingerprint, and the predicted time's bits — even with
//! eight clients in flight at once sharing one profile cache.

use aceso::obs::Counter;
use aceso::prelude::*;
use aceso::search::{SearchStep, CHECKPOINT_SCHEMA_VERSION};
use aceso::serve::{self, ClientError, FaultProxy, Request, Response, ServeOptions, Server};
use aceso::serve::{read_frame, spool_path, write_frame, WireError, MAX_FRAME_BYTES};
use aceso::util::json::{obj, Value};
use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

/// A per-test scratch directory under the system temp dir.
fn temp_spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aceso-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp spool dir");
    dir
}

/// Binds an ephemeral-port daemon and runs it on a background thread.
fn start(opts: ServeOptions) -> (String, std::thread::JoinHandle<aceso::obs::ObsReport>) {
    let server = Server::bind("127.0.0.1:0", opts).expect("binds an ephemeral port");
    let addr = server.local_addr().to_string();
    (addr, std::thread::spawn(move || server.run()))
}

/// Runs the request's search directly through the library, exactly as the
/// server does (same `Request::search_options` mapping).
fn direct_run(req: &Request) -> (aceso::search::SearchResult, aceso::obs::ObsReport) {
    let model = aceso::model::zoo::by_name(&req.model).expect("zoo model");
    let cluster = ClusterSpec::v100_gpus(req.gpus);
    let db = ProfileDb::build(&model, &cluster);
    AcesoSearch::new(&model, &cluster, &db, req.search_options())
        .run_observed(true)
        .expect("direct search succeeds")
}

/// Drops the only nondeterministic parts of a metric snapshot: the
/// wall-clock field and the latency histogram.
fn masked(snapshot: &Value) -> Value {
    let Value::Object(fields) = snapshot else {
        return snapshot.clone();
    };
    let fields = fields
        .iter()
        .filter(|(k, _)| k != "wall_time_secs")
        .map(|(k, v)| {
            if k == "histograms" {
                if let Value::Object(hists) = v {
                    let kept = hists
                        .iter()
                        .filter(|(name, _)| name != "eval_latency_us")
                        .cloned()
                        .collect();
                    return (k.clone(), Value::Object(kept));
                }
            }
            (k.clone(), v.clone())
        })
        .collect();
    Value::Object(fields)
}

/// Asserts a served response is bit-identical to the direct library run.
fn assert_matches_direct(resp: &Response, req: &Request, ctx: &str) {
    let (want, report) = direct_run(req);
    assert_eq!(
        resp.events_jsonl(),
        report.events_jsonl(),
        "{ctx}: event stream must be byte-identical"
    );
    assert_eq!(
        masked(&resp.metrics).to_string_compact(),
        masked(&Value::parse(&report.metrics_json()).unwrap()).to_string_compact(),
        "{ctx}: masked metric snapshot must match"
    );
    let bits = resp
        .result
        .field("best_time_bits")
        .unwrap()
        .as_u64()
        .unwrap();
    assert_eq!(
        bits,
        want.best_time.to_bits(),
        "{ctx}: best_time must match to the bit"
    );
    assert_eq!(
        resp.result
            .field("best_fingerprint")
            .unwrap()
            .as_u64()
            .unwrap(),
        want.best_config.semantic_hash(),
        "{ctx}: best configuration fingerprint"
    );
    assert_eq!(
        resp.result.field("explored").unwrap().as_u64().unwrap(),
        want.explored as u64,
        "{ctx}: explored count"
    );
}

/// Eight clients at once, four distinct (model, gpus) keys — every served
/// response must be bit-identical to its direct library run, while pairs
/// of identical requests share one cached profile build.
#[test]
fn concurrent_requests_are_bit_identical_to_direct_runs() {
    let (addr, handle) = start(ServeOptions {
        workers: 8,
        ..ServeOptions::default()
    });
    let requests: Vec<Request> = [
        ("deepnet-8l", 2, 11u64),
        ("deepnet-8l", 2, 12),
        ("deepnet-12l", 2, 13),
        ("deepnet-12l", 2, 14),
        ("deepnet-8l", 4, 15),
        ("deepnet-8l", 4, 16),
        ("deepnet-16l", 4, 17),
        ("deepnet-16l", 4, 18),
    ]
    .into_iter()
    .map(|(model, gpus, seed)| Request {
        model: model.into(),
        gpus,
        seed,
        max_iterations: 8,
        ..Request::default()
    })
    .collect();

    let responses: Vec<Response> = std::thread::scope(|s| {
        let handles: Vec<_> = requests
            .iter()
            .map(|req| {
                let addr = addr.clone();
                s.spawn(move || serve::submit(&addr, req).expect("submit succeeds"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, (resp, req)) in responses.iter().zip(&requests).enumerate() {
        assert_matches_direct(resp, req, &format!("request {i} ({})", req.model));
    }

    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::ServeRequests), 8);
    assert_eq!(report.counter(Counter::ServeRejected), 0);
    // Four distinct (model, cluster) keys → four builds; the duplicate
    // requests share them (as hits or by waiting out a concurrent build).
    assert_eq!(report.counter(Counter::ProfileCacheMisses), 4);
    assert_eq!(report.counter(Counter::ProfileCacheHits), 4);
}

/// A repeated request is a profile-cache hit with measurably lower
/// profiling latency: the server reports the profiling phase's wall
/// clock in the result frame (`profile_micros`), and a hit collapses it
/// from a full `ProfileDb::build` to a map probe. (End-to-end latency is
/// search-dominated and noisy in a test run; `serve_bench` reports the
/// end-to-end cold/warm numbers.)
#[test]
fn repeated_request_is_a_faster_cache_hit() {
    let (addr, handle) = start(ServeOptions::default());
    let req = Request {
        model: "gpt3-0.35b".into(),
        gpus: 2,
        max_iterations: 2,
        ..Request::default()
    };
    let cold = serve::submit(&addr, &req).expect("cold submit");
    let warm = serve::submit(&addr, &req).expect("warm submit");
    let profile_micros = |r: &Response| r.result.field("profile_micros").unwrap().as_u64().unwrap();

    assert_eq!(cold.cache, "miss");
    assert_eq!(warm.cache, "hit");
    assert!(
        profile_micros(&warm) < profile_micros(&cold),
        "cache hit must cut profiling latency: cold {}µs vs warm {}µs",
        profile_micros(&cold),
        profile_micros(&warm)
    );
    // Bit-equality holds across the hit/miss divide too.
    assert_eq!(cold.events_jsonl(), warm.events_jsonl());
    assert_eq!(
        cold.result
            .field("best_time_bits")
            .unwrap()
            .as_u64()
            .unwrap(),
        warm.result
            .field("best_time_bits")
            .unwrap()
            .as_u64()
            .unwrap()
    );

    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::ProfileCacheHits), 1);
    assert_eq!(report.counter(Counter::ProfileCacheMisses), 1);
}

/// Reads the `code` field of an error frame.
fn error_code(frame: &Value) -> &str {
    assert_eq!(frame.field("type").unwrap().as_str().unwrap(), "error");
    frame.field("code").unwrap().as_str().unwrap()
}

/// Malformed frames get typed rejections: bad JSON keeps the connection
/// (framing stayed aligned), an oversize prefix ends it, and both count
/// as `serve_rejected`.
#[test]
fn malformed_frames_are_rejected_with_typed_errors() {
    let (addr, handle) = start(ServeOptions::default());

    // Bad JSON payload: typed error, connection survives for a retry.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(&3u32.to_be_bytes()).unwrap();
    stream.write_all(b"{{{").unwrap();
    stream.flush().unwrap();
    let reply = read_frame(&mut stream).expect("error frame");
    assert_eq!(error_code(&reply), "bad-frame");
    write_frame(&mut stream, &obj([("type", Value::Str("stats".into()))])).unwrap();
    let stats = read_frame(&mut stream).expect("stats after bad frame");
    assert_eq!(stats.field("type").unwrap().as_str().unwrap(), "stats");
    drop(stream);

    // Oversize length prefix: typed error, then the server hangs up.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .write_all(&((MAX_FRAME_BYTES + 1) as u32).to_be_bytes())
        .unwrap();
    stream.flush().unwrap();
    let reply = read_frame(&mut stream).expect("error frame");
    assert_eq!(error_code(&reply), "oversize-frame");
    assert!(matches!(read_frame(&mut stream), Err(WireError::Closed)));

    // Unknown frame type and wrong protocol version are typed too.
    let mut stream = TcpStream::connect(&addr).unwrap();
    write_frame(&mut stream, &obj([("type", Value::Str("dance".into()))])).unwrap();
    assert_eq!(
        error_code(&read_frame(&mut stream).unwrap()),
        "unknown-frame-type"
    );
    let mut bad_version = aceso::util::json::ToJson::to_json_value(&Request {
        model: "deepnet-8l".into(),
        ..Request::default()
    });
    if let Value::Object(fields) = &mut bad_version {
        for (k, v) in fields.iter_mut() {
            if k == "protocol_version" {
                *v = Value::UInt(999);
            }
        }
    }
    write_frame(&mut stream, &bad_version).unwrap();
    assert_eq!(
        error_code(&read_frame(&mut stream).unwrap()),
        "bad-protocol-version"
    );
    drop(stream);

    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::ServeRequests), 0);
    assert_eq!(report.counter(Counter::ServeRejected), 4);
}

/// With zero workers every well-formed request bounces with
/// `rejected-busy` — the backpressure path, deterministically.
#[test]
fn zero_workers_reject_with_busy() {
    let (addr, handle) = start(ServeOptions {
        workers: 0,
        ..ServeOptions::default()
    });
    let err = serve::submit(
        &addr,
        &Request {
            model: "deepnet-8l".into(),
            gpus: 2,
            ..Request::default()
        },
    )
    .expect_err("must be rejected");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, "rejected-busy"),
        other => panic!("expected a server rejection, got {other:?}"),
    }
    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::ServeRequests), 0);
    assert_eq!(report.counter(Counter::ServeRejected), 1);
}

/// Server-side resource caps bound what one request may ask for: an
/// absurd deepnet depth is rejected before the operator graph is even
/// built, and oversized gpus / iteration budgets bounce the same way,
/// all counting as `serve_rejected`.
#[test]
fn resource_caps_reject_oversized_requests() {
    let (addr, handle) = start(ServeOptions {
        max_deepnet_layers: Some(64),
        max_gpus: Some(8),
        max_iterations: Some(100),
        ..ServeOptions::default()
    });
    let expect_bad_request =
        |req: &Request| match serve::submit(&addr, req).expect_err("must be rejected") {
            ClientError::Server { code, .. } => assert_eq!(code, "bad-request"),
            other => panic!("expected a server rejection, got {other:?}"),
        };
    // Would be billions of ops if the graph were built; the rejection
    // must come back without the allocation (instantly).
    expect_bad_request(&Request {
        model: "deepnet-999999999l".into(),
        gpus: 2,
        ..Request::default()
    });
    expect_bad_request(&Request {
        model: "deepnet-8l".into(),
        gpus: 16,
        ..Request::default()
    });
    expect_bad_request(&Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 101,
        ..Request::default()
    });
    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::ServeRequests), 0);
    assert_eq!(report.counter(Counter::ServeRejected), 3);
}

/// Oversized request budgets are refused before any work happens.
#[test]
fn over_budget_requests_are_refused() {
    let (addr, handle) = start(ServeOptions {
        max_budget_secs: Some(10),
        ..ServeOptions::default()
    });
    let err = serve::submit(
        &addr,
        &Request {
            model: "deepnet-8l".into(),
            gpus: 2,
            budget_secs: Some(11),
            ..Request::default()
        },
    )
    .expect_err("must be rejected");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, "budget-too-large"),
        other => panic!("expected a server rejection, got {other:?}"),
    }
    serve::shutdown(&addr).expect("shutdown");
    handle.join().unwrap();
}

/// Shutdown drains: the daemon acknowledges, finishes, and the listener
/// goes away; the drain report carries the session's counters.
#[test]
fn graceful_shutdown_drains_and_reports() {
    let (addr, handle) = start(ServeOptions::default());
    let req = Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 4,
        ..Request::default()
    };
    serve::submit(&addr, &req).expect("submit");
    serve::shutdown(&addr).expect("shutdown acknowledged");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::ServeRequests), 1);
    assert_eq!(report.counter(Counter::ProfileCacheMisses), 1);
    // The listener is gone: a fresh connection cannot complete a request.
    match TcpStream::connect(&addr) {
        Err(_) => {}
        Ok(mut stream) => {
            // A connect may still succeed transiently (backlog); the
            // stream must be dead end-to-end though.
            let _ = write_frame(&mut stream, &obj([("type", Value::Str("stats".into()))]));
            assert!(read_frame(&mut stream).is_err(), "daemon must be gone");
        }
    }
}

/// A connection that goes quiet trips the server's i/o deadline and is
/// cut loose with a typed `timeout` error — whether it sent nothing at
/// all or stalled mid-frame — and each counts as `serve_rejected`.
#[test]
fn idle_connections_time_out_with_a_typed_error() {
    let (addr, handle) = start(ServeOptions {
        io_timeout: Some(Duration::from_millis(200)),
        ..ServeOptions::default()
    });

    // Connect and send nothing: the read deadline expires.
    let mut stream = TcpStream::connect(&addr).unwrap();
    let reply = read_frame(&mut stream).expect("typed timeout frame");
    assert_eq!(error_code(&reply), "timeout");
    // A stalled read may have consumed part of a frame, so the server
    // drops the connection rather than trust its framing.
    assert!(read_frame(&mut stream).is_err());

    // Stall mid-frame: half a length prefix, then silence.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(&[0, 0]).unwrap();
    stream.flush().unwrap();
    let reply = read_frame(&mut stream).expect("typed timeout frame");
    assert_eq!(error_code(&reply), "timeout");

    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::ServeRejected), 2);
    assert_eq!(report.counter(Counter::ServeRequests), 0);
}

/// The full crash-recovery loop: a connection severed mid-response loses
/// the client but not the work. The retry (bounded backoff riding out
/// the still-occupied worker slot) resumes from the spooled checkpoint
/// and gets a response bit-identical to a never-interrupted direct run.
#[test]
fn severed_connection_resumes_from_spool_on_retry() {
    let spool = temp_spool("sever");
    let (addr, handle) = start(ServeOptions {
        workers: 1,
        spool_dir: Some(spool.clone()),
        checkpoint_every: 1,
        ..ServeOptions::default()
    });
    let req = Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 8,
        seed: 21,
        request_id: Some("sever-job".into()),
        ..Request::default()
    };

    // First attempt through the fault proxy: the connection is severed
    // right after the two status frames, long before the result — the
    // wire view of a daemon crash or network partition.
    let proxy = FaultProxy::start(&addr, 2).expect("proxy starts");
    assert!(
        serve::submit(&proxy.addr(), &req).is_err(),
        "a severed submission must fail client-side"
    );

    // Retry directly at the daemon. The severed request still occupies
    // the only worker slot until its search finishes, so the retry
    // bounces on `rejected-busy` and backs off — exactly the loop
    // `submit_with_retries` exists for.
    let resp = serve::submit_with_retries(&addr, &req, 12).expect("retry succeeds");
    assert_matches_direct(&resp, &req, "resumed after a severed connection");
    // Success deletes the spool: the id is safe to reuse.
    assert!(
        !spool_path(&spool, "sever-job").exists(),
        "spool must be removed once the client has the result"
    );

    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::ServeRequests), 2);
    assert_eq!(report.counter(Counter::SearchResumed), 1);
    assert_eq!(report.counter(Counter::ClientRetries), 1);
    assert!(report.counter(Counter::CheckpointsWritten) >= 1);
    assert!(
        report.events_jsonl().contains("\"search_resumed\""),
        "the drain report must carry the resume event"
    );
    let _ = std::fs::remove_dir_all(&spool);
}

/// Spools survive the daemon itself: a checkpoint left by a previous
/// process (here: written directly, exactly as `--spool-dir` would) is
/// picked up by a freshly started daemon when the same request id is
/// resubmitted, and the resumed response is bit-identical.
#[test]
fn daemon_restart_resumes_a_preseeded_spool() {
    let spool = temp_spool("restart");
    let req = Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 8,
        seed: 33,
        request_id: Some("restart-job".into()),
        ..Request::default()
    };

    // The previous daemon's life, in miniature: run the same search the
    // server would and spool its first pause, then "crash".
    let model = aceso::model::zoo::by_name(&req.model).unwrap();
    let cluster = ClusterSpec::v100_gpus(req.gpus);
    let db = ProfileDb::build(&model, &cluster);
    let search = AcesoSearch::new(&model, &cluster, &db, req.search_options());
    let SearchStep::Paused(ckpt) = search.run_partial(true, 2).expect("partial run") else {
        panic!("an 8-iteration search must pause at bound 2");
    };
    std::fs::write(spool_path(&spool, "restart-job"), ckpt.to_json_string()).unwrap();

    // The restarted daemon finds the spool on resubmit and resumes.
    let (addr, handle) = start(ServeOptions {
        spool_dir: Some(spool.clone()),
        ..ServeOptions::default()
    });
    let resp = serve::submit(&addr, &req).expect("resubmit succeeds");
    assert_matches_direct(&resp, &req, "resumed across a daemon restart");

    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::SearchResumed), 1);
    assert_eq!(report.counter(Counter::ClientRetries), 1);
    assert!(report.events_jsonl().contains("\"search_resumed\""));
    let _ = std::fs::remove_dir_all(&spool);
}

/// A bad spool costs the saved work, never the request: corrupt JSON and
/// a future schema version both degrade to a fresh, still-bit-identical
/// run, each recorded as a `search_restarted` event in the drain report.
#[test]
fn bad_spools_degrade_to_fresh_runs() {
    let spool = temp_spool("bad");
    std::fs::write(spool_path(&spool, "garbage-job"), "{not json").unwrap();
    // A structurally valid checkpoint from a future schema version.
    let model = aceso::model::zoo::by_name("deepnet-8l").unwrap();
    let cluster = ClusterSpec::v100_gpus(2);
    let db = ProfileDb::build(&model, &cluster);
    let base = Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 8,
        seed: 44,
        ..Request::default()
    };
    let search = AcesoSearch::new(&model, &cluster, &db, base.search_options());
    let SearchStep::Paused(ckpt) = search.run_partial(true, 2).expect("partial run") else {
        panic!("must pause at bound 2");
    };
    let future = ckpt.to_json_string().replacen(
        &format!("\"schema_version\":{CHECKPOINT_SCHEMA_VERSION}"),
        "\"schema_version\":999",
        1,
    );
    assert!(
        future.contains("\"schema_version\":999"),
        "failed to forge a future-version checkpoint"
    );
    std::fs::write(spool_path(&spool, "future-job"), future).unwrap();

    let (addr, handle) = start(ServeOptions {
        spool_dir: Some(spool.clone()),
        ..ServeOptions::default()
    });
    for id in ["garbage-job", "future-job"] {
        let req = Request {
            request_id: Some(id.into()),
            ..base.clone()
        };
        let resp = serve::submit(&addr, &req)
            .unwrap_or_else(|e| panic!("{id}: a bad spool must not fail the request: {e}"));
        assert_matches_direct(&resp, &req, &format!("{id}: fresh run after bad spool"));
    }

    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(report.counter(Counter::SearchResumed), 0);
    assert_eq!(report.counter(Counter::ClientRetries), 2);
    let events = report.events_jsonl();
    assert_eq!(
        events.matches("\"search_restarted\"").count(),
        2,
        "each bad spool must be recorded: {events}"
    );
    let _ = std::fs::remove_dir_all(&spool);
}

/// Spool hygiene: the TTL sweep prunes aged checkpoints (and torn-write
/// `.tmp` leftovers) while live spools survive — both when called
/// directly and as the daemon's start-up sweep.
#[test]
fn spool_ttl_sweep_prunes_aged_spools_and_keeps_live_ones() {
    let spool = temp_spool("ttl");
    let aged = spool_path(&spool, "aged-job");
    std::fs::write(&aged, "{}").unwrap();
    let tmp = aged.with_extension("ckpt.tmp");
    std::fs::write(&tmp, "{").unwrap();
    std::thread::sleep(Duration::from_millis(1200));
    let live = spool_path(&spool, "live-job");
    std::fs::write(&live, "{}").unwrap();
    let pruned = serve::sweep_spools(&spool, Duration::from_secs(1));
    assert_eq!(pruned, 2, "the aged spool and its tmp leftover go");
    assert!(!aged.exists());
    assert!(!tmp.exists());
    assert!(live.exists(), "a spool younger than the TTL survives");

    // The daemon runs the same sweep at start when --spool-ttl-secs is
    // set: the re-aged spool disappears without any request arriving.
    std::fs::write(&aged, "{}").unwrap();
    std::thread::sleep(Duration::from_millis(1200));
    let live2 = spool_path(&spool, "live-job-2");
    std::fs::write(&live2, "{}").unwrap();
    let (addr, handle) = start(ServeOptions {
        spool_dir: Some(spool.clone()),
        spool_ttl_secs: Some(1),
        ..ServeOptions::default()
    });
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while aged.exists() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(!aged.exists(), "daemon start must prune aged spools");
    assert!(live2.exists(), "daemon start must keep live spools");
    serve::shutdown(&addr).expect("shutdown");
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&spool);
}

/// The submitted plan round-trips: a `plan: true` request returns the
/// same JSON the runtime's `ExecutionPlan::build` produces directly.
#[test]
fn requested_plan_matches_direct_build() {
    let (addr, handle) = start(ServeOptions::default());
    let req = Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 4,
        plan: true,
        ..Request::default()
    };
    let resp = serve::submit(&addr, &req).expect("submit");
    let plan = resp.plan.as_ref().expect("plan returned");
    let (result, _) = direct_run(&req);
    let direct = aceso::runtime::ExecutionPlan::build(
        &aceso::model::zoo::by_name(&req.model).unwrap(),
        &ClusterSpec::v100_gpus(req.gpus),
        &result.best_config,
    )
    .expect("plan builds");
    assert_eq!(
        plan.to_string_compact(),
        Value::parse(&direct.to_json()).unwrap().to_string_compact()
    );
    serve::shutdown(&addr).expect("shutdown");
    handle.join().unwrap();
}
