//! Black-box tests of the `aceso` binary's argument handling: flag
//! conflicts must fail fast with a usage error (exit 2) instead of
//! silently writing empty artifacts, and `obs-diff` must refuse
//! cross-schema comparisons.

use std::process::Command;

fn aceso() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aceso"))
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("aceso-cli-{}-{name}", std::process::id()));
    p
}

/// `--no-metrics` disables the recorder, so combining it with
/// `--metrics-out` used to write an empty file; now it is a usage error
/// and nothing is written.
#[test]
fn no_metrics_with_metrics_out_is_a_usage_error() {
    let out = temp_path("metrics.json");
    let _ = std::fs::remove_file(&out);
    let output = aceso()
        .args(["--model", "deepnet-8l", "--no-metrics", "--metrics-out"])
        .arg(&out)
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(2), "must exit with usage error");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--no-metrics"),
        "stderr must explain the conflict: {stderr}"
    );
    assert!(!out.exists(), "no empty artifact may be written");
}

/// Same conflict with `--events-out`.
#[test]
fn no_metrics_with_events_out_is_a_usage_error() {
    let out = temp_path("events.jsonl");
    let _ = std::fs::remove_file(&out);
    let output = aceso()
        .args(["--model", "deepnet-8l", "--no-metrics", "--events-out"])
        .arg(&out)
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(2));
    assert!(!out.exists());
}

/// An unknown model still exits 2 through the shared zoo lookup.
#[test]
fn unknown_model_is_a_usage_error() {
    let output = aceso()
        .args(["--model", "no-such-model"])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown model"));
}

fn write_snapshot(name: &str, version: u64, evals: u64) -> std::path::PathBuf {
    let path = temp_path(name);
    std::fs::write(
        &path,
        format!(
            "{{\"schema_version\": {version}, \"counters\": {{\"perf_evaluations\": {evals}}}, \
             \"primitives_applied\": {{}}, \"histograms\": {{}}}}\n"
        ),
    )
    .expect("writes snapshot");
    path
}

/// `obs-diff` renders deltas for same-schema snapshots (exit 0) and
/// refuses cross-schema comparisons (exit 2).
#[test]
fn obs_diff_diffs_and_refuses_schema_mismatch() {
    let a = write_snapshot("diff-a.json", 3, 10);
    let b = write_snapshot("diff-b.json", 3, 14);
    let output = aceso()
        .arg("obs-diff")
        .args([&a, &b])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(0), "same-schema diff succeeds");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("perf_evaluations") && stdout.contains("+4"),
        "diff must show the counter delta: {stdout}"
    );

    let old = write_snapshot("diff-old.json", 2, 10);
    let output = aceso()
        .arg("obs-diff")
        .args([&a, &old])
        .output()
        .expect("binary runs");
    assert_eq!(
        output.status.code(),
        Some(2),
        "schema mismatch must exit non-zero"
    );
    assert!(String::from_utf8_lossy(&output.stderr).contains("schema"));
}
