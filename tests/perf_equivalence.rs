//! Differential property suite: the incremental `CachedEvaluator` must be
//! **bit-identical** to a from-scratch `PerfModel::evaluate_unchecked` at
//! every step of seeded random primitive walks over every audit-corpus
//! (model × cluster) sample.
//!
//! One long-lived cached evaluator scores the whole walk — exactly the
//! way the search uses it — so its memo table carries stage estimates
//! from *earlier* configurations into later steps. Any stale-cache bug
//! (a cache key missing a field the estimate depends on) shows up as a
//! bit difference against the fresh full evaluation.

use aceso::audit::corpus::{corpus, primitive_walk};
use aceso::perf::{CachedEvaluator, ConfigEstimate, Evaluator, PerfModel};

/// Asserts two estimates are equal to the last bit, with a labelled panic
/// naming the first diverging field.
fn assert_bit_identical(full: &ConfigEstimate, inc: &ConfigEstimate, ctx: &str) {
    assert_eq!(full.stages.len(), inc.stages.len(), "{ctx}: stage count");
    assert_eq!(
        full.num_microbatches, inc.num_microbatches,
        "{ctx}: num_microbatches"
    );
    assert_eq!(
        full.slowest_stage, inc.slowest_stage,
        "{ctx}: slowest_stage"
    );
    assert_eq!(full.max_memory, inc.max_memory, "{ctx}: max_memory");
    assert_eq!(
        full.max_memory_stage, inc.max_memory_stage,
        "{ctx}: max_memory_stage"
    );
    assert_eq!(
        full.iteration_time.to_bits(),
        inc.iteration_time.to_bits(),
        "{ctx}: iteration_time {} vs {}",
        full.iteration_time,
        inc.iteration_time
    );
    for (i, (f, c)) in full.stages.iter().zip(&inc.stages).enumerate() {
        let fields = [
            ("comp_fwd", f.comp_fwd, c.comp_fwd),
            ("comp_bwd", f.comp_bwd, c.comp_bwd),
            ("comm_fwd", f.comm_fwd, c.comm_fwd),
            ("comm_bwd", f.comm_bwd, c.comm_bwd),
            ("dp_sync", f.dp_sync, c.dp_sync),
            ("stage_time", f.stage_time, c.stage_time),
        ];
        for (name, a, b) in fields {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{ctx}: stage {i} {name}: {a} vs {b}"
            );
        }
        assert_eq!(f.mem_params, c.mem_params, "{ctx}: stage {i} mem_params");
        assert_eq!(f.mem_opt, c.mem_opt, "{ctx}: stage {i} mem_opt");
        assert_eq!(
            f.mem_act_per_mb, c.mem_act_per_mb,
            "{ctx}: stage {i} mem_act_per_mb"
        );
        assert_eq!(
            f.mem_reserved, c.mem_reserved,
            "{ctx}: stage {i} mem_reserved"
        );
        assert_eq!(f.mem_total, c.mem_total, "{ctx}: stage {i} mem_total");
        assert_eq!(f.in_flight, c.in_flight, "{ctx}: stage {i} in_flight");
    }
}

/// Replays seeded walks over `smoke`-mode or full corpus samples.
fn run_walks(smoke: bool, seeds: &[u64], steps: usize) {
    let samples = corpus(smoke);
    assert!(!samples.is_empty());
    for sample in &samples {
        let full = PerfModel::new(&sample.model, &sample.cluster, &sample.db);
        // One evaluator per sample, shared across walks: maximal memo
        // reuse, maximal chance of catching stale-cache bugs.
        let cached =
            CachedEvaluator::new(PerfModel::new(&sample.model, &sample.cluster, &sample.db));
        for start in &sample.configs {
            for &seed in seeds {
                let walk = primitive_walk(sample, start, seed, steps);
                for (step, config) in walk.iter().enumerate() {
                    let want = full.evaluate_unchecked(config);
                    let got = cached.evaluate_unchecked(config);
                    let ctx = format!("{} seed {seed} step {step}", sample.label);
                    assert_bit_identical(&want, &got, &ctx);
                }
            }
        }
        assert!(
            cached.memo_len() > 0,
            "{}: walks never populated the memo table",
            sample.label
        );
    }
}

#[test]
fn smoke_walks_are_bit_identical() {
    run_walks(true, &[1, 2, 3, 4], 16);
}

/// A [`P2pMemo`] shared across evaluations (as the search shares one
/// across its stage-count threads) must not perturb a single bit: the
/// memo returns exactly `ProfileDb::p2p_time`, so a memo-attached model
/// and a plain one agree at every step, even when the memo is pre-warmed
/// by other samples' walks.
///
/// [`P2pMemo`]: aceso::perf::P2pMemo
#[test]
fn shared_p2p_memo_is_bit_identical() {
    use aceso::perf::P2pMemo;
    let samples = corpus(true);
    assert!(!samples.is_empty());
    let mut populated = false;
    for sample in &samples {
        // One memo per (model, cluster, db) sample, shared across all of
        // its walks and starting configs — the same scope at which the
        // search shares one memo across its stage-count threads. (Keys
        // are (bytes, from, to), so a memo must never outlive its
        // cluster topology.)
        let memo = P2pMemo::new();
        let plain = PerfModel::new(&sample.model, &sample.cluster, &sample.db);
        let memoized =
            PerfModel::new(&sample.model, &sample.cluster, &sample.db).with_p2p_memo(&memo);
        for start in &sample.configs {
            for seed in [5u64, 6] {
                let walk = primitive_walk(sample, start, seed, 12);
                for (step, config) in walk.iter().enumerate() {
                    let want = plain.evaluate_unchecked(config);
                    let got = memoized.evaluate_unchecked(config);
                    let ctx = format!("{} p2p-memo seed {seed} step {step}", sample.label);
                    assert_bit_identical(&want, &got, &ctx);
                }
            }
        }
        populated |= !memo.is_empty();
    }
    assert!(populated, "walks never exercised a boundary p2p transfer");
}

#[test]
#[ignore = "full corpus sweep; run with --ignored (ci.sh does)"]
fn full_corpus_walks_are_bit_identical() {
    run_walks(false, &[1, 2], 10);
}
