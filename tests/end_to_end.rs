//! End-to-end integration: search → validate → execute across crates.

use aceso::baselines::{AlpaError, AlpaOptions, AlpaSearch, MegatronOptions, MegatronSearch};
use aceso::config::validate::validate;
use aceso::model::zoo;
use aceso::prelude::*;
use aceso::search::SearchOptions;

fn small_gpt() -> ModelGraph {
    zoo::gpt3_custom("e2e-gpt", 4, 512, 8, 256, 8192, 64)
}

fn quick_opts() -> SearchOptions {
    SearchOptions {
        max_iterations: 16,
        parallel: false,
        ..SearchOptions::default()
    }
}

#[test]
fn search_then_execute_gpt() {
    let model = small_gpt();
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let result = AcesoSearch::new(&model, &cluster, &db, quick_opts())
        .run()
        .expect("search succeeds");
    assert!(validate(&result.best_config, &model, &cluster).is_ok());
    let report = Simulator::with_defaults(&model, &cluster, &db)
        .execute(&result.best_config)
        .expect("executes");
    assert!(report.ok(), "best config must fit in memory");
    assert!(report.throughput > 0.0);
}

#[test]
fn search_then_execute_wide_resnet() {
    let model = zoo::wide_resnet_custom("e2e-wrn", &[1, 1, 1, 1], 1, 64);
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let result = AcesoSearch::new(&model, &cluster, &db, quick_opts())
        .run()
        .expect("search succeeds");
    let report = Simulator::with_defaults(&model, &cluster, &db)
        .execute(&result.best_config)
        .expect("executes");
    assert!(report.iteration_time > 0.0);
}

#[test]
fn search_then_execute_t5() {
    let model = zoo::t5_custom("e2e-t5", 2, 2, 512, 8, 64);
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let result = AcesoSearch::new(&model, &cluster, &db, quick_opts())
        .run()
        .expect("search succeeds");
    let report = Simulator::with_defaults(&model, &cluster, &db)
        .execute(&result.best_config)
        .expect("executes");
    assert!(report.iteration_time > 0.0);
}

#[test]
fn all_top_k_configs_are_executable() {
    let model = small_gpt();
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let result = AcesoSearch::new(&model, &cluster, &db, quick_opts())
        .run()
        .expect("search succeeds");
    assert!(!result.top_configs.is_empty());
    let sim = Simulator::with_defaults(&model, &cluster, &db);
    for sc in &result.top_configs {
        assert!(validate(&sc.config, &model, &cluster).is_ok());
        sim.execute(&sc.config).expect("top-k config executes");
    }
}

#[test]
fn aceso_at_least_matches_baselines() {
    let model = small_gpt();
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let aceso = AcesoSearch::new(&model, &cluster, &db, quick_opts())
        .run()
        .expect("aceso succeeds");
    let meg = MegatronSearch::new(&model, &cluster, &db, MegatronOptions::default())
        .run()
        .expect("megatron succeeds");
    let alpa = AlpaSearch::new(
        &model,
        &cluster,
        &db,
        AlpaOptions {
            layer_group_counts: vec![2, 4],
            max_microbatch: 64,
            ..AlpaOptions::default()
        },
    )
    .run()
    .expect("alpa succeeds");
    // Baselines search sub-spaces of Aceso's space; Aceso must not lose
    // (small slack for the fine-tuning greedy order).
    let best_aceso = aceso.top_configs[0].score;
    assert!(
        best_aceso <= meg.score * 1.02,
        "aceso {best_aceso} vs megatron {}",
        meg.score
    );
    assert!(
        best_aceso <= alpa.score * 1.02,
        "aceso {best_aceso} vs alpa {}",
        alpa.score
    );
}

#[test]
fn alpa_compile_failure_on_deep_models() {
    let model = zoo::deepnet(128);
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let r = AlpaSearch::new(&model, &cluster, &db, AlpaOptions::default()).run();
    assert!(matches!(r, Err(AlpaError::CompileFailure { layers: 128 })));
}

#[test]
fn deep_model_search_succeeds_where_alpa_fails() {
    // Exp#3's point: Aceso scales past Alpa's failure depth.
    let model = zoo::gpt3_custom("deep", 96, 256, 4, 128, 8192, 32);
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let result = AcesoSearch::new(
        &model,
        &cluster,
        &db,
        SearchOptions {
            max_iterations: 6,
            parallel: false,
            stage_counts: Some(vec![4]),
            ..SearchOptions::default()
        },
    )
    .run()
    .expect("aceso handles deep models");
    assert!(!result.best_oom);
}

#[test]
fn profile_db_reuse_gives_identical_search() {
    let model = small_gpt();
    let cluster = ClusterSpec::v100(1, 4);
    let db1 = ProfileDb::build(&model, &cluster);
    let json = db1.to_json();
    let db2 = ProfileDb::from_json(&json).expect("roundtrip");
    let a = AcesoSearch::new(&model, &cluster, &db1, quick_opts())
        .run()
        .expect("a");
    let b = AcesoSearch::new(&model, &cluster, &db2, quick_opts())
        .run()
        .expect("b");
    assert_eq!(a.best_config.semantic_hash(), b.best_config.semantic_hash());
}

#[test]
fn prediction_tracks_execution_across_configs() {
    // Perf-model ordering should mostly agree with simulated execution —
    // the property the whole search relies on.
    let model = zoo::gpt3_custom("rank", 6, 1024, 16, 512, 16000, 64);
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let pm = PerfModel::new(&model, &cluster, &db);
    let sim = Simulator::with_defaults(&model, &cluster, &db);
    let mut pairs = Vec::new();
    for p in 1..=4usize {
        let cfg = aceso::config::balanced_init(&model, &cluster, p).expect("init");
        let est = pm.evaluate_unchecked(&cfg);
        if est.oom() {
            continue;
        }
        let run = sim.execute(&cfg).expect("runs");
        pairs.push((est.iteration_time, run.iteration_time));
    }
    assert!(pairs.len() >= 2);
    for w in pairs.windows(2) {
        let pred_order = w[0].0 < w[1].0;
        let real_order = w[0].1 < w[1].1;
        // Allow disagreement only when the two are within 10%.
        if (w[0].1 - w[1].1).abs() / w[0].1 > 0.10 {
            assert_eq!(pred_order, real_order, "ordering disagreement: {pairs:?}");
        }
    }
}
