//! `docs/SERVER.md` is a *test-enforced* wire and architecture
//! contract, in the same spirit as `docs/SEARCH.md` /
//! `tests/search_doc.rs`: every reactor invariant anchor, serve
//! counter, CLI flag, pipeline constant, and version number the
//! document states is cross-referenced here against the code, so the
//! document cannot silently drift from the implementation.

use aceso::obs::schema::COUNTERS;
use aceso::obs::{NONDETERMINISTIC_COUNTERS, SCHEMA_VERSION};
use aceso::serve::{PIPELINE_DEPTH, PROTOCOL_VERSION};

const DOC_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/SERVER.md");

fn doc() -> String {
    std::fs::read_to_string(DOC_PATH).unwrap_or_else(|e| panic!("cannot read {DOC_PATH}: {e}"))
}

/// The document with runs of whitespace collapsed, so assertions can
/// match phrases that wrap across hard line breaks.
fn doc_flat() -> String {
    doc().split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Every `INV-<NAME>` token in `text`, deduplicated. Names are
/// uppercase words joined by single dashes (`INV-PIPELINE-ORDER`), so
/// the scan accepts dashes but trims a trailing one (`INV-NONBLOCK's`
/// possessive, end of parenthesis, etc. stay out of the name).
fn inv_tokens(text: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut i = 0;
    while let Some(pos) = text[i..].find("INV-") {
        let start = i + pos + "INV-".len();
        let mut name: String = text[start..]
            .chars()
            .take_while(|c| c.is_ascii_uppercase() || *c == '-')
            .collect();
        i = start;
        while name.ends_with('-') {
            name.pop();
        }
        if !name.is_empty() && !out.contains(&name) {
            out.push(name);
        }
    }
    out
}

/// The reactor counters must exist in the schema registry, be declared
/// nondeterministic there, and be documented by name; conversely every
/// `serve_`-prefixed counter the schema calls nondeterministic must be
/// called out in the document.
#[test]
fn doc_names_every_reactor_counter() {
    let doc = doc();
    for name in [
        "serve_connections_open",
        "serve_pipelined_requests",
        "serve_fairness_deferrals",
    ] {
        assert!(
            COUNTERS.iter().any(|(n, _)| *n == name),
            "reactor counter `{name}` is gone from the schema registry — \
             update docs/SERVER.md and this test together"
        );
        assert!(
            NONDETERMINISTIC_COUNTERS.contains(&name),
            "reactor counter `{name}` is timing-dependent and must stay in \
             NONDETERMINISTIC_COUNTERS"
        );
        assert!(
            doc.contains(&format!("`{name}`")),
            "docs/SERVER.md is missing reactor counter `{name}`"
        );
    }
    for name in NONDETERMINISTIC_COUNTERS
        .iter()
        .filter(|n| n.starts_with("serve_"))
    {
        assert!(
            doc.contains(&format!("`{name}`")),
            "docs/SERVER.md must document the non-deterministic serve counter `{name}`"
        );
    }
}

/// The stated protocol, schema, and pipeline-depth constants must be
/// the code's.
#[test]
fn doc_states_current_versions_and_limits() {
    let flat = doc_flat();
    assert!(
        flat.contains(&format!(
            "`protocol_version` (currently **{PROTOCOL_VERSION}**)"
        )),
        "docs/SERVER.md must state the current protocol_version \
         ({PROTOCOL_VERSION}, aceso_serve::wire)"
    );
    assert!(
        flat.contains(&format!("currently {SCHEMA_VERSION})")),
        "docs/SERVER.md must state the current metric schema_version \
         ({SCHEMA_VERSION}, docs/OBSERVABILITY.md)"
    );
    assert!(
        flat.contains(&format!("**{PIPELINE_DEPTH}** (`PIPELINE_DEPTH`")),
        "docs/SERVER.md must state the per-connection pipeline depth \
         ({PIPELINE_DEPTH}, aceso_serve::reactor::PIPELINE_DEPTH)"
    );
}

/// The reactor flags are documented in both the doc and the usage text.
#[test]
fn doc_covers_the_reactor_flags() {
    let doc = doc();
    for flag in [
        "--reactor",
        "--max-connections",
        "--io-timeout-secs",
        "--workers",
    ] {
        assert!(
            doc.contains(flag),
            "docs/SERVER.md must document the `{flag}` flag"
        );
        assert!(
            aceso::cli::USAGE.contains(flag),
            "the aceso binary must advertise `{flag}` (aceso::cli::USAGE)"
        );
    }
}

/// Invariant anchors stay in sync in both directions: every `INV-` the
/// serve sources cite is defined in the document, and every `INV-` the
/// document defines is cited by at least one serve source file (a stale
/// anchor in either place is drift).
#[test]
fn invariant_anchors_match_the_code() {
    let doc_invs = inv_tokens(&doc());
    for required in ["NONBLOCK", "PIPELINE-ORDER", "FAIRNESS"] {
        assert!(
            doc_invs.iter().any(|i| i == required),
            "docs/SERVER.md must define INV-{required}"
        );
    }

    let serve_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/serve/src");
    let mut code_invs: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(serve_dir).expect("serve src listable") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|x| x == "rs") {
            let text = std::fs::read_to_string(&path).expect("source readable");
            for inv in inv_tokens(&text) {
                if !code_invs.contains(&inv) {
                    code_invs.push(inv);
                }
            }
        }
    }
    for inv in &code_invs {
        assert!(
            doc_invs.contains(inv),
            "crates/serve cites INV-{inv} but docs/SERVER.md never defines it"
        );
    }
    for inv in &doc_invs {
        assert!(
            code_invs.contains(inv),
            "docs/SERVER.md defines INV-{inv} but no crates/serve source cites it"
        );
    }
}

/// The document points at the tests and harnesses that actually enforce
/// its claims.
#[test]
fn doc_references_its_enforcement_surface() {
    let doc = doc();
    for needle in [
        "tests/serve_doc.rs",
        "tests/serve.rs",
        "reactor_responses_are_bit_identical_to_direct_runs",
        "reactor_counts_fairness_deferrals_and_pipelined_requests",
        "busy_rejections_back_off_on_the_short_clock",
        "serve_bench fleet",
        "serve_fleet",
        "NONDETERMINISTIC_COUNTERS",
        "FrameDecoder",
        "submit_pipelined",
    ] {
        assert!(
            doc.contains(needle),
            "docs/SERVER.md must reference its enforcement surface: missing `{needle}`"
        );
    }
}
