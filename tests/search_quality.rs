//! Search-quality integration tests: Aceso's stochastic search measured
//! against exhaustive/baseline references on small problems.

use aceso::baselines::{DpOptions, DpSearch};
use aceso::model::zoo;
use aceso::prelude::*;
use aceso::search::SearchOptions;

fn opts(iters: usize) -> SearchOptions {
    SearchOptions {
        max_iterations: iters,
        parallel: false,
        ..SearchOptions::default()
    }
}

#[test]
fn matches_dp_on_small_problem() {
    // On a small model the pruned DP is near-exhaustive over uniform
    // plans; Aceso must find something at least as good (its space is a
    // strict superset).
    let model = zoo::gpt3_custom("q", 4, 512, 8, 512, 16000, 64);
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let dp = DpSearch::new(&model, &cluster, &db, DpOptions::default())
        .run()
        .expect("dp finds a config");
    let aceso = AcesoSearch::new(&model, &cluster, &db, opts(32))
        .run()
        .expect("aceso finds a config");
    assert!(
        aceso.top_configs[0].score <= dp.score * 1.02,
        "aceso {} vs dp {}",
        aceso.top_configs[0].score,
        dp.score
    );
    // And explores far less.
    assert!(aceso.explored < dp.explored);
}

#[test]
fn more_iterations_never_hurt() {
    let model = zoo::gpt3_custom("q2", 4, 512, 8, 256, 8192, 64);
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let short = AcesoSearch::new(&model, &cluster, &db, opts(4))
        .run()
        .expect("short");
    let long = AcesoSearch::new(&model, &cluster, &db, opts(24))
        .run()
        .expect("long");
    assert!(long.top_configs[0].score <= short.top_configs[0].score + 1e-9);
}

#[test]
fn deeper_hops_never_hurt_quality() {
    let model = zoo::gpt3_custom("q3", 6, 512, 8, 256, 8192, 64);
    let cluster = ClusterSpec::v100(1, 8);
    let db = ProfileDb::build(&model, &cluster);
    let mut scores = Vec::new();
    for hops in [1usize, 7] {
        let r = AcesoSearch::new(
            &model,
            &cluster,
            &db,
            SearchOptions {
                max_hops: hops,
                stage_counts: Some(vec![4]),
                ..opts(16)
            },
        )
        .run()
        .expect("runs");
        scores.push(r.top_configs[0].score);
    }
    // Not strictly monotone (deeper hops walk a different path), but
    // MaxHops=7 must never be meaningfully worse than MaxHops=1.
    assert!(
        scores[1] <= scores[0] * 1.01,
        "hops=7 ({}) much worse than hops=1 ({})",
        scores[1],
        scores[0]
    );
}

#[test]
fn heuristic2_no_worse_than_random_median() {
    let model = zoo::gpt3_custom("q4", 4, 512, 8, 256, 8192, 64);
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let base = opts(8);
    let h2 = AcesoSearch::new(&model, &cluster, &db, base.clone())
        .run()
        .expect("h2");
    let mut rand_scores: Vec<f64> = (1..=3u64)
        .map(|seed| {
            aceso::baselines::random_search(&model, &cluster, &db, &base, seed)
                .expect("random runs")
                .top_configs[0]
                .score
        })
        .collect();
    rand_scores.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let median = rand_scores[1];
    assert!(
        h2.top_configs[0].score <= median * 1.02,
        "h2 {} vs random median {median}",
        h2.top_configs[0].score
    );
}

#[test]
fn found_configs_respect_memory_with_margin() {
    // Every returned feasible config actually executes within memory on
    // the simulator (the overestimating prediction is the safety margin).
    let model = zoo::gpt3_custom("q5", 8, 1024, 16, 1024, 32000, 64);
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let r = AcesoSearch::new(&model, &cluster, &db, opts(16))
        .run()
        .expect("runs");
    let sim = Simulator::with_defaults(&model, &cluster, &db);
    for sc in r.top_configs.iter().filter(|c| !c.oom) {
        let report = sim.execute(&sc.config).expect("executes");
        assert!(
            report.ok(),
            "predicted-feasible config OOMs in execution: {} > {}",
            report.peak_memory,
            report.mem_capacity
        );
    }
}
