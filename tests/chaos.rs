//! Integration tests for the whole-system chaos engine (`aceso-chaos`,
//! `docs/RELIABILITY.md`): a wide seeded sweep with zero oracle
//! violations, the store-direct-write mutation gate (a deliberately
//! broken atomic-publish discipline must be caught and shrunk to a
//! small replayable trace), RealFs passthrough bit-identity
//! (INV-CHAOS-REALFS), and the shared-store daemon race from the
//! fault matrix.

use aceso::chaos::{ChaosOptions, Engine, Schedule, Trace};
use aceso::serve::{Request, ServeOptions, Server};
use aceso::util::fsio::{ChaosFs, FaultSchedule, RealFs};
use std::sync::Arc;

fn opts(tag: &str) -> ChaosOptions {
    ChaosOptions {
        root: std::env::temp_dir().join(format!("aceso-chaos-it-{tag}-{}", std::process::id())),
        mutate_direct_writes: false,
    }
}

fn cleanup(o: &ChaosOptions) {
    let _ = std::fs::remove_dir_all(&o.root);
}

/// The headline sweep: 200 seeded whole-system fault schedules —
/// filesystem faults in both daemon generations, frame-boundary network
/// cuts, injected worker panics, overlapping generations — and not one
/// standing-oracle violation (INV-CHAOS-ORACLE). The sweep must also
/// actually exercise the fault space: every fault kind is injected at
/// least once somewhere in the window.
#[test]
fn two_hundred_seeded_schedules_violate_no_oracle() {
    let o = opts("sweep");
    let engine = Engine::new(o.clone()).expect("fault-free reference run");
    let report = engine.run_range(0, 200);
    assert_eq!(report.runs, 200, "no seed may abort the sweep");
    assert!(
        report.failure.is_none(),
        "oracle violation in the seed sweep: {:?}",
        report.failure
    );
    assert!(
        report.faults_injected >= 50,
        "the sweep must inject a meaningful fault load, got {}",
        report.faults_injected
    );
    let kinds = report.report.metrics().chaos_faults().clone();
    for kind in ["eio", "enospc", "short_write", "rename_fail", "crash"] {
        assert!(
            kinds.get(kind).copied().unwrap_or(0) > 0,
            "fault kind `{kind}` never injected across the sweep: {kinds:?}"
        );
    }
    // The synthesized observability matches what was injected.
    let total: u64 = kinds.values().sum();
    assert_eq!(total, report.faults_injected as u64);
    assert_eq!(
        report
            .report
            .events()
            .iter()
            .filter(|e| e.kind() == "fault_injected")
            .count(),
        report.faults_injected
    );
    cleanup(&o);
}

/// The mutation gate that keeps the harness honest: with the store's
/// temp+rename discipline disabled (`--mutate store-direct-write`,
/// deliberately breaking INV-STORE-ATOMIC), the seed sweep must catch a
/// torn entry, and the shrinker must reduce the failing schedule to a
/// minimal replayable trace (INV-CHAOS-SHRINK) that round-trips through
/// JSON and still reproduces.
#[test]
fn store_direct_write_mutant_is_caught_and_shrunk() {
    let mut o = opts("mutant");
    o.mutate_direct_writes = true;
    let engine = Engine::new(o.clone()).expect("fault-free reference run");
    let report = engine.run_range(0, 200);
    let trace = report
        .failure
        .expect("a broken atomic-publish discipline must trip the torn-entry oracle");
    assert!(
        trace.violations.iter().any(|v| v.contains("torn-entry")),
        "the mutant's violation names the torn entry: {:?}",
        trace.violations
    );
    assert!(
        trace.schedule.fault_count() <= 10,
        "shrinking must reach a small schedule, got {} fault(s)",
        trace.schedule.fault_count()
    );
    assert!(
        trace.schedule.direct_writes,
        "the mutation switch travels in the trace"
    );

    // The written artifact is the replay input: round-trip it.
    let parsed = Trace::from_json_str(&trace.to_json_string()).expect("trace parses");
    assert_eq!(parsed, trace);

    // Replay reproduces the violation deterministically
    // (INV-CHAOS-DETERMINISM).
    let replayed = engine.run_schedule(&parsed.schedule);
    assert!(
        replayed.violations.iter().any(|v| v.contains("torn-entry")),
        "replaying the shrunk trace must reproduce the torn entry: {:?}",
        replayed.violations
    );

    // 1-minimality: the shrunk schedule's faults are all load-bearing —
    // removing the injected filesystem faults makes the violation
    // disappear even with the mutant armed (a torn entry needs a fault
    // *during* the direct write).
    let mut defanged = parsed.schedule.clone();
    defanged.gen_a = FaultSchedule::none();
    defanged.gen_b = FaultSchedule::none();
    let quiet = engine.run_schedule(&defanged);
    assert!(
        quiet.violations.is_empty(),
        "without filesystem faults the mutant stays latent: {:?}",
        quiet.violations
    );
    cleanup(&o);
}

/// INV-CHAOS-REALFS: a `ChaosFs` with an empty schedule is a true
/// passthrough — a daemon run over it produces a response with the
/// same deterministic fields and byte-identical store entries as a
/// daemon on the production `RealFs`.
#[test]
fn empty_schedule_daemon_is_bit_identical_to_realfs() {
    let root = std::env::temp_dir().join(format!("aceso-chaos-realfs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let run = |tag: &str, fs: Arc<dyn aceso::util::fsio::Fs>| {
        let store_dir = root.join(tag);
        let server = Server::bind(
            "127.0.0.1:0",
            ServeOptions {
                workers: 1,
                store_dir: Some(store_dir.clone()),
                fs,
                ..ServeOptions::default()
            },
        )
        .expect("binds an ephemeral port");
        let addr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.run());
        let req = Request {
            model: "gpt3-0.35b".into(),
            gpus: 1,
            max_iterations: 4,
            ..Request::default()
        };
        let resp = aceso::serve::submit(&addr, &req).expect("submit succeeds");
        aceso::serve::shutdown(&addr).expect("shutdown");
        handle.join().expect("daemon thread");
        let mut entries: Vec<(String, Vec<u8>)> = std::fs::read_dir(&store_dir)
            .expect("store dir")
            .filter_map(|e| {
                let e = e.ok()?;
                Some((
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).ok()?,
                ))
            })
            .collect();
        entries.sort();
        (aceso::chaos::response_fingerprint(&resp.result), entries)
    };
    let (real_fp, real_entries) = run("real", Arc::new(RealFs));
    let (chaos_fp, chaos_entries) = run("chaos", Arc::new(ChaosFs::new(&FaultSchedule::none())));
    assert_eq!(real_fp, chaos_fp, "deterministic response fields differ");
    assert_eq!(
        real_entries, chaos_entries,
        "store entries must be byte-identical across RealFs and an empty-schedule ChaosFs"
    );
    assert!(
        !real_entries.is_empty(),
        "the store-backed daemon must have written an entry"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// The shared-store race from the fault matrix: two live daemons on one
/// `--store-dir`, one with a 1-byte budget whose LRU eviction
/// continuously deletes entries the other is loading and touching. The
/// racing loser must degrade to a fresh build — every submission
/// succeeds with bit-identical results, and every server event stays
/// typed. (`cache_bytes: 1` forces each submission through the store
/// tier instead of the in-memory cache, maximising collisions.)
#[test]
fn shared_store_daemons_race_eviction_against_load_without_errors() {
    let store_dir = std::env::temp_dir().join(format!("aceso-chaos-race-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let spawn = |budget: u64| {
        let server = Server::bind(
            "127.0.0.1:0",
            ServeOptions {
                cache_bytes: 1,
                store_dir: Some(store_dir.clone()),
                store_budget_bytes: budget,
                ..ServeOptions::default()
            },
        )
        .expect("binds an ephemeral port");
        let addr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.run());
        (addr, handle)
    };
    let (addr_pruner, handle_pruner) = spawn(1);
    let (addr_keeper, handle_keeper) = spawn(u64::MAX);

    let submit_rounds = |addr: String| {
        std::thread::spawn(move || {
            let mut fingerprints = Vec::new();
            for round in 0..4 {
                for model in ["deepnet-8l", "deepnet-12l"] {
                    let req = Request {
                        model: model.into(),
                        gpus: 2,
                        max_iterations: 2,
                        ..Request::default()
                    };
                    let resp = aceso::serve::submit(&addr, &req).unwrap_or_else(|e| {
                        panic!("round {round} submit of {model} must not error: {e}")
                    });
                    fingerprints.push((model, aceso::chaos::response_fingerprint(&resp.result)));
                }
            }
            fingerprints
        })
    };
    let client_a = submit_rounds(addr_pruner.clone());
    let client_b = submit_rounds(addr_keeper.clone());
    let fps_a = client_a.join().expect("pruner-side client");
    let fps_b = client_b.join().expect("keeper-side client");

    aceso::serve::shutdown(&addr_pruner).expect("shutdown pruner");
    aceso::serve::shutdown(&addr_keeper).expect("shutdown keeper");
    let report_pruner = handle_pruner.join().expect("pruner daemon");
    let report_keeper = handle_keeper.join().expect("keeper daemon");
    let _ = std::fs::remove_dir_all(&store_dir);

    // Bit-identical results per model, on both sides of the race, no
    // matter who lost which load/evict collision.
    for fps in [&fps_a, &fps_b] {
        for (model, fp) in fps {
            let first = fps_a
                .iter()
                .find(|(m, _)| m == model)
                .expect("seen")
                .1
                .clone();
            assert_eq!(*fp, first, "response for {model} drifted under the race");
        }
    }
    // Degrades stay typed: every server event round-trips through the
    // typed codec, and the store tier was genuinely exercised.
    let mut store_traffic = 0;
    for report in [&report_pruner, &report_keeper] {
        for event in report.events() {
            let back = aceso::obs::Event::from_json_value(
                &event.to_json_value(),
                &aceso::search::intern_obs_str,
            );
            assert_eq!(back.as_ref(), Ok(event), "event must stay typed");
        }
        store_traffic += report.counter(aceso::obs::Counter::StoreHits)
            + report.counter(aceso::obs::Counter::StoreMisses);
    }
    assert!(store_traffic > 0, "the race never touched the store tier");
}

/// Schedules and traces are deterministic, serialisable artifacts: the
/// CLI contract (`aceso chaos run --seed-range` / `aceso chaos replay`)
/// rests on seed → schedule being a pure function.
#[test]
fn seed_derivation_is_stable_across_processes() {
    // Golden: seed 1's schedule (the one the mutant gate trips on in
    // `ci.sh`) carries a short write in generation A. If this changes,
    // the seed windows baked into CI need re-auditing.
    let s = Schedule::from_seed(1);
    assert!(
        s.gen_a
            .events
            .iter()
            .any(|e| e.kind.name() == "short_write"),
        "seed 1 lost its generation-A short write: {s:?}"
    );
    for seed in 0..32 {
        assert_eq!(Schedule::from_seed(seed), Schedule::from_seed(seed));
    }
}
