//! Integration tests for the beyond-the-paper extensions: ZeRO-1
//! primitives, execution-plan export, tracing timelines, GPipe schedule,
//! parallel profiling.

use aceso::config::balanced_init;
use aceso::model::zoo;
use aceso::prelude::*;
use aceso::runtime::{to_chrome_trace, ExecutionPlan, PipelineSchedule, SimOptions};
use aceso::search::SearchOptions;

#[test]
fn zero_extension_helps_memory_tight_search() {
    // A model whose optimiser states dominate memory on few devices: ZeRO
    // sharding should let the extended search match or beat Table-1-only.
    let model = zoo::gpt3_custom("zx", 12, 2048, 32, 512, 16000, 64);
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let base = SearchOptions {
        max_iterations: 12,
        parallel: false,
        stage_counts: Some(vec![2]),
        ..SearchOptions::default()
    };
    let plain = AcesoSearch::new(&model, &cluster, &db, base.clone())
        .run()
        .expect("plain search");
    let mut zopts = base;
    zopts.gen_options.enable_zero = true;
    let zero = AcesoSearch::new(&model, &cluster, &db, zopts)
        .run()
        .expect("zero search");
    assert!(
        zero.top_configs[0].score <= plain.top_configs[0].score * 1.01,
        "zero {} vs plain {}",
        zero.top_configs[0].score,
        plain.top_configs[0].score
    );
}

#[test]
fn zero_configs_execute_on_the_simulator() {
    let model = zoo::gpt3_custom("zx2", 4, 512, 8, 256, 8192, 64);
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let mut cfg = balanced_init(&model, &cluster, 2).expect("init");
    for s in &mut cfg.stages {
        for o in &mut s.ops {
            if o.dp > 1 {
                o.zero = true;
            }
        }
    }
    let report = Simulator::with_defaults(&model, &cluster, &db)
        .execute(&cfg)
        .expect("zero config executes");
    assert!(report.iteration_time > 0.0);
}

#[test]
fn plan_and_timeline_roundtrip_for_searched_config() {
    let model = zoo::gpt3_custom("px", 4, 512, 8, 256, 8192, 64);
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let result = AcesoSearch::new(
        &model,
        &cluster,
        &db,
        SearchOptions {
            max_iterations: 8,
            parallel: false,
            stage_counts: Some(vec![2]),
            ..SearchOptions::default()
        },
    )
    .run()
    .expect("search");
    let plan = ExecutionPlan::build(&model, &cluster, &result.best_config).expect("plan");
    assert_eq!(plan.ranks.len(), 4);
    let back = ExecutionPlan::from_json(&plan.to_json()).expect("roundtrip");
    assert_eq!(plan, back);

    let sim = Simulator::with_defaults(&model, &cluster, &db);
    let (report, events) = sim.execute_traced(&result.best_config).expect("traced run");
    // Two tasks per microbatch per stage.
    let n = result
        .best_config
        .num_microbatches(model.global_batch)
        .max(1);
    assert_eq!(events.len(), 2 * n * result.best_config.num_stages());
    // Events never overlap within a stage and end by the iteration end.
    for stage in 0..result.best_config.num_stages() {
        let mut last_end = 0.0f64;
        for e in events.iter().filter(|e| e.stage == stage) {
            assert!(e.start >= last_end - 1e-12, "overlap in stage {stage}");
            last_end = e.start + e.duration;
        }
        assert!(last_end <= report.iteration_time + 1e-9);
    }
    let json = to_chrome_trace(&events);
    assert!(json.starts_with('['));
}

#[test]
fn gpipe_vs_1f1b_memory_crossover() {
    // The scheduling ablation: same config, GPipe stashes all microbatches
    // while 1F1B bounds them by pipeline depth.
    let model = zoo::gpt3_custom("gx", 4, 512, 8, 256, 8192, 64);
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let cfg = balanced_init(&model, &cluster, 2).expect("init");
    let n = cfg.num_microbatches(model.global_batch) as u64;
    assert!(n > 2, "test needs more microbatches than stages");
    let f1b = Simulator::with_defaults(&model, &cluster, &db)
        .execute(&cfg)
        .expect("1f1b");
    let gp = Simulator::new(
        &model,
        &cluster,
        &db,
        SimOptions {
            schedule: PipelineSchedule::GPipe,
            ..SimOptions::default()
        },
    )
    .execute(&cfg)
    .expect("gpipe");
    assert!(gp.peak_memory > f1b.peak_memory);
}

#[test]
fn parallel_profiling_supports_search_identically() {
    let model = zoo::gpt3_custom("ppx", 4, 512, 8, 256, 8192, 64);
    let cluster = ClusterSpec::v100(1, 4);
    let serial = ProfileDb::build(&model, &cluster);
    let parallel = ProfileDb::build_parallel(&model, &cluster, 4);
    let opts = SearchOptions {
        max_iterations: 8,
        parallel: false,
        stage_counts: Some(vec![2]),
        ..SearchOptions::default()
    };
    let a = AcesoSearch::new(&model, &cluster, &serial, opts.clone())
        .run()
        .expect("serial-profiled search");
    let b = AcesoSearch::new(&model, &cluster, &parallel, opts)
        .run()
        .expect("parallel-profiled search");
    assert_eq!(a.best_config.semantic_hash(), b.best_config.semantic_hash());
}
