//! Integration tests for the persistent profile store (`aceso-store`).
//!
//! The central claim under test: **the store tier changes nothing about
//! profile data or served results**. A profile database loaded from disk
//! is bit-identical to the one that was built — every `f64` compared by
//! bit pattern, over the model-zoo corpus (INV-STORE-BITEXACT) — and a
//! daemon restarted onto a warm store serves byte-identical responses
//! while skipping the profile build. Damage degrades, never errors
//! (INV-STORE-DEGRADE), and concurrent daemons may share one directory
//! (INV-STORE-ATOMIC).

use aceso::obs::Counter;
use aceso::prelude::*;
use aceso::serve::{self, cluster_fingerprint, model_fingerprint, Request, ServeOptions, Server};
use aceso::store::{entry_name, Store};
use std::path::PathBuf;

/// A per-test scratch directory under the system temp dir.
fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aceso-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp store dir");
    dir
}

/// Binds an ephemeral-port daemon and runs it on a background thread.
fn start(opts: ServeOptions) -> (String, std::thread::JoinHandle<aceso::obs::ObsReport>) {
    let server = Server::bind("127.0.0.1:0", opts).expect("binds an ephemeral port");
    let addr = server.local_addr().to_string();
    (addr, std::thread::spawn(move || server.run()))
}

/// Store-enabled options with a budget large enough to never evict.
fn store_opts(dir: &std::path::Path) -> ServeOptions {
    ServeOptions {
        store_dir: Some(dir.to_path_buf()),
        ..ServeOptions::default()
    }
}

/// INV-STORE-BITEXACT over the model-zoo corpus: one model per family ×
/// both audit cluster presets. Every profiled time must survive the
/// save/load round trip with its exact bit pattern — `canonical_entries`
/// compares `f64::to_bits`, so `assert_eq!` here is bit-equality, not
/// epsilon-equality.
#[test]
fn zoo_corpus_round_trips_bit_identically() {
    let dir = temp_store("zoo");
    let store = Store::open(&dir, u64::MAX).expect("store opens");
    let corpus = ["gpt3-0.35b", "t5-0.77b", "wresnet-0.5b", "deepnet-12l"];
    let presets = [ClusterSpec::v100(1, 4), ClusterSpec::v100(1, 8)];
    for name in corpus {
        let model = aceso::model::zoo::by_name(name).expect("zoo model");
        for cluster in &presets {
            let built = ProfileDb::build(&model, cluster);
            let (m, c) = (model_fingerprint(&model), cluster_fingerprint(cluster));
            store.save(m, c, &built).expect("save succeeds");
            let loaded = store
                .load(m, c)
                .expect("load never degrades on our own writes")
                .expect("entry exists");
            let ctx = format!("{name} on {} GPUs", cluster.total_gpus());
            assert_eq!(
                loaded.canonical_entries(),
                built.canonical_entries(),
                "{ctx}: every profiled time must round-trip bit-exactly"
            );
            assert_eq!(loaded.precision(), built.precision(), "{ctx}: precision");
            assert_eq!(
                loaded.simulated_profiling_seconds().to_bits(),
                built.simulated_profiling_seconds().to_bits(),
                "{ctx}: profiling seconds must round-trip bit-exactly"
            );
            assert_eq!(loaded.len(), built.len(), "{ctx}: entry count");
        }
    }
    // Every written entry verifies clean under its own file name.
    let entries = store.ls();
    assert_eq!(entries.len(), corpus.len() * presets.len());
    for e in &entries {
        assert!(e.status.is_ok(), "{}: {:?}", e.file, e.status);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The two-tier contract across a daemon restart: daemon A builds and
/// persists the profile, daemon B (same `--store-dir`) resolves its cache
/// miss from disk — `store_hits` instead of a build — and serves a
/// byte-identical response. A store load is *not* a cache hit: the
/// response still reports `miss` and `profile_cache_misses` advances.
#[test]
fn daemon_restart_reuses_the_store_bit_identically() {
    let dir = temp_store("restart");
    let req = Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 8,
        seed: 71,
        ..Request::default()
    };

    let (addr, handle) = start(store_opts(&dir));
    let cold = serve::submit(&addr, &req).expect("cold submit");
    serve::shutdown(&addr).expect("shutdown");
    let report_a = handle.join().unwrap();
    assert_eq!(report_a.counter(Counter::StoreMisses), 1);
    assert_eq!(report_a.counter(Counter::StoreWrites), 1);
    assert_eq!(report_a.counter(Counter::StoreHits), 0);

    let (addr, handle) = start(store_opts(&dir));
    let warm = serve::submit(&addr, &req).expect("restart submit");
    serve::shutdown(&addr).expect("shutdown");
    let report_b = handle.join().unwrap();

    assert_eq!(warm.cache, "miss", "a store load is not a cache hit");
    assert_eq!(
        cold.events_jsonl(),
        warm.events_jsonl(),
        "restarted daemon must serve byte-identical events"
    );
    assert_eq!(
        cold.result
            .field("best_time_bits")
            .unwrap()
            .as_u64()
            .unwrap(),
        warm.result
            .field("best_time_bits")
            .unwrap()
            .as_u64()
            .unwrap(),
        "best_time must match to the bit across the restart"
    );
    assert_eq!(report_b.counter(Counter::StoreHits), 1);
    assert_eq!(report_b.counter(Counter::StoreMisses), 0);
    assert_eq!(report_b.counter(Counter::StoreWrites), 0);
    assert_eq!(report_b.counter(Counter::ProfileCacheMisses), 1);
    assert_eq!(report_b.counter(Counter::ProfileCacheHits), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two live daemons sharing one `--store-dir` never corrupt it
/// (INV-STORE-ATOMIC): both race to write the same entry, rename keeps
/// whichever lands last intact, and a third daemon then reads it as a
/// clean store hit.
#[test]
fn concurrent_daemons_share_one_store_dir() {
    let dir = temp_store("shared");
    let req = Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 8,
        seed: 83,
        ..Request::default()
    };

    let (addr_a, handle_a) = start(store_opts(&dir));
    let (addr_b, handle_b) = start(store_opts(&dir));
    let (resp_a, resp_b) = std::thread::scope(|s| {
        let a = {
            let (addr, req) = (addr_a.clone(), req.clone());
            s.spawn(move || serve::submit(&addr, &req).expect("daemon A submit"))
        };
        let b = {
            let (addr, req) = (addr_b.clone(), req.clone());
            s.spawn(move || serve::submit(&addr, &req).expect("daemon B submit"))
        };
        (a.join().unwrap(), b.join().unwrap())
    });
    assert_eq!(
        resp_a.events_jsonl(),
        resp_b.events_jsonl(),
        "racing daemons must serve identical bytes"
    );
    serve::shutdown(&addr_a).expect("shutdown A");
    serve::shutdown(&addr_b).expect("shutdown B");
    let (report_a, report_b) = (handle_a.join().unwrap(), handle_b.join().unwrap());
    assert!(
        report_a.counter(Counter::StoreWrites) + report_b.counter(Counter::StoreWrites) >= 1,
        "at least one daemon persisted the build"
    );

    // The racing writes left exactly one clean entry; a third daemon
    // resolves its miss from it without building.
    let store = Store::open(&dir, u64::MAX).expect("store opens");
    let entries = store.ls();
    assert_eq!(entries.len(), 1, "one (model, cluster) key, one entry");
    assert!(entries[0].status.is_ok(), "{:?}", entries[0].status);

    let (addr_c, handle_c) = start(store_opts(&dir));
    let resp_c = serve::submit(&addr_c, &req).expect("daemon C submit");
    assert_eq!(resp_c.events_jsonl(), resp_a.events_jsonl());
    serve::shutdown(&addr_c).expect("shutdown C");
    let report_c = handle_c.join().unwrap();
    assert_eq!(report_c.counter(Counter::StoreHits), 1);
    assert_eq!(report_c.counter(Counter::StoreWrites), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// INV-STORE-DEGRADE through the wire: a corrupted entry costs the saved
/// build, never the request. The daemon rebuilds, answers normally,
/// surfaces a typed `store_degraded` event in its drain report, and the
/// write-back heals the entry for the next daemon.
#[test]
fn corrupt_entry_degrades_to_a_fresh_build_and_heals() {
    let dir = temp_store("corrupt");
    let model = aceso::model::zoo::by_name("deepnet-8l").expect("zoo model");
    let cluster = ClusterSpec::v100_gpus(2);
    let name = entry_name(model_fingerprint(&model), cluster_fingerprint(&cluster));
    std::fs::write(dir.join(&name), "not a store entry\n").expect("plant garbage");

    let (addr, handle) = start(store_opts(&dir));
    let req = Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 8,
        seed: 91,
        ..Request::default()
    };
    serve::submit(&addr, &req).expect("a corrupt store entry must not fail the request");
    serve::shutdown(&addr).expect("shutdown");
    let report = handle.join().unwrap();
    assert_eq!(
        report.counter(Counter::StoreMisses),
        1,
        "degrade counts as a miss"
    );
    assert_eq!(
        report.counter(Counter::StoreWrites),
        1,
        "the rebuild is written back"
    );
    assert_eq!(report.counter(Counter::StoreHits), 0);
    let events = report.events_jsonl();
    assert!(
        events.contains("\"store_degraded\"") && events.contains(&name),
        "the drain report must carry the typed degrade event: {events}"
    );

    // Healed: the write-back replaced the garbage with a clean entry.
    let store = Store::open(&dir, u64::MAX).expect("store opens");
    let entries = store.ls();
    assert_eq!(entries.len(), 1);
    assert!(entries[0].status.is_ok(), "{:?}", entries[0].status);
    let _ = std::fs::remove_dir_all(&dir);
}
