//! `docs/RELIABILITY.md` is a *test-enforced* reliability contract, in
//! the same spirit as `docs/STORE.md` / `tests/store_doc.rs`: every
//! invariant anchor, fault-matrix token, CLI flag, and observability
//! name the document states is cross-referenced here against the code,
//! so the document cannot silently drift from the implementation.

use aceso::obs::schema::{COUNTERS, EVENTS, NONDETERMINISTIC_FAMILIES};

const DOC_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/RELIABILITY.md");

fn doc() -> String {
    std::fs::read_to_string(DOC_PATH).unwrap_or_else(|e| panic!("cannot read {DOC_PATH}: {e}"))
}

/// Every `INV-<NAME>` token in `text`, deduplicated (same scan as
/// `tests/store_doc.rs`).
fn inv_tokens(text: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut i = 0;
    while let Some(pos) = text[i..].find("INV-") {
        let start = i + pos + "INV-".len();
        let mut name: String = text[start..]
            .chars()
            .take_while(|c| c.is_ascii_uppercase() || *c == '-')
            .collect();
        i = start;
        while name.ends_with('-') {
            name.pop();
        }
        if !name.is_empty() && !out.contains(&name) {
            out.push(name);
        }
    }
    out
}

/// Every `INV-` token cited by the `.rs` sources under `dir`.
fn dir_inv_tokens(dir: &str, out: &mut Vec<String>) {
    for entry in std::fs::read_dir(dir).unwrap_or_else(|e| panic!("{dir} listable: {e}")) {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|x| x == "rs") {
            let text = std::fs::read_to_string(&path).expect("source readable");
            for inv in inv_tokens(&text) {
                if !out.contains(&inv) {
                    out.push(inv);
                }
            }
        }
    }
}

/// Invariant anchors stay in sync in both directions: every INV-CHAOS
/// anchor the chaos-facing sources cite is defined in the document, and
/// every INV-CHAOS anchor the document defines is cited by at least one
/// source. The fsio seam and the util retention module carry chaos
/// anchors too, so they are part of the scan.
#[test]
fn invariant_anchors_match_the_code() {
    let doc_invs = inv_tokens(&doc());
    for required in [
        "CHAOS-REALFS",
        "CHAOS-DETERMINISM",
        "CHAOS-ORACLE",
        "CHAOS-SHRINK",
        "CHAOS-SWEEP",
    ] {
        assert!(
            doc_invs.iter().any(|i| i == required),
            "docs/RELIABILITY.md must define INV-{required}"
        );
    }
    // The contract explicitly builds on the store anchors.
    for cited in ["STORE-ATOMIC", "STORE-DEGRADE", "STORE-BITEXACT"] {
        assert!(
            doc_invs.iter().any(|i| i == cited),
            "docs/RELIABILITY.md must cite INV-{cited} (defined in docs/STORE.md)"
        );
    }

    let mut code_invs: Vec<String> = Vec::new();
    dir_inv_tokens(
        concat!(env!("CARGO_MANIFEST_DIR"), "/crates/chaos/src"),
        &mut code_invs,
    );
    dir_inv_tokens(
        concat!(env!("CARGO_MANIFEST_DIR"), "/crates/util/src"),
        &mut code_invs,
    );
    for inv in code_invs.iter().filter(|i| i.starts_with("CHAOS")) {
        assert!(
            doc_invs.contains(inv),
            "the code cites INV-{inv} but docs/RELIABILITY.md never defines it"
        );
    }
    for inv in doc_invs.iter().filter(|i| i.starts_with("CHAOS")) {
        assert!(
            code_invs.contains(inv),
            "docs/RELIABILITY.md defines INV-{inv} but no chaos-facing source cites it"
        );
    }
}

/// The chaos observability vocabulary the document names must exist in
/// the schema registry with the documented shape, and the fault-count
/// family must stay nondeterministic-masked.
#[test]
fn doc_names_the_chaos_observability_surface() {
    let doc = doc();
    for (token, registry_has) in [
        (
            "chaos_faults_injected",
            NONDETERMINISTIC_FAMILIES.contains(&"chaos_faults_injected"),
        ),
        (
            "retention_sweep_errors",
            COUNTERS.iter().any(|(n, _)| *n == "retention_sweep_errors"),
        ),
    ] {
        assert!(registry_has, "`{token}` missing from the schema registry");
        assert!(
            doc.contains(&format!("`{token}`")),
            "docs/RELIABILITY.md must name `{token}`"
        );
    }
    let fault = EVENTS
        .iter()
        .find(|s| s.kind == "fault_injected")
        .expect("fault_injected is a registered event kind");
    for field in ["op", "fault", "path"] {
        assert!(
            fault.fields.iter().any(|f| f.name == field),
            "fault_injected must carry the `{field}` field"
        );
    }
    let sweep = EVENTS
        .iter()
        .find(|s| s.kind == "sweep_degraded")
        .expect("sweep_degraded is a registered event kind");
    for field in ["dir", "errors"] {
        assert!(
            sweep.fields.iter().any(|f| f.name == field),
            "sweep_degraded must carry the `{field}` field"
        );
    }
    for kind in ["fault_injected", "sweep_degraded"] {
        assert!(
            doc.contains(&format!("`{kind}`")),
            "docs/RELIABILITY.md must document the `{kind}` event"
        );
    }
}

/// The chaos CLI the document describes is the one the binary
/// advertises.
#[test]
fn doc_covers_the_chaos_cli() {
    let doc = doc();
    for flag in [
        "--seed-range",
        "--mutate",
        "--trace-out",
        "--retry-deadline-secs",
    ] {
        assert!(
            doc.contains(flag),
            "docs/RELIABILITY.md must document the `{flag}` flag"
        );
        assert!(
            aceso::cli::USAGE.contains(flag),
            "the aceso binary must advertise `{flag}` (aceso::cli::USAGE)"
        );
    }
    for needle in ["chaos run", "chaos replay", "store-direct-write"] {
        assert!(
            doc.contains(needle) && aceso::cli::USAGE.contains(needle),
            "both docs/RELIABILITY.md and aceso::cli::USAGE must cover `{needle}`"
        );
    }
}

/// The document points at the tests and harnesses that actually enforce
/// its claims.
#[test]
fn doc_references_its_enforcement_surface() {
    let doc = doc();
    for needle in [
        "tests/chaos_doc.rs",
        "tests/chaos.rs",
        "two_hundred_seeded_schedules_violate_no_oracle",
        "store_direct_write_mutant_is_caught_and_shrunk",
        "empty_schedule_daemon_is_bit_identical_to_realfs",
        "shared_store_daemons_race_eviction_against_load_without_errors",
        "retry_deadline_bounds_total_wall_clock",
        "no_counter_is_silently_dead",
        "write_atomic_cleans_its_temp_on_rename_failure",
        "every_truncation_degrades_typed",
        "ci.sh",
        "aceso_util::retention",
    ] {
        assert!(
            doc.contains(needle),
            "docs/RELIABILITY.md must reference its enforcement surface: missing `{needle}`"
        );
    }
}

/// The sibling documents and the README route readers here.
#[test]
fn sibling_docs_link_to_the_reliability_contract() {
    for path in ["README.md", "docs/STORE.md", "docs/SERVER.md"] {
        let full = format!("{}/{path}", env!("CARGO_MANIFEST_DIR"));
        let text = std::fs::read_to_string(&full).unwrap_or_else(|e| panic!("read {path}: {e}"));
        assert!(
            text.contains("RELIABILITY.md"),
            "{path} must link to docs/RELIABILITY.md"
        );
    }
}
