//! Golden search-trace regression tests.
//!
//! The seeded search is fully deterministic (no wall-clock values feed
//! any decision), so the best configuration's fingerprint, its predicted
//! iteration time, the explored count and every observability counter
//! can be snapshotted per zoo model. The incremental-evaluation refactor
//! (and any future hot-path change) must leave all of them untouched —
//! it may only change *speed*.
//!
//! On mismatch the failure prints an `obs-diff`-style counter delta
//! (golden vs actual, with the signed difference) before panicking, so a
//! behaviour change is immediately attributable to a phase of the search.
//!
//! To re-bless after an intentional behaviour change:
//!
//! ```text
//! ACESO_BLESS=1 cargo test --test search_golden
//! ```

use aceso::cluster::ClusterSpec;
use aceso::model::{zoo, ModelGraph};
use aceso::obs::{Counter, ObsReport, NONDETERMINISTIC_COUNTERS};
use aceso::profile::ProfileDb;
use aceso::search::{AcesoSearch, SearchOptions};
use aceso::util::json::{obj, Value};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/golden_search.json");

/// The zoo slice the goldens cover: one entry per model family, sized so
/// the whole suite stays in CI-smoke territory.
fn cases() -> Vec<(&'static str, ModelGraph, ClusterSpec)> {
    vec![
        (
            "gpt3-custom/v100-1x4",
            zoo::gpt3_custom("golden-gpt", 4, 512, 8, 256, 8192, 64),
            ClusterSpec::v100(1, 4),
        ),
        (
            "t5-0.77b/v100-1x4",
            zoo::t5(zoo::T5Size::S0_77b),
            ClusterSpec::v100(1, 4),
        ),
        (
            "wide-resnet-0.5b/v100-1x4",
            zoo::wide_resnet(zoo::WideResnetSize::S0_5b),
            ClusterSpec::v100(1, 4),
        ),
        (
            "deepnet-12/v100-1x8",
            zoo::deepnet(12),
            ClusterSpec::v100(1, 8),
        ),
    ]
}

/// Deterministic search options: iteration budget only — a wall-clock
/// budget would make the explored count machine-dependent.
fn golden_opts() -> SearchOptions {
    SearchOptions {
        max_iterations: 12,
        time_budget: None,
        ..SearchOptions::default()
    }
}

struct Observed {
    label: String,
    fingerprint: u64,
    best_time: f64,
    explored: u64,
    counters: Vec<(&'static str, u64)>,
}

fn observe(label: &str, model: &ModelGraph, cluster: &ClusterSpec) -> Observed {
    let db = ProfileDb::build(model, cluster);
    let (result, report): (_, ObsReport) = AcesoSearch::new(model, cluster, &db, golden_opts())
        .run_observed(true)
        .unwrap_or_else(|e| panic!("{label}: search failed: {e}"));
    Observed {
        label: label.to_string(),
        fingerprint: result.best_config.semantic_hash(),
        best_time: result.best_time,
        explored: result.explored as u64,
        // Scheduling-dependent counters (`search_steals`) are excluded:
        // the golden contract covers only values that are reproducible
        // bit-for-bit at any `ACESO_SEARCH_THREADS` setting.
        counters: Counter::ALL
            .iter()
            .filter(|c| !NONDETERMINISTIC_COUNTERS.contains(&c.name()))
            .map(|&c| (c.name(), report.counter(c)))
            .collect(),
    }
}

fn to_json(entries: &[Observed]) -> String {
    let list: Vec<Value> = entries
        .iter()
        .map(|e| {
            let counters = Value::Object(
                e.counters
                    .iter()
                    .map(|(name, v)| (name.to_string(), Value::UInt(*v)))
                    .collect(),
            );
            obj([
                ("label", Value::Str(e.label.clone())),
                ("best_fingerprint", Value::UInt(e.fingerprint)),
                // Exact f64 bits: the golden contract is bit-level.
                ("best_time_bits", Value::UInt(e.best_time.to_bits())),
                ("best_time", Value::Float(e.best_time)),
                ("explored", Value::UInt(e.explored)),
                ("counters", counters),
            ])
        })
        .collect();
    let mut text = obj([("entries", Value::Array(list))]).to_string_pretty();
    text.push('\n');
    text
}

/// Renders the obs-diff table between golden and actual counters; the
/// flag says whether any counter actually drifted.
fn counter_diff(golden: &Value, actual: &[(&'static str, u64)]) -> (String, bool) {
    let mut rows = String::new();
    for (name, now) in actual {
        let was = golden.get(name).and_then(|v| v.as_u64().ok()).unwrap_or(0);
        if was != *now {
            let delta = *now as i64 - was as i64;
            rows.push_str(&format!(
                "  {name:24} {was:>10} -> {now:>10}  ({delta:+})\n"
            ));
        }
    }
    let drifted = !rows.is_empty();
    let mut out = String::from("counter delta (golden -> actual):\n");
    if drifted {
        out.push_str(&rows);
    } else {
        out.push_str("  (no counter drift — search outputs diverged some other way)\n");
    }
    (out, drifted)
}

#[test]
fn golden_search_traces_match() {
    let entries: Vec<Observed> = cases()
        .iter()
        .map(|(label, m, c)| observe(label, m, c))
        .collect();

    if std::env::var("ACESO_BLESS").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap())
            .expect("create tests/data");
        std::fs::write(GOLDEN_PATH, to_json(&entries)).expect("write golden file");
        eprintln!("blessed {} entries into {GOLDEN_PATH}", entries.len());
        return;
    }

    let text = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("cannot read {GOLDEN_PATH}: {e}\n(run `ACESO_BLESS=1 cargo test --test search_golden` to create it)")
    });
    let doc = Value::parse(&text).expect("golden file parses");
    let golden = doc.field("entries").unwrap().as_array().unwrap();
    assert_eq!(
        golden.len(),
        entries.len(),
        "golden entry count drifted — re-bless after reviewing"
    );

    let mut failures = Vec::new();
    for (g, e) in golden.iter().zip(&entries) {
        let label = g.field("label").unwrap().as_str().unwrap();
        assert_eq!(label, e.label, "golden order drifted");
        let want_fp = g.field("best_fingerprint").unwrap().as_u64().unwrap();
        let want_bits = g.field("best_time_bits").unwrap().as_u64().unwrap();
        let want_explored = g.field("explored").unwrap().as_u64().unwrap();
        let mut diverged = Vec::new();
        if want_fp != e.fingerprint {
            diverged.push(format!(
                "best_fingerprint {want_fp:#x} -> {:#x}",
                e.fingerprint
            ));
        }
        if want_bits != e.best_time.to_bits() {
            diverged.push(format!(
                "best_time {} -> {}",
                f64::from_bits(want_bits),
                e.best_time
            ));
        }
        if want_explored != e.explored {
            diverged.push(format!("explored {want_explored} -> {}", e.explored));
        }
        if !diverged.is_empty() {
            let (diff, _) = counter_diff(g.field("counters").unwrap(), &e.counters);
            failures.push(format!("{label}: {}\n{diff}", diverged.join(", ")));
        }
    }
    assert!(
        failures.is_empty(),
        "golden search traces diverged:\n{}",
        failures.join("\n")
    );
}

/// The golden counters themselves must match too — a counter-only drift
/// (same best config, different search effort) is still a behaviour
/// change worth reviewing.
#[test]
fn golden_counters_match() {
    let text = match std::fs::read_to_string(GOLDEN_PATH) {
        Ok(t) => t,
        // The bless run of `golden_search_traces_match` creates the file;
        // don't double-fail while it doesn't exist yet.
        Err(_) if std::env::var("ACESO_BLESS").is_ok() => return,
        Err(e) => panic!("cannot read {GOLDEN_PATH}: {e}"),
    };
    let doc = Value::parse(&text).expect("golden file parses");
    let golden = doc.field("entries").unwrap().as_array().unwrap();
    let mut failures = Vec::new();
    for ((label, m, c), g) in cases().iter().zip(golden) {
        let e = observe(label, m, c);
        let gold_counters = g.field("counters").unwrap();
        let (diff, drifted) = counter_diff(gold_counters, &e.counters);
        if drifted {
            failures.push(format!("{label}:\n{diff}"));
        }
    }
    assert!(
        failures.is_empty(),
        "observability counters diverged from golden:\n{}",
        failures.join("\n")
    );
}

/// The work-stealing frontier pool must be invisible in every golden
/// output: running the same seeded search at 1, 2, 4 and 8 workers
/// yields the same best fingerprint, the same f64-bit best time, the
/// same explored count, the same deterministic counters and a
/// byte-identical event stream (docs/SEARCH.md, INV-ORDINAL).
#[test]
fn golden_outputs_are_identical_across_worker_counts() {
    let (label, model, cluster) = cases().remove(0);
    let db = ProfileDb::build(&model, &cluster);
    let run = |threads: usize| {
        let opts = SearchOptions {
            search_threads: threads,
            ..golden_opts()
        };
        AcesoSearch::new(&model, &cluster, &db, opts)
            .run_observed(true)
            .unwrap_or_else(|e| panic!("{label} @ {threads} workers: search failed: {e}"))
    };

    let (ref_result, ref_report) = run(1);
    for threads in [2, 4, 8] {
        let (result, report) = run(threads);
        assert_eq!(
            ref_result.best_config.semantic_hash(),
            result.best_config.semantic_hash(),
            "{label}: best fingerprint drifted at {threads} workers"
        );
        assert_eq!(
            ref_result.best_time.to_bits(),
            result.best_time.to_bits(),
            "{label}: best time drifted at {threads} workers"
        );
        assert_eq!(
            ref_result.explored, result.explored,
            "{label}: explored count drifted at {threads} workers"
        );
        assert_eq!(
            ref_report.events_jsonl(),
            report.events_jsonl(),
            "{label}: event stream drifted at {threads} workers"
        );
        for c in Counter::ALL {
            if NONDETERMINISTIC_COUNTERS.contains(&c.name()) {
                continue;
            }
            assert_eq!(
                ref_report.counter(c),
                report.counter(c),
                "{label}: counter {} drifted at {threads} workers",
                c.name()
            );
        }
    }
}
