//! Property-style tests on the core invariants.
//!
//! Each test sweeps a seeded `SplitMix64` over randomised cases, so the
//! coverage is property-shaped but fully deterministic and dependency-free.

use aceso::cluster::{collective, ClusterSpec, Collective, CommGroup};
use aceso::config::init::split_gpus_pow2;
use aceso::config::validate::validate;
use aceso::config::{balanced_init, ParallelConfig};
use aceso::model::zoo;
use aceso::model::ModelGraph;
use aceso::perf::PerfModel;
use aceso::profile::ProfileDb;
use aceso::runtime::one_f_one_b;
use aceso::search::AcesoSearch;
use aceso::search::SearchOptions;
use aceso::util::SplitMix64;

fn test_model() -> ModelGraph {
    zoo::gpt3_custom("prop-gpt", 4, 512, 8, 256, 8192, 64)
}

#[test]
fn pow2_split_invariants() {
    let mut rng = SplitMix64::new(0xACE5_0001);
    for _ in 0..64 {
        let total = 1usize << rng.next_below(6);
        let p = 1 + rng.next_below(8);
        match split_gpus_pow2(total, p) {
            Some(parts) => {
                assert_eq!(parts.len(), p);
                assert_eq!(parts.iter().sum::<usize>(), total);
                assert!(parts.iter().all(|x| x.is_power_of_two()));
                // Near-even: largest ≤ 8 × smallest for these ranges.
                let max = parts.iter().max().expect("non-empty");
                let min = parts.iter().min().expect("non-empty");
                assert!(max / min <= 8);
            }
            None => assert!(p > total),
        }
    }
}

#[test]
fn collective_monotone_in_bytes() {
    let c = ClusterSpec::v100(4, 8);
    let g = CommGroup::contiguous(0, 8);
    let mut rng = SplitMix64::new(0xACE5_0002);
    for _ in 0..64 {
        let b1 = 1 + rng.next_u64() % 1_000_000;
        let b2 = 1 + rng.next_u64() % 1_000_000;
        let (lo, hi) = if b1 < b2 { (b1, b2) } else { (b2, b1) };
        let t_lo = collective::collective_time(&c, Collective::AllReduce, lo, &g);
        let t_hi = collective::collective_time(&c, Collective::AllReduce, hi, &g);
        assert!(t_lo <= t_hi);
    }
}

#[test]
fn collective_never_negative() {
    let c = ClusterSpec::v100(4, 8);
    let mut rng = SplitMix64::new(0xACE5_0003);
    for _ in 0..64 {
        let bytes = rng.next_u64() % (u64::MAX / 4);
        let size = rng.next_below(33).min(16);
        let stride = 1 + rng.next_below(8);
        let g = CommGroup::strided(0, size, stride);
        for kind in [
            Collective::AllReduce,
            Collective::AllGather,
            Collective::ReduceScatter,
        ] {
            let t = collective::collective_time(&c, kind, bytes, &g);
            assert!(t >= 0.0 && t.is_finite());
        }
    }
}

#[test]
fn one_f_one_b_is_valid_schedule() {
    let mut rng = SplitMix64::new(0xACE5_0004);
    for _ in 0..64 {
        let i = rng.next_below(8);
        let p = i + 1 + rng.next_below(8); // ensure i < p
        let n = 1 + rng.next_below(32);
        let order = one_f_one_b(i, p, n);
        assert_eq!(order.len(), 2 * n);
        let mut seen_fwd = vec![false; n];
        let mut in_flight = 0i64;
        let mut peak = 0i64;
        for t in &order {
            match t {
                aceso::runtime::Task::Fwd(mb) => {
                    assert!(!seen_fwd[*mb]);
                    seen_fwd[*mb] = true;
                    in_flight += 1;
                }
                aceso::runtime::Task::Bwd(mb) => {
                    assert!(seen_fwd[*mb], "bwd before fwd");
                    in_flight -= 1;
                }
            }
            peak = peak.max(in_flight);
        }
        assert_eq!(in_flight, 0);
        // Eq. 1's in-flight bound: stage i holds at most min(p-i, n).
        assert!(peak as usize <= (p - i).min(n));
    }
}

#[test]
fn balanced_init_always_validates() {
    let model = test_model();
    for gpus_exp in 0usize..4 {
        let gpus = 1usize << gpus_exp;
        let cluster = ClusterSpec::v100(1, gpus);
        for p in 1usize..5 {
            if p <= gpus {
                let cfg = balanced_init(&model, &cluster, p).expect("init exists");
                assert!(validate(&cfg, &model, &cluster).is_ok());
            }
        }
    }
}

// Applies a random sequence of raw transforms and checks that every
// intermediate configuration stays valid — the semantic-preservation
// property of the reconfiguration primitives.
#[test]
fn transform_sequences_preserve_validity() {
    use aceso::search::transform::{self, Mechanism};
    let model = test_model();
    let cluster = ClusterSpec::v100(1, 8);
    let mut rng = SplitMix64::new(0xACE5_0005);
    for _ in 0..32 {
        let mut cfg = balanced_init(&model, &cluster, 4).expect("init");
        let steps = 1 + rng.next_below(11);
        for _ in 0..steps {
            let op = rng.next_below(6) as u8;
            let stage = rng.next_below(cfg.num_stages());
            let next: Option<ParallelConfig> = match op {
                0 => transform::move_ops(
                    &model,
                    &cfg,
                    stage,
                    stage.saturating_sub(1).min(cfg.num_stages() - 1),
                    1 + rng.next_below(3),
                ),
                1 => transform::move_ops(
                    &model,
                    &cfg,
                    stage,
                    (stage + 1).min(cfg.num_stages() - 1),
                    1 + rng.next_below(3),
                ),
                2 => transform::convert_stage(&model, &cfg, stage, Mechanism::Tp),
                3 => transform::convert_stage(&model, &cfg, stage, Mechanism::Dp),
                4 => transform::scale_microbatch(&model, &cfg, rng.next_below(2) == 0),
                _ => transform::recompute_largest(&model, &cfg, stage, 1 + rng.next_below(4)),
            };
            if let Some(next) = next {
                assert!(
                    validate(&next, &model, &cluster).is_ok(),
                    "transform {op} broke validity"
                );
                cfg = next;
            }
        }
    }
}

#[test]
fn perf_model_invariants() {
    let model = test_model();
    let cluster = ClusterSpec::v100(1, 8);
    let db = ProfileDb::build(&model, &cluster);
    let pm = PerfModel::new(&model, &cluster, &db);
    for p in 1usize..5 {
        for mbs_exp in 0usize..4 {
            let mut cfg = balanced_init(&model, &cluster, p).expect("init");
            let mbs = cfg.microbatch * (1 << mbs_exp);
            if model.global_batch.is_multiple_of(mbs) {
                cfg.microbatch = mbs;
            }
            let est = pm.evaluate(&cfg).expect("valid");
            // Memory components always sum to the total.
            for s in &est.stages {
                assert_eq!(
                    s.mem_total,
                    s.mem_params
                        + s.mem_opt
                        + s.mem_act_per_mb * s.in_flight as u64
                        + s.mem_reserved
                );
                assert!(s.comp_fwd > 0.0);
                assert!(s.comp_bwd >= 2.0 * s.comp_fwd);
            }
            // Iteration time is the max stage time.
            let max = est
                .stages
                .iter()
                .map(|s| s.stage_time + s.dp_sync)
                .fold(0.0f64, f64::max);
            assert!((est.iteration_time - max).abs() < 1e-9);
            // Recomputing everything reduces activation memory, grows bwd time.
            let mut rc = cfg.clone();
            for s in &mut rc.stages {
                for o in &mut s.ops {
                    o.recompute = true;
                }
            }
            let est_rc = pm.evaluate(&rc).expect("valid");
            for (a, b) in est.stages.iter().zip(&est_rc.stages) {
                assert!(b.mem_act_per_mb <= a.mem_act_per_mb);
                assert!(b.comp_bwd >= a.comp_bwd);
            }
        }
    }
}

#[test]
fn semantic_hashes_distinguish_mutations() {
    // Any single-field mutation of a valid configuration must change
    // its semantic hash (the dedup set must not conflate configs).
    let model = test_model();
    let cluster = ClusterSpec::v100(1, 8);
    let base = balanced_init(&model, &cluster, 2).expect("init");
    let h0 = base.semantic_hash();
    let mut rng = SplitMix64::new(0xACE5_0006);
    for _ in 0..200 {
        let mut cfg = base.clone();
        let stage = rng.next_below(2);
        let op = rng.next_below(cfg.stages[stage].ops.len());
        match rng.next_below(3) {
            0 => cfg.stages[stage].ops[op].recompute = !cfg.stages[stage].ops[op].recompute,
            1 => cfg.stages[stage].ops[op].zero = !cfg.stages[stage].ops[op].zero,
            _ => cfg.microbatch *= 2,
        }
        assert_ne!(cfg.semantic_hash(), h0);
    }
}

#[test]
fn search_never_returns_worse_than_init() {
    let model = test_model();
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let pm = PerfModel::new(&model, &cluster, &db);
    let init = balanced_init(&model, &cluster, 2).expect("init");
    let init_score = pm.evaluate_unchecked(&init).score();
    for seed in 0u64..6 {
        let r = AcesoSearch::new(
            &model,
            &cluster,
            &db,
            SearchOptions {
                max_iterations: 4,
                parallel: false,
                stage_counts: Some(vec![2]),
                use_heuristic2: seed % 2 == 0,
                seed,
                ..SearchOptions::default()
            },
        )
        .run()
        .expect("search runs");
        assert!(r.top_configs[0].score <= init_score + 1e-9);
    }
}
