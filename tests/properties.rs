//! Property-based tests on the core invariants.

use aceso::cluster::{collective, ClusterSpec, Collective, CommGroup};
use aceso::config::init::split_gpus_pow2;
use aceso::config::validate::validate;
use aceso::config::{balanced_init, ParallelConfig};
use aceso::model::zoo;
use aceso::model::ModelGraph;
use aceso::perf::PerfModel;
use aceso::profile::ProfileDb;
use aceso::runtime::one_f_one_b;
use aceso::search::AcesoSearch;
use aceso::search::SearchOptions;
use proptest::prelude::*;

fn test_model() -> ModelGraph {
    zoo::gpt3_custom("prop-gpt", 4, 512, 8, 256, 8192, 64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pow2_split_invariants(total_exp in 0usize..6, p in 1usize..9) {
        let total = 1usize << total_exp;
        match split_gpus_pow2(total, p) {
            Some(parts) => {
                prop_assert_eq!(parts.len(), p);
                prop_assert_eq!(parts.iter().sum::<usize>(), total);
                prop_assert!(parts.iter().all(|x| x.is_power_of_two()));
                // Near-even: largest ≤ 8 × smallest for these ranges.
                let max = parts.iter().max().expect("non-empty");
                let min = parts.iter().min().expect("non-empty");
                prop_assert!(max / min <= 8);
            }
            None => prop_assert!(p > total),
        }
    }

    #[test]
    fn collective_monotone_in_bytes(b1 in 1u64..1_000_000, b2 in 1u64..1_000_000) {
        let c = ClusterSpec::v100(4, 8);
        let g = CommGroup::contiguous(0, 8);
        let (lo, hi) = if b1 < b2 { (b1, b2) } else { (b2, b1) };
        let t_lo = collective::collective_time(&c, Collective::AllReduce, lo, &g);
        let t_hi = collective::collective_time(&c, Collective::AllReduce, hi, &g);
        prop_assert!(t_lo <= t_hi);
    }

    #[test]
    fn collective_never_negative(bytes in 0u64..u64::MAX / 4, size in 0usize..33, stride in 1usize..9) {
        let c = ClusterSpec::v100(4, 8);
        let g = CommGroup::strided(0, size.min(16), stride);
        for kind in [Collective::AllReduce, Collective::AllGather, Collective::ReduceScatter] {
            let t = collective::collective_time(&c, kind, bytes, &g);
            prop_assert!(t >= 0.0 && t.is_finite());
        }
    }

    #[test]
    fn one_f_one_b_is_valid_schedule(i in 0usize..8, extra in 0usize..8, n in 1usize..33) {
        let p = i + 1 + extra; // ensure i < p
        let order = one_f_one_b(i, p, n);
        prop_assert_eq!(order.len(), 2 * n);
        let mut seen_fwd = vec![false; n];
        let mut in_flight = 0i64;
        let mut peak = 0i64;
        for t in &order {
            match t {
                aceso::runtime::Task::Fwd(mb) => {
                    prop_assert!(!seen_fwd[*mb]);
                    seen_fwd[*mb] = true;
                    in_flight += 1;
                }
                aceso::runtime::Task::Bwd(mb) => {
                    prop_assert!(seen_fwd[*mb], "bwd before fwd");
                    in_flight -= 1;
                }
            }
            peak = peak.max(in_flight);
        }
        prop_assert_eq!(in_flight, 0);
        // Eq. 1's in-flight bound: stage i holds at most min(p-i, n).
        prop_assert!(peak as usize <= (p - i).min(n));
    }

    #[test]
    fn balanced_init_always_validates(p in 1usize..5, gpus_exp in 0usize..4) {
        let gpus = 1usize << gpus_exp;
        let model = test_model();
        let cluster = ClusterSpec::v100(1, gpus);
        if p <= gpus {
            let cfg = balanced_init(&model, &cluster, p).expect("init exists");
            prop_assert!(validate(&cfg, &model, &cluster).is_ok());
        }
    }
}

// Applies a random sequence of raw transforms and checks that every
// intermediate configuration stays valid — the semantic-preservation
// property of the reconfiguration primitives.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn transform_sequences_preserve_validity(ops in prop::collection::vec(0u8..6, 1..12), seed in 0u64..1000) {
        use aceso::search::transform::{self, Mechanism};
        let model = test_model();
        let cluster = ClusterSpec::v100(1, 8);
        let mut cfg = balanced_init(&model, &cluster, 4).expect("init");
        let mut rng = aceso::util::SplitMix64::new(seed);
        for op in ops {
            let stage = rng.next_below(cfg.num_stages());
            let next: Option<ParallelConfig> = match op {
                0 => transform::move_ops(&model, &cfg, stage, stage.saturating_sub(1).min(cfg.num_stages()-1), 1 + rng.next_below(3)),
                1 => transform::move_ops(&model, &cfg, stage, (stage + 1).min(cfg.num_stages()-1), 1 + rng.next_below(3)),
                2 => transform::convert_stage(&model, &cfg, stage, Mechanism::Tp),
                3 => transform::convert_stage(&model, &cfg, stage, Mechanism::Dp),
                4 => transform::scale_microbatch(&model, &cfg, rng.next_below(2) == 0),
                _ => transform::recompute_largest(&model, &cfg, stage, 1 + rng.next_below(4)),
            };
            if let Some(next) = next {
                prop_assert!(validate(&next, &model, &cluster).is_ok(),
                    "transform {op} broke validity");
                cfg = next;
            }
        }
    }

    #[test]
    fn perf_model_invariants(p in 1usize..5, mbs_exp in 0usize..4) {
        let model = test_model();
        let cluster = ClusterSpec::v100(1, 8);
        let db = ProfileDb::build(&model, &cluster);
        let pm = PerfModel::new(&model, &cluster, &db);
        let mut cfg = balanced_init(&model, &cluster, p).expect("init");
        let mbs = cfg.microbatch * (1 << mbs_exp);
        if model.global_batch.is_multiple_of(mbs) {
            cfg.microbatch = mbs;
        }
        let est = pm.evaluate(&cfg).expect("valid");
        // Memory components always sum to the total.
        for s in &est.stages {
            prop_assert_eq!(
                s.mem_total,
                s.mem_params + s.mem_opt + s.mem_act_per_mb * s.in_flight as u64 + s.mem_reserved
            );
            prop_assert!(s.comp_fwd > 0.0);
            prop_assert!(s.comp_bwd >= 2.0 * s.comp_fwd);
        }
        // Iteration time is the max stage time.
        let max = est
            .stages
            .iter()
            .map(|s| s.stage_time + s.dp_sync)
            .fold(0.0f64, f64::max);
        prop_assert!((est.iteration_time - max).abs() < 1e-9);
        // Recomputing everything reduces activation memory, grows bwd time.
        let mut rc = cfg.clone();
        for s in &mut rc.stages {
            for o in &mut s.ops {
                o.recompute = true;
            }
        }
        let est_rc = pm.evaluate(&rc).expect("valid");
        for (a, b) in est.stages.iter().zip(&est_rc.stages) {
            prop_assert!(b.mem_act_per_mb <= a.mem_act_per_mb);
            prop_assert!(b.comp_bwd >= a.comp_bwd);
        }
    }

    #[test]
    fn semantic_hashes_distinguish_mutations(seed in 0u64..200) {
        // Any single-field mutation of a valid configuration must change
        // its semantic hash (the dedup set must not conflate configs).
        let model = test_model();
        let cluster = ClusterSpec::v100(1, 8);
        let base = balanced_init(&model, &cluster, 2).expect("init");
        let h0 = base.semantic_hash();
        let mut rng = aceso::util::SplitMix64::new(seed);
        let mut cfg = base.clone();
        let stage = rng.next_below(2);
        let op = rng.next_below(cfg.stages[stage].ops.len());
        match rng.next_below(3) {
            0 => cfg.stages[stage].ops[op].recompute = !cfg.stages[stage].ops[op].recompute,
            1 => cfg.stages[stage].ops[op].zero = !cfg.stages[stage].ops[op].zero,
            _ => cfg.microbatch *= 2,
        }
        prop_assert_ne!(cfg.semantic_hash(), h0);
    }

    #[test]
    fn search_never_returns_worse_than_init(seed in 0u64..50) {
        let model = test_model();
        let cluster = ClusterSpec::v100(1, 4);
        let db = ProfileDb::build(&model, &cluster);
        let pm = PerfModel::new(&model, &cluster, &db);
        let init = balanced_init(&model, &cluster, 2).expect("init");
        let init_score = pm.evaluate_unchecked(&init).score();
        let r = AcesoSearch::new(
            &model,
            &cluster,
            &db,
            SearchOptions {
                max_iterations: 4,
                parallel: false,
                stage_counts: Some(vec![2]),
                use_heuristic2: seed % 2 == 0,
                seed,
                ..SearchOptions::default()
            },
        )
        .run()
        .expect("search runs");
        prop_assert!(r.top_configs[0].score <= init_score + 1e-9);
    }
}
