//! Differential checkpoint/resume tests.
//!
//! The contract under test: a search that is paused every N iterations,
//! serialised to JSON, parsed back, and resumed — repeatedly, until it
//! finishes — produces output **bit-identical** to an uninterrupted
//! run. "Bit-identical" means the merged event stream byte-for-byte,
//! every deterministic counter and histogram, the best configuration's
//! fingerprint, and the predicted time's exact `f64` bits. The only
//! masked fields are `wall_time_secs` and the `eval_latency_us`
//! histogram, which measure the host clock, and the counters the obs
//! schema registers as `NONDETERMINISTIC_COUNTERS` (`search_steals` —
//! work-stealing scheduling, not search semantics).
//!
//! A second contract rides along: results and checkpoint bytes are
//! independent of the frontier worker count (`search_threads`), and a
//! checkpoint taken at one worker count resumes at any other.

use aceso::cluster::ClusterSpec;
use aceso::model::{zoo, ModelGraph};
use aceso::obs::{ObsReport, NONDETERMINISTIC_COUNTERS};
use aceso::profile::ProfileDb;
use aceso::search::{
    AcesoSearch, CheckpointError, ResumeError, SearchCheckpoint, SearchOptions, SearchResult,
    SearchStep,
};
use aceso::util::json::Value;

/// Three model families, sized to stay in CI-smoke territory.
fn cases() -> Vec<(&'static str, ModelGraph, ClusterSpec, usize)> {
    vec![
        (
            "gpt3-custom/v100-1x4",
            zoo::gpt3_custom("ckpt-gpt", 4, 512, 8, 256, 8192, 64),
            ClusterSpec::v100(1, 4),
            1, // pause at every iteration — the adversarial case
        ),
        (
            "t5-0.77b/v100-1x4",
            zoo::t5(zoo::T5Size::S0_77b),
            ClusterSpec::v100(1, 4),
            3,
        ),
        (
            "wide-resnet-0.5b/v100-1x4",
            zoo::wide_resnet(zoo::WideResnetSize::S0_5b),
            ClusterSpec::v100(1, 4),
            3,
        ),
    ]
}

fn opts() -> SearchOptions {
    SearchOptions {
        max_iterations: 8,
        ..SearchOptions::default()
    }
}

/// Drops the only nondeterministic parts of a metric snapshot: the
/// wall-clock field, the latency histogram, and the scheduling-dependent
/// counters the obs schema registers as nondeterministic.
fn masked(snapshot: &Value) -> Value {
    let Value::Object(fields) = snapshot else {
        return snapshot.clone();
    };
    let fields = fields
        .iter()
        .filter(|(k, _)| k != "wall_time_secs")
        .map(|(k, v)| {
            if k == "histograms" {
                if let Value::Object(hists) = v {
                    let kept = hists
                        .iter()
                        .filter(|(name, _)| name != "eval_latency_us")
                        .cloned()
                        .collect();
                    return (k.clone(), Value::Object(kept));
                }
            }
            if k == "counters" {
                if let Value::Object(counters) = v {
                    let kept = counters
                        .iter()
                        .filter(|(name, _)| !NONDETERMINISTIC_COUNTERS.contains(&name.as_str()))
                        .cloned()
                        .collect();
                    return (k.clone(), Value::Object(kept));
                }
            }
            (k.clone(), v.clone())
        })
        .collect();
    Value::Object(fields)
}

/// Runs the search pausing every `step` iterations, putting each
/// checkpoint through a full JSON round-trip before resuming from the
/// parsed copy. Returns the final result plus how many checkpoints were
/// taken (so callers can assert the run really was interrupted).
fn run_interrupted(search: &AcesoSearch<'_>, step: usize) -> (SearchResult, ObsReport, usize) {
    let mut bound = step;
    let mut state = search.run_partial(true, bound).expect("first slice");
    let mut pauses = 0usize;
    let mut last_done = 0usize;
    loop {
        match state {
            SearchStep::Done(result, report) => return (result, report, pauses),
            SearchStep::Paused(ckpt) => {
                pauses += 1;
                assert!(!ckpt.is_complete(), "paused checkpoint has open stages");
                let done = ckpt.iterations_done();
                assert!(
                    done >= last_done,
                    "iteration progress must be monotone ({done} < {last_done})"
                );
                last_done = done;
                let text = ckpt.to_json_string();
                let parsed = SearchCheckpoint::from_json_str(&text)
                    .expect("checkpoint survives a JSON round-trip");
                bound += step;
                state = search
                    .resume_partial(true, &parsed, Some(bound))
                    .expect("resume from round-tripped checkpoint");
            }
        }
    }
}

fn assert_bit_identical(
    name: &str,
    a: (&SearchResult, &ObsReport),
    b: (&SearchResult, &ObsReport),
) {
    let ((ra, pa), (rb, pb)) = (a, b);
    assert_eq!(
        pa.events_jsonl(),
        pb.events_jsonl(),
        "{name}: event streams must be byte-identical"
    );
    assert_eq!(
        masked(&Value::parse(&pa.metrics_json()).unwrap()).to_string_compact(),
        masked(&Value::parse(&pb.metrics_json()).unwrap()).to_string_compact(),
        "{name}: masked metric snapshots must match"
    );
    assert_eq!(
        ra.best_config.semantic_hash(),
        rb.best_config.semantic_hash(),
        "{name}: best fingerprint"
    );
    assert_eq!(
        ra.best_time.to_bits(),
        rb.best_time.to_bits(),
        "{name}: best_time f64 bits"
    );
    assert_eq!(ra.best_oom, rb.best_oom, "{name}: best_oom");
    assert_eq!(ra.explored, rb.explored, "{name}: explored count");
    let tops_a: Vec<(u64, u64)> = ra
        .top_configs
        .iter()
        .map(|s| (s.config.semantic_hash(), s.score.to_bits()))
        .collect();
    let tops_b: Vec<(u64, u64)> = rb
        .top_configs
        .iter()
        .map(|s| (s.config.semantic_hash(), s.score.to_bits()))
        .collect();
    assert_eq!(tops_a, tops_b, "{name}: top-k pool");
}

#[test]
fn interrupted_runs_are_bit_identical_across_the_zoo() {
    for (name, model, cluster, step) in cases() {
        let db = ProfileDb::build(&model, &cluster);
        let search = AcesoSearch::new(&model, &cluster, &db, opts());
        let (want, want_report) = search.run_observed(true).expect("reference run");
        let (got, got_report, pauses) = run_interrupted(&search, step);
        assert!(pauses > 0, "{name}: the run must actually be interrupted");
        assert_bit_identical(name, (&want, &want_report), (&got, &got_report));
    }
}

#[test]
fn single_pause_then_run_to_completion_is_bit_identical() {
    let model = zoo::gpt3_custom("ckpt-one", 4, 512, 8, 256, 8192, 64);
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let search = AcesoSearch::new(&model, &cluster, &db, opts());
    let (want, want_report) = search.run_observed(true).expect("reference run");

    let SearchStep::Paused(ckpt) = search.run_partial(true, 3).expect("slice") else {
        panic!("an 8-iteration search must not finish in 3 iterations");
    };
    let parsed = SearchCheckpoint::from_json_str(&ckpt.to_json_string()).expect("round-trip");
    let (got, got_report) = search
        .resume_from(true, &parsed)
        .expect("resume to completion");
    assert_bit_identical("one-pause", (&want, &want_report), (&got, &got_report));
}

#[test]
fn resuming_a_finished_checkpoint_replays_the_result() {
    // Pausing past max_iterations never fires, so drive the search to
    // completion in slices, then resume the final pre-completion
    // checkpoint twice: both resumes must agree bit-for-bit.
    let model = zoo::gpt3_custom("ckpt-replay", 4, 512, 8, 256, 8192, 64);
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let search = AcesoSearch::new(&model, &cluster, &db, opts());
    let SearchStep::Paused(ckpt) = search.run_partial(true, 6).expect("slice") else {
        panic!("must pause before completion");
    };
    let (a, pa) = search.resume_from(true, &ckpt).expect("first resume");
    let (b, pb) = search.resume_from(true, &ckpt).expect("second resume");
    assert_bit_identical("replay", (&a, &pa), (&b, &pb));
}

#[test]
fn metrics_off_checkpoints_resume_bit_identically() {
    let model = zoo::gpt3_custom("ckpt-quiet", 4, 512, 8, 256, 8192, 64);
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let search = AcesoSearch::new(&model, &cluster, &db, opts());
    let want = search.run().expect("reference");
    let SearchStep::Paused(ckpt) = search.run_partial(false, 4).expect("slice") else {
        panic!("must pause");
    };
    let parsed = SearchCheckpoint::from_json_str(&ckpt.to_json_string()).expect("round-trip");
    let (got, report) = search.resume_from(false, &parsed).expect("resume");
    assert_eq!(
        want.best_config.semantic_hash(),
        got.best_config.semantic_hash()
    );
    assert_eq!(want.best_time.to_bits(), got.best_time.to_bits());
    assert_eq!(want.explored, got.explored);
    assert!(report.events().is_empty(), "metrics-off report stays empty");
}

#[test]
fn incompatible_checkpoints_are_rejected_before_any_work() {
    let model = zoo::gpt3_custom("ckpt-compat", 4, 512, 8, 256, 8192, 64);
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let search = AcesoSearch::new(&model, &cluster, &db, opts());
    let SearchStep::Paused(ckpt) = search.run_partial(true, 2).expect("slice") else {
        panic!("must pause");
    };

    // Different cluster.
    let other_cluster = ClusterSpec::v100(1, 2);
    let other_db = ProfileDb::build(&model, &other_cluster);
    let other = AcesoSearch::new(&model, &other_cluster, &other_db, opts());
    match other.resume_partial(true, &ckpt, None) {
        Err(ResumeError::Incompatible(CheckpointError::Mismatch(what))) => {
            assert_eq!(what, "cluster fingerprint")
        }
        other => panic!("expected cluster mismatch, got {other:?}"),
    }

    // Different model.
    let other_model = zoo::gpt3_custom("ckpt-other", 6, 512, 8, 256, 8192, 64);
    let other_db = ProfileDb::build(&other_model, &cluster);
    let other = AcesoSearch::new(&other_model, &cluster, &other_db, opts());
    assert!(matches!(
        other.resume_partial(true, &ckpt, None),
        Err(ResumeError::Incompatible(CheckpointError::Mismatch(
            "model fingerprint"
        )))
    ));

    // Different result-affecting options.
    let other = AcesoSearch::new(&model, &cluster, &db, SearchOptions { seed: 99, ..opts() });
    assert!(matches!(
        other.resume_partial(true, &ckpt, None),
        Err(ResumeError::Incompatible(CheckpointError::Mismatch(
            "options fingerprint"
        )))
    ));

    // Different metrics flag.
    assert!(matches!(
        search.resume_partial(false, &ckpt, None),
        Err(ResumeError::Incompatible(CheckpointError::Mismatch(
            "metrics flag"
        )))
    ));
}

/// Strips every wall-clock-derived field from a checkpoint document,
/// plus the informational `search_threads` field: `elapsed_secs_bits`
/// (whole-search wall time), `eval_latency_us` (latency histogram
/// snapshots inside stage metrics), and `elapsed_bits` (per-iteration
/// convergence timestamps inside traces). Everything that remains is
/// covered by the bit-identity contract.
fn mask_checkpoint(v: &Value) -> Value {
    match v {
        Value::Object(fields) => Value::Object(
            fields
                .iter()
                .filter(|(k, _)| {
                    k != "search_threads"
                        && k != "elapsed_secs_bits"
                        && k != "eval_latency_us"
                        && k != "elapsed_bits"
                })
                .map(|(k, v)| (k.clone(), mask_checkpoint(v)))
                .collect(),
        ),
        Value::Array(items) => Value::Array(items.iter().map(mask_checkpoint).collect()),
        other => other.clone(),
    }
}

#[test]
fn checkpoints_are_byte_identical_across_worker_counts() {
    let model = zoo::gpt3_custom("ckpt-workers", 4, 512, 8, 256, 8192, 64);
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let mut texts = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let search = AcesoSearch::new(
            &model,
            &cluster,
            &db,
            SearchOptions {
                search_threads: threads,
                ..opts()
            },
        );
        let SearchStep::Paused(ckpt) = search.run_partial(true, 3).expect("slice") else {
            panic!("an 8-iteration search must not finish in 3 iterations");
        };
        assert_eq!(ckpt.search_threads, threads as u64);
        let parsed = Value::parse(&ckpt.to_json_string()).expect("parses");
        texts.push(mask_checkpoint(&parsed).to_string_compact());
    }
    for (i, t) in texts.iter().enumerate().skip(1) {
        assert_eq!(
            &texts[0], t,
            "checkpoint bytes must not depend on worker count (index {i})"
        );
    }
}

#[test]
fn resume_at_a_different_worker_count_is_bit_identical() {
    let model = zoo::gpt3_custom("ckpt-retune", 4, 512, 8, 256, 8192, 64);
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let serial = AcesoSearch::new(&model, &cluster, &db, opts());
    let (want, want_report) = serial.run_observed(true).expect("reference run");
    let SearchStep::Paused(ckpt) = serial.run_partial(true, 3).expect("slice") else {
        panic!("must pause");
    };
    let parsed = SearchCheckpoint::from_json_str(&ckpt.to_json_string()).expect("round-trip");
    // Finish the serially-started search on a 4-worker frontier pool:
    // the worker count is not part of the options fingerprint, so the
    // checkpoint is compatible, and the merged output must still be
    // bit-identical to the uninterrupted serial run.
    let pooled = AcesoSearch::new(
        &model,
        &cluster,
        &db,
        SearchOptions {
            search_threads: 4,
            ..opts()
        },
    );
    let (got, got_report) = pooled
        .resume_from(true, &parsed)
        .expect("resume at a different worker count");
    assert_bit_identical("retune", (&want, &want_report), (&got, &got_report));
}

#[test]
fn foreign_and_corrupt_checkpoints_fail_without_panicking() {
    let model = zoo::gpt3_custom("ckpt-corrupt", 4, 512, 8, 256, 8192, 64);
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let search = AcesoSearch::new(&model, &cluster, &db, opts());
    let SearchStep::Paused(ckpt) = search.run_partial(true, 2).expect("slice") else {
        panic!("must pause");
    };
    let text = ckpt.to_json_string();

    // A future schema version is detected before anything else.
    let future = text.replacen("\"schema_version\":2", "\"schema_version\":3", 1);
    assert!(matches!(
        SearchCheckpoint::from_json_str(&future),
        Err(CheckpointError::UnknownSchemaVersion(3))
    ));

    // Truncation at any prefix length is an error, never a panic.
    for cut in [0, 1, text.len() / 4, text.len() / 2, text.len() - 1] {
        assert!(
            SearchCheckpoint::from_json_str(&text[..cut]).is_err(),
            "truncated checkpoint (cut at {cut}) must be rejected"
        );
    }
}
