//! Zoo-wide structural invariants: every model the paper evaluates must be
//! well-formed and carry physically sensible cost attributes.

use aceso::model::zoo::{deepnet, gpt3, t5, wide_resnet, Gpt3Size, T5Size, WideResnetSize};
use aceso::model::{ModelGraph, Scaling};

fn all_models() -> Vec<ModelGraph> {
    let mut models: Vec<ModelGraph> = Vec::new();
    models.extend(Gpt3Size::ALL.iter().map(|&s| gpt3(s)));
    models.extend(T5Size::ALL.iter().map(|&s| t5(s)));
    models.extend(WideResnetSize::ALL.iter().map(|&s| wide_resnet(s)));
    models.push(deepnet(64));
    models
}

#[test]
fn every_zoo_model_validates() {
    for m in all_models() {
        m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
    }
}

#[test]
fn cost_attributes_are_sensible() {
    for m in all_models() {
        for op in &m.ops {
            assert!(op.flops > 0.0, "{}: {} has no flops", m.name, op.name);
            assert!(op.output_elems > 0, "{}: {} has no output", m.name, op.name);
            assert!(op.tp_limit >= 1);
            for spec in &op.partitions {
                assert!(
                    spec.efficiency > 0.0 && spec.efficiency <= 1.0,
                    "{}: {} bad efficiency",
                    m.name,
                    op.name
                );
                if spec.scaling == Scaling::Divided && op.params > 0 {
                    // Divided ops must actually divide at the tp limit.
                    assert!(
                        op.params as f64 / f64::from(op.tp_limit.min(64)) >= 1.0,
                        "{}: {}",
                        m.name,
                        op.name
                    );
                }
            }
        }
    }
}

#[test]
fn matmul_flops_dominate_transformers() {
    // Transformers are compute-dominated by their matmuls — elementwise
    // ops must account for a small share of total FLOPs.
    for m in [gpt3(Gpt3Size::S2_6b), t5(T5Size::S3b)] {
        let total = m.total_flops();
        let matmul: f64 = m
            .ops
            .iter()
            .filter(|o| o.kind.compute_bound())
            .map(|o| o.flops)
            .sum();
        assert!(matmul / total > 0.9, "{}: {:.3}", m.name, matmul / total);
    }
}

#[test]
fn per_layer_activation_matches_megatron_formula() {
    // The known Megatron-LM footprint: a transformer layer stashes about
    // s·h·(34 + 5·n·s/h) bytes in fp16 (with stored softmax + dropout
    // masks). Our op-level stash accounting should land within 2×.
    let m = gpt3(Gpt3Size::S13b);
    let (s, h, n) = (2048u64, 5120u64, 40u64);
    let layer_stash_elems: u64 = m
        .ops
        .iter()
        .filter(|o| o.name.starts_with("layer3."))
        .map(|o| o.stash_elems)
        .sum();
    let layer_bytes = layer_stash_elems * 2;
    let formula = s * h * (34 + 5 * n * s / h);
    let ratio = layer_bytes as f64 / formula as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "stash {layer_bytes} vs formula {formula} (ratio {ratio:.2})"
    );
}

#[test]
fn t5_decoder_cheaper_but_denser_than_encoder() {
    let m = t5(T5Size::S3b);
    let enc: f64 = m
        .ops
        .iter()
        .filter(|o| o.name.starts_with("enc3."))
        .map(|o| o.flops)
        .sum();
    let dec: f64 = m
        .ops
        .iter()
        .filter(|o| o.name.starts_with("dec3."))
        .map(|o| o.flops)
        .sum();
    // Decoder layer has more ops (cross-attention) but runs at 1/4 the
    // sequence length, so fewer FLOPs per layer.
    assert!(dec < enc);
    let enc_ops = m.ops.iter().filter(|o| o.name.starts_with("enc3.")).count();
    let dec_ops = m.ops.iter().filter(|o| o.name.starts_with("dec3.")).count();
    assert!(dec_ops > enc_ops);
}

#[test]
fn deepnet_depth_scaling_is_linear() {
    let a = deepnet(64);
    let b = deepnet(128);
    assert!(b.len() > 2 * a.len() - 8);
    assert!(b.total_params() > 18 * b.len() as u64); // non-trivial params
    let ratio = b.total_flops() / a.total_flops();
    assert!((1.8..2.2).contains(&ratio), "flops ratio {ratio}");
}

#[test]
fn wresnet_flops_concentrate_early_params_late() {
    let m = wide_resnet(WideResnetSize::S4b);
    let half = m.len() / 2;
    let fl_early: f64 = m.ops[..half].iter().map(|o| o.flops).sum();
    let fl_late: f64 = m.ops[half..].iter().map(|o| o.flops).sum();
    let p_early: u64 = m.ops[..half].iter().map(|o| o.params).sum();
    let p_late: u64 = m.ops[half..].iter().map(|o| o.params).sum();
    // The classic CNN imbalance the paper exploits: compute early,
    // parameters late.
    assert!(fl_early > fl_late * 0.8);
    assert!(p_late > p_early);
}
