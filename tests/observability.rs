//! Integration tests for the observability layer (`aceso-obs`) as wired
//! through the real search stack: determinism of the event stream, the
//! counter consistency invariant, and equivalence of observed vs
//! unobserved searches.

use aceso::obs::{Counter, Recorder, NONDETERMINISTIC_COUNTERS, SCHEMA_VERSION};
use aceso::prelude::*;
use aceso::search::SearchOptions;
use aceso::serve::{Request, ServeOptions, Server};
use aceso::util::json::Value;

fn small_gpt() -> ModelGraph {
    aceso::model::zoo::gpt3_custom("obs-gpt", 4, 512, 8, 256, 8192, 64)
}

fn quick_opts() -> SearchOptions {
    SearchOptions {
        max_iterations: 12,
        ..SearchOptions::default()
    }
}

/// Two identical seeded searches must emit byte-identical event streams
/// and identical deterministic counters — even with the parallel
/// stage-count search enabled (recorders are merged in deterministic
/// stage-count order, and events carry no wall-clock fields).
#[test]
fn identical_searches_emit_byte_identical_event_streams() {
    let model = small_gpt();
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);

    let run = || {
        AcesoSearch::new(&model, &cluster, &db, quick_opts())
            .run_observed(true)
            .expect("search succeeds")
    };
    let (res_a, obs_a) = run();
    let (res_b, obs_b) = run();

    assert_eq!(res_a.best_time, res_b.best_time);
    assert_eq!(obs_a.events_jsonl(), obs_b.events_jsonl());
    for c in Counter::ALL {
        // Counters in NONDETERMINISTIC_COUNTERS (e.g. `search_steals`)
        // depend on thread scheduling when ACESO_SEARCH_THREADS > 1 and
        // are exempt from the determinism contract by design.
        if NONDETERMINISTIC_COUNTERS.contains(&c.name()) {
            continue;
        }
        assert_eq!(
            obs_a.counter(c),
            obs_b.counter(c),
            "counter {} must be deterministic",
            c.name()
        );
    }
}

/// Every generated (post-dedup, evaluated) candidate is either accepted
/// or rejected — the documented consistency invariant.
#[test]
fn candidate_counters_are_consistent() {
    let model = small_gpt();
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let (_, obs) = AcesoSearch::new(&model, &cluster, &db, quick_opts())
        .run_observed(true)
        .expect("search succeeds");

    assert!(obs.counter(Counter::PerfEvaluations) > 0);
    assert_eq!(
        obs.counter(Counter::CandidatesAccepted) + obs.counter(Counter::CandidatesRejected),
        obs.counter(Counter::CandidatesGenerated),
        "accepted + rejected must equal generated"
    );
}

/// Observability must not change what the search finds: the plain and
/// observed entry points return the same best configuration.
#[test]
fn observed_search_matches_unobserved_search() {
    let model = small_gpt();
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);

    let plain = AcesoSearch::new(&model, &cluster, &db, quick_opts())
        .run()
        .expect("search succeeds");
    let (observed, obs) = AcesoSearch::new(&model, &cluster, &db, quick_opts())
        .run_observed(true)
        .expect("search succeeds");

    assert_eq!(plain.best_time, observed.best_time);
    assert_eq!(
        plain.best_config.semantic_hash(),
        observed.best_config.semantic_hash()
    );
    assert_eq!(plain.explored, observed.explored);
    assert!(obs.counter(Counter::StageSearches) >= 1);
}

/// The rendered artifacts are valid per the documented schema: every
/// JSONL line parses with contiguous `seq`, and the metric snapshot
/// carries the current `schema_version`.
#[test]
fn rendered_artifacts_parse_and_carry_schema_version() {
    let model = small_gpt();
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let (_, mut obs) = AcesoSearch::new(&model, &cluster, &db, quick_opts())
        .run_observed(true)
        .expect("search succeeds");

    // Exercise the simulator wiring too, as the CLI does.
    let rec = Recorder::new(true);
    let result = AcesoSearch::new(&model, &cluster, &db, quick_opts())
        .run()
        .expect("search succeeds");
    Simulator::with_defaults(&model, &cluster, &db)
        .execute_observed(&result.best_config, &rec)
        .expect("executes");
    obs.absorb(rec);
    assert!(obs.counter(Counter::SimRuns) >= 1);
    assert!(obs.counter(Counter::SimTasks) > 0);

    for (i, line) in obs.events_jsonl().lines().enumerate() {
        let v = Value::parse(line).expect("every event line parses");
        assert_eq!(v.field("seq").unwrap().as_u64().unwrap(), i as u64);
        assert!(!v.field("kind").unwrap().as_str().unwrap().is_empty());
    }
    let snapshot = Value::parse(&obs.metrics_json()).expect("snapshot parses");
    assert_eq!(
        snapshot.field("schema_version").unwrap().as_u64().unwrap(),
        SCHEMA_VERSION
    );
}

/// Every counter in the schema must be reachable through a production
/// code path: after a scenario suite covering observed search (with its
/// incremental-evaluation hot path), simulation, and an out-of-memory
/// prediction, **all** schema counters are nonzero. A counter this suite
/// cannot move is silently dead — remove it from the schema (with a
/// version bump) or wire it up; `perf_validated` died exactly this way
/// in schema v2.
#[test]
fn no_counter_is_silently_dead() {
    let model = small_gpt();
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);

    // Scenario 1: a full observed search — evaluation, candidate,
    // iteration, fine-tune, backtrack and stage-search counters, plus
    // the incremental-hit / full-eval split from the CachedEvaluator.
    let (result, mut obs) = AcesoSearch::new(&model, &cluster, &db, quick_opts())
        .run_observed(true)
        .expect("search succeeds");

    let rec = Recorder::new(true);

    // Scenario 2: simulate the best configuration — sim counters.
    Simulator::with_defaults(&model, &cluster, &db)
        .execute_observed(&result.best_config, &rec)
        .expect("executes");

    // Scenario 3: grow the microbatch until the perf model predicts an
    // out-of-memory configuration — oom_predictions.
    let pm = PerfModel::new(&model, &cluster, &db).with_obs(&rec);
    let mut oversized = aceso::config::balanced_init(&model, &cluster, 2).expect("balanced init");
    while !pm.evaluate_unchecked(&oversized).oom() {
        oversized.microbatch *= 2;
        assert!(
            oversized.microbatch < 1 << 30,
            "could not construct an OOM-predicted configuration"
        );
    }

    // Scenario 4: a loopback serve session with checkpoint spooling —
    // the serve counters (v3 quartet plus the v4 crash-recovery trio)
    // live in the daemon's server-level report, never in a request's own
    // snapshot. A pre-seeded spool makes the spooled request a resume:
    // `checkpoints_written`, `search_resumed`, and `client_retries` all
    // move.
    let spool = std::env::temp_dir().join(format!("aceso-obs-spool-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    std::fs::create_dir_all(&spool).expect("spool dir");
    let server = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            workers: 1,
            spool_dir: Some(spool.clone()),
            checkpoint_every: 1,
            ..ServeOptions::default()
        },
    )
    .expect("binds an ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    let req = Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 4,
        ..Request::default()
    };
    let first = aceso::serve::submit(&addr, &req).expect("first submit");
    assert_eq!(first.cache, "miss");
    let second = aceso::serve::submit(&addr, &req).expect("second submit");
    assert_eq!(second.cache, "hit");
    // Spool a mid-search checkpoint for a request id, exactly as a
    // previous daemon with `--spool-dir` would have, then resubmit it.
    let spooled_req = Request {
        request_id: Some("obs-job".into()),
        max_iterations: 8,
        ..req.clone()
    };
    let serve_model = aceso::model::zoo::by_name(&spooled_req.model).unwrap();
    let serve_cluster = ClusterSpec::v100_gpus(spooled_req.gpus);
    let serve_db = ProfileDb::build(&serve_model, &serve_cluster);
    let search = AcesoSearch::new(
        &serve_model,
        &serve_cluster,
        &serve_db,
        spooled_req.search_options(),
    );
    let aceso::search::SearchStep::Paused(ckpt) = search.run_partial(true, 2).expect("partial run")
    else {
        panic!("an 8-iteration search must pause at bound 2");
    };
    std::fs::write(
        aceso::serve::spool_path(&spool, "obs-job"),
        ckpt.to_json_string(),
    )
    .expect("seed spool");
    aceso::serve::submit(&addr, &spooled_req).expect("spooled submit");
    let unknown = aceso::serve::submit(
        &addr,
        &Request {
            model: "no-such-model".into(),
            ..Request::default()
        },
    );
    assert!(unknown.is_err(), "unknown model must be rejected");
    aceso::serve::shutdown(&addr).expect("shutdown");
    let server_report = handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&spool);

    // Scenario 5: two store-enabled daemons sharing one `--store-dir` —
    // the v8 store counters live in server-level reports only. Daemon A
    // rejects a planted mismatched-precision entry (`store_rejected`),
    // misses on an absent one (`store_misses`), writes both builds back
    // (`store_writes`), and its 1-byte disk budget evicts the older
    // entry (`store_evictions`); daemon B then resolves its cold miss
    // from the surviving entry (`store_hits`).
    let store_dir = std::env::temp_dir().join(format!("aceso-obs-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut fp32 = aceso::model::zoo::by_name("deepnet-8l").unwrap();
    fp32.precision = aceso::model::Precision::Fp32;
    let plant_cluster = ClusterSpec::v100_gpus(2);
    let store = aceso::store::Store::open(&store_dir, u64::MAX).expect("store opens");
    store
        .save(
            aceso::serve::model_fingerprint(&aceso::model::zoo::by_name("deepnet-8l").unwrap()),
            aceso::serve::cluster_fingerprint(&plant_cluster),
            &ProfileDb::build(&fp32, &plant_cluster),
        )
        .expect("plant mismatched-precision entry");
    let run_store_daemon = |budget: u64, models: &[&str]| {
        let server = Server::bind(
            "127.0.0.1:0",
            ServeOptions {
                store_dir: Some(store_dir.clone()),
                store_budget_bytes: budget,
                ..ServeOptions::default()
            },
        )
        .expect("binds an ephemeral port");
        let addr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.run());
        for model in models {
            let req = Request {
                model: (*model).into(),
                gpus: 2,
                max_iterations: 2,
                ..Request::default()
            };
            aceso::serve::submit(&addr, &req).expect("store-daemon submit");
        }
        aceso::serve::shutdown(&addr).expect("shutdown");
        handle.join().expect("store daemon thread")
    };
    let store_report_a = run_store_daemon(1, &["deepnet-8l", "deepnet-12l"]);
    let store_report_b = run_store_daemon(u64::MAX, &["deepnet-12l"]);
    let _ = std::fs::remove_dir_all(&store_dir);

    // Scenario 6: a store daemon whose filesystem refuses deletions —
    // the v9 retention counter. With a 1-byte budget the second
    // write-back must evict the first entry; the failing removal is
    // counted (`retention_sweep_errors`) and surfaced as a typed
    // `sweep_degraded` event instead of being silently swallowed.
    #[derive(Debug)]
    struct RemoveFailFs;
    impl aceso::util::fsio::Fs for RemoveFailFs {
        fn read(&self, path: &std::path::Path) -> std::io::Result<Vec<u8>> {
            aceso::util::fsio::RealFs.read(path)
        }
        fn write(&self, path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
            aceso::util::fsio::RealFs.write(path, bytes)
        }
        fn rename(&self, from: &std::path::Path, to: &std::path::Path) -> std::io::Result<()> {
            aceso::util::fsio::RealFs.rename(from, to)
        }
        fn remove_file(&self, _path: &std::path::Path) -> std::io::Result<()> {
            Err(std::io::Error::other("deletions refused"))
        }
        fn create_dir_all(&self, dir: &std::path::Path) -> std::io::Result<()> {
            aceso::util::fsio::RealFs.create_dir_all(dir)
        }
        fn scan_dir(
            &self,
            dir: &std::path::Path,
        ) -> std::io::Result<Vec<aceso::util::fsio::ScanEntry>> {
            aceso::util::fsio::RealFs.scan_dir(dir)
        }
        fn sync(&self, path: &std::path::Path) -> std::io::Result<()> {
            aceso::util::fsio::RealFs.sync(path)
        }
    }
    let sweep_dir = std::env::temp_dir().join(format!("aceso-obs-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&sweep_dir);
    let sweep_server = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            store_dir: Some(sweep_dir.clone()),
            store_budget_bytes: 1,
            fs: std::sync::Arc::new(RemoveFailFs),
            ..ServeOptions::default()
        },
    )
    .expect("binds an ephemeral port");
    let sweep_addr = sweep_server.local_addr().to_string();
    let sweep_handle = std::thread::spawn(move || sweep_server.run());
    for model in ["deepnet-8l", "deepnet-12l"] {
        let req = Request {
            model: model.into(),
            gpus: 2,
            max_iterations: 2,
            ..Request::default()
        };
        aceso::serve::submit(&sweep_addr, &req).expect("sweep-daemon submit");
    }
    aceso::serve::shutdown(&sweep_addr).expect("shutdown");
    let sweep_report = sweep_handle.join().expect("sweep daemon thread");
    let _ = std::fs::remove_dir_all(&sweep_dir);
    assert!(
        sweep_report.counter(Counter::RetentionSweepErrors) > 0,
        "a refused eviction must be counted, not swallowed"
    );
    assert!(
        sweep_report
            .events()
            .iter()
            .any(|e| e.kind() == "sweep_degraded"),
        "a refused eviction must surface as a typed sweep_degraded event"
    );

    obs.absorb(rec);
    let served = |c: Counter| {
        server_report.counter(c)
            + store_report_a.counter(c)
            + store_report_b.counter(c)
            + sweep_report.counter(c)
    };
    for c in Counter::ALL {
        // Scheduling-dependent counters only move when the work-stealing
        // frontier pool actually steals, which a single-threaded scenario
        // suite cannot force. Their wiring is proven by the deterministic
        // pool unit test `steal_on_empty_is_exercised_and_counted` in
        // `crates/core/src/frontier.rs`.
        if NONDETERMINISTIC_COUNTERS.contains(&c.name()) {
            continue;
        }
        assert!(
            obs.counter(c) + served(c) > 0,
            "counter `{}` stayed zero across the scenario suite — it is \
             silently dead; wire it to a production path or drop it from \
             the schema with a version bump",
            c.name()
        );
    }
}

/// A disabled recorder run produces no events and zero counters.
#[test]
fn disabled_metrics_record_nothing() {
    let model = small_gpt();
    let cluster = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&model, &cluster);
    let (_, obs) = AcesoSearch::new(&model, &cluster, &db, quick_opts())
        .run_observed(false)
        .expect("search succeeds");
    assert!(obs.events().is_empty());
    for c in Counter::ALL {
        assert_eq!(obs.counter(c), 0);
    }
}
