//! Random-primitive search: Aceso's loop with Heuristic-2 disabled.
//!
//! Exp#5 (Fig. 12) compares convergence with and without Heuristic-2 by
//! replacing the ranked primitive exploration with a uniformly random
//! order, three seeds per setting.

use aceso_cluster::ClusterSpec;
use aceso_core::{AcesoSearch, SearchError, SearchOptions, SearchResult};
use aceso_model::ModelGraph;
use aceso_profile::ProfileDb;

/// Runs the Aceso loop with random primitive/resource ordering.
pub fn random_search(
    model: &ModelGraph,
    cluster: &ClusterSpec,
    db: &ProfileDb,
    base: &SearchOptions,
    seed: u64,
) -> Result<SearchResult, SearchError> {
    let options = SearchOptions {
        use_heuristic2: false,
        seed,
        ..base.clone()
    };
    AcesoSearch::new(model, cluster, db, options).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_model::zoo::gpt3_custom;

    #[test]
    fn random_search_runs_and_varies_by_seed() {
        let m = gpt3_custom("t", 4, 512, 8, 256, 8192, 64);
        let c = ClusterSpec::v100(1, 4);
        let db = ProfileDb::build(&m, &c);
        let base = SearchOptions {
            max_iterations: 8,
            parallel: false,
            stage_counts: Some(vec![2]),
            ..SearchOptions::default()
        };
        let a = random_search(&m, &c, &db, &base, 1).expect("seed 1");
        let b = random_search(&m, &c, &db, &base, 1).expect("seed 1 again");
        assert_eq!(
            a.best_config.semantic_hash(),
            b.best_config.semantic_hash(),
            "same seed must reproduce"
        );
        // Different seeds explore different paths (explored counts differ
        // almost surely; allow equality of configs).
        let c2 = random_search(&m, &c, &db, &base, 2).expect("seed 2");
        assert!(a.explored > 0 && c2.explored > 0);
    }
}
