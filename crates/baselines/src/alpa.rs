//! Alpa-like two-level automated search.
//!
//! Alpa (OSDI '22) splits the problem into an *inter-op* pass — a dynamic
//! program assigning contiguous operator groups to submeshes — and an
//! *intra-op* pass choosing each stage's partition plan. This
//! reimplementation keeps the three simplifications the paper credits for
//! Aceso's advantage (§5.1):
//!
//! 1. operators are coarsened into `l` uniform layer groups (grid over
//!    `l`), so stages are built from groups, never single operators;
//! 2. the intra-op plan is chosen by a *communication-only* estimator
//!    (computation-time differences between plans are ignored) and is
//!    uniform across the stage;
//! 3. recomputation is model-global and grid-searched (`recomp ∈ {off,
//!    on}`), never per-operator.
//!
//! Search cost model: like the real Alpa, every distinct (stage range ×
//! submesh) candidate triggers an XLA-style compile + on-demand profile;
//! we account a modelled `compile_seconds_per_stage` for each. Beyond
//! `max_layers` model layers the compile step fails, reproducing the
//! behaviour Fig. 9 reports for >64-layer models.

use crate::BaselineResult;
use aceso_cluster::{ClusterSpec, Collective, CommGroup};
use aceso_config::init::split_ops_weighted;
use aceso_config::{OpParallel, ParallelConfig, StageConfig};
use aceso_model::ModelGraph;
use aceso_perf::PerfModel;
use aceso_profile::ProfileDb;
use std::collections::HashMap;
use std::time::Instant;

/// Alpa search options.
#[derive(Debug, Clone)]
pub struct AlpaOptions {
    /// Layer-group counts to grid over (`l`).
    pub layer_group_counts: Vec<usize>,
    /// Largest global microbatch to try.
    pub max_microbatch: usize,
    /// Modelled XLA compile + profile cost per distinct stage candidate,
    /// per 8 operators it contains (XLA compile time grows with the
    /// stage's op count, which is what makes the real Alpa's search cost
    /// scale linearly with model depth — Fig. 9).
    pub compile_seconds_per_stage: f64,
    /// Model layer count beyond which compilation fails (Fig. 9 observes
    /// 64 on the real system).
    pub max_layers: usize,
}

impl Default for AlpaOptions {
    fn default() -> Self {
        Self {
            layer_group_counts: vec![4, 8, 16],
            max_microbatch: 512,
            compile_seconds_per_stage: 0.25,
            max_layers: 64,
        }
    }
}

/// Alpa failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlpaError {
    /// XLA compilation blow-up on very deep models (Exp#3).
    CompileFailure {
        /// Approximate layer count of the model.
        layers: usize,
    },
    /// No grid point produced a valid configuration.
    NoConfig,
}

impl std::fmt::Display for AlpaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlpaError::CompileFailure { layers } => {
                write!(f, "XLA compilation failed for {layers}-layer model")
            }
            AlpaError::NoConfig => write!(f, "no valid configuration in the grid"),
        }
    }
}

impl std::error::Error for AlpaError {}

/// The Alpa-like searcher.
pub struct AlpaSearch<'a> {
    model: &'a ModelGraph,
    cluster: &'a ClusterSpec,
    db: &'a ProfileDb,
    options: AlpaOptions,
}

/// Cached stage candidate: chosen plan and its costs.
#[derive(Debug, Clone, Copy)]
struct StagePlan {
    tp: u32,
    /// Steady-state seconds per microbatch (compute + comm).
    steady: f64,
    /// Whether the optimistic memory check passes.
    mem_ok: bool,
}

impl<'a> AlpaSearch<'a> {
    /// Creates a searcher.
    pub fn new(
        model: &'a ModelGraph,
        cluster: &'a ClusterSpec,
        db: &'a ProfileDb,
        options: AlpaOptions,
    ) -> Self {
        Self {
            model,
            cluster,
            db,
            options,
        }
    }

    /// Approximate transformer-layer count of the model (8 ops per layer).
    fn approx_layers(&self) -> usize {
        (self.model.len() / 8).max(1)
    }

    /// Runs the two-level search.
    pub fn run(&self) -> Result<BaselineResult, AlpaError> {
        let layers = self.approx_layers();
        if layers > self.options.max_layers {
            return Err(AlpaError::CompileFailure { layers });
        }
        let start = Instant::now();
        let pm = PerfModel::new(self.model, self.cluster, self.db);
        let total = self.cluster.total_gpus();
        let meshes: Vec<usize> = (0..)
            .map(|i| 1usize << i)
            .take_while(|&m| m <= total)
            .collect();

        let mut best: Option<BaselineResult> = None;
        let mut explored = 0usize;
        let mut compiled_stages = 0usize;

        for &l in &self.options.layer_group_counts {
            let l = l.min(self.model.len());
            if l == 0 {
                continue;
            }
            let groups = split_ops_weighted(self.model, &vec![1.0; l]);
            let mut mbs = 1usize;
            while mbs <= self.options.max_microbatch.min(self.model.global_batch) {
                if !self.model.global_batch.is_multiple_of(mbs) {
                    mbs *= 2;
                    continue;
                }
                for recompute in [false, true] {
                    let mut cache: HashMap<(usize, usize, usize), Option<StagePlan>> =
                        HashMap::new();
                    let plan = self.inter_op_dp(
                        &groups,
                        &meshes,
                        mbs,
                        recompute,
                        &mut cache,
                        &mut compiled_stages,
                    );
                    explored += cache.len();
                    let Some(stage_list) = plan else { continue };
                    let Some(cfg) = self.build_config(&groups, &stage_list, mbs, recompute) else {
                        continue;
                    };
                    let Ok(est) = pm.evaluate(&cfg) else { continue };
                    explored += 1;
                    let cand = BaselineResult {
                        iteration_time: est.iteration_time,
                        score: est.score(),
                        oom: est.oom(),
                        config: cfg,
                        explored: 0,
                        wall_time: start.elapsed(),
                        modeled_seconds: 0.0,
                    };
                    if best.as_ref().is_none_or(|b| cand.score < b.score) {
                        best = Some(cand);
                    }
                }
                mbs *= 2;
            }
        }

        let mut best = best.ok_or(AlpaError::NoConfig)?;
        best.explored = explored;
        best.wall_time = start.elapsed();
        best.modeled_seconds = start.elapsed().as_secs_f64()
            + compiled_stages as f64 * self.options.compile_seconds_per_stage;
        Ok(best)
    }

    /// Inter-op pass: minimax DP over (group index, gpus remaining).
    /// Returns the stage list as `(group_start, group_end, mesh)` triples.
    #[allow(clippy::too_many_arguments)] // DP state threading is clearer flat.
    fn inter_op_dp(
        &self,
        groups: &[(usize, usize)],
        meshes: &[usize],
        mbs: usize,
        recompute: bool,
        cache: &mut HashMap<(usize, usize, usize), Option<StagePlan>>,
        compiled: &mut usize,
    ) -> Option<Vec<(usize, usize, usize)>> {
        let l = groups.len();
        let total = self.cluster.total_gpus();
        // memo[(i, r)] = (best minimax cost, k, mesh)
        let mut memo: HashMap<(usize, usize), (f64, usize, usize)> = HashMap::new();

        fn solve(
            this: &AlpaSearch<'_>,
            i: usize,
            r: usize,
            l: usize,
            groups: &[(usize, usize)],
            meshes: &[usize],
            mbs: usize,
            recompute: bool,
            cache: &mut HashMap<(usize, usize, usize), Option<StagePlan>>,
            compiled: &mut usize,
            memo: &mut HashMap<(usize, usize), (f64, usize, usize)>,
        ) -> f64 {
            if i == l {
                return if r == 0 { 0.0 } else { f64::INFINITY };
            }
            if r == 0 {
                return f64::INFINITY;
            }
            if let Some(&(c, _, _)) = memo.get(&(i, r)) {
                return c;
            }
            let mut best = (f64::INFINITY, 0usize, 0usize);
            for k in 1..=(l - i) {
                for &m in meshes {
                    if m > r {
                        break;
                    }
                    let plan = *cache.entry((i, i + k, m)).or_insert_with(|| {
                        // One XLA compile per stage candidate, costed by
                        // its operator count (≈ per layer).
                        let ops = groups[i + k - 1].1 - groups[i].0;
                        *compiled += (ops / 8).max(1);
                        this.intra_op_plan(groups[i].0, groups[i + k - 1].1, m, mbs, recompute)
                    });
                    let Some(plan) = plan else { continue };
                    if !plan.mem_ok {
                        continue;
                    }
                    let rest = solve(
                        this,
                        i + k,
                        r - m,
                        l,
                        groups,
                        meshes,
                        mbs,
                        recompute,
                        cache,
                        compiled,
                        memo,
                    );
                    let cost = plan.steady.max(rest);
                    if cost < best.0 {
                        best = (cost, k, m);
                    }
                }
            }
            memo.insert((i, r), best);
            best.0
        }

        let c = solve(
            self, 0, total, l, groups, meshes, mbs, recompute, cache, compiled, &mut memo,
        );
        if !c.is_finite() {
            return None;
        }
        // Reconstruct.
        let mut out = Vec::new();
        let (mut i, mut r) = (0usize, total);
        while i < l {
            let &(_, k, m) = memo.get(&(i, r))?;
            if k == 0 {
                return None;
            }
            out.push((i, i + k, m));
            i += k;
            r -= m;
        }
        Some(out)
    }

    /// Intra-op pass with Alpa's simplified estimator: among the uniform
    /// `(tp, dp)` factorisations of `mesh`, pick the plan with the least
    /// *communication* (computation differences between plans ignored).
    /// The returned steady time does include compute — Alpa profiles the
    /// chosen stage — but the *choice* never sees it.
    fn intra_op_plan(
        &self,
        op_start: usize,
        op_end: usize,
        mesh: usize,
        mbs: usize,
        recompute: bool,
    ) -> Option<StagePlan> {
        let mut best: Option<(f64, StagePlan)> = None;
        let mut tp = 1u32;
        while tp as usize <= mesh {
            let dp = (mesh / tp as usize) as u32;
            if mbs.is_multiple_of(dp as usize) {
                if let Some((comm, plan)) =
                    self.stage_cost(op_start, op_end, mesh, tp, dp, mbs, recompute)
                {
                    if best.as_ref().is_none_or(|(c, _)| comm < *c) {
                        best = Some((comm, plan));
                    }
                }
            }
            tp *= 2;
        }
        best.map(|(_, p)| p)
    }

    /// Costs one uniform stage candidate. Returns `(comm_only, plan)`.
    #[allow(clippy::too_many_arguments)]
    fn stage_cost(
        &self,
        op_start: usize,
        op_end: usize,
        mesh: usize,
        tp: u32,
        dp: u32,
        mbs: usize,
        recompute: bool,
    ) -> Option<(f64, StagePlan)> {
        let act_bytes = self.model.precision.bytes();
        let param_bytes = 2 * act_bytes;
        let opt_bytes = self.model.precision.optimizer_bytes();
        let capacity = self.cluster.device.mem_bytes;
        // Representative placement at GPU 0 (stages are placed later).
        let tp_group = CommGroup::contiguous(0, tp as usize);
        let dp_group = CommGroup::strided(0, dp as usize, tp as usize);

        let mut compute = 0.0f64;
        let mut comm = 0.0f64;
        let mut grad_bytes = 0u64;
        let mut mem = 0u64;
        for g in op_start..op_end {
            let op = &self.model.ops[g];
            let op_tp = clamp_tp(tp, op.tp_limit, mesh as u32);
            let op_dp = mesh as u32 / op_tp;
            if !mbs.is_multiple_of(op_dp as usize) {
                return None;
            }
            let per_dev = (mbs / op_dp as usize) as u64;
            let f = self.db.op_fwd_time(op, op_tp, 0, per_dev);
            compute += f * if recompute { 4.0 } else { 3.0 };
            let spec = op.partition(0);
            if op_tp > 1 {
                let fwd = spec.fwd_comm_elems * per_dev * act_bytes;
                let bwd = spec.bwd_comm_elems * per_dev * act_bytes;
                comm += self
                    .db
                    .collective_time(Collective::AllReduce, fwd, &tp_group)
                    * if recompute { 2.0 } else { 1.0 };
                comm += self
                    .db
                    .collective_time(Collective::AllReduce, bwd, &tp_group);
            }
            let params_rank = op.params_per_rank(0, op_tp);
            grad_bytes += params_rank * act_bytes;
            mem += params_rank * (param_bytes + opt_bytes);
            if !recompute {
                mem += op.stash_per_rank(0, op_tp) * per_dev * act_bytes;
            }
        }
        if dp > 1 {
            comm += self
                .db
                .collective_time(Collective::AllReduce, grad_bytes, &dp_group);
        }
        Some((
            comm,
            StagePlan {
                tp,
                steady: compute + comm,
                // Optimistic single-in-flight check; the full evaluation of
                // the final configuration applies Eq. 1 properly.
                mem_ok: mem <= capacity,
            },
        ))
    }

    /// Materialises the DP's stage list into a full configuration.
    fn build_config(
        &self,
        groups: &[(usize, usize)],
        stages: &[(usize, usize, usize)],
        mbs: usize,
        recompute: bool,
    ) -> Option<ParallelConfig> {
        let mut out = Vec::with_capacity(stages.len());
        for &(gi, gj, mesh) in stages {
            let op_start = groups[gi].0;
            let op_end = groups[gj - 1].1;
            let plan = self.intra_op_plan(op_start, op_end, mesh, mbs, recompute)?;
            let ops = (op_start..op_end)
                .map(|g| {
                    let limit = self.model.ops[g].tp_limit;
                    let op_tp = clamp_tp(plan.tp, limit, mesh as u32);
                    OpParallel {
                        tp: op_tp,
                        dp: mesh as u32 / op_tp,
                        dim_index: 0,
                        recompute,
                        zero: false,
                    }
                })
                .collect();
            out.push(StageConfig {
                op_start,
                op_end,
                gpus: mesh,
                ops,
            });
        }
        Some(ParallelConfig {
            stages: out,
            microbatch: mbs,
        })
    }
}

/// Largest power of two ≤ `want` that the op accepts and divides `gpus`.
fn clamp_tp(want: u32, limit: u32, gpus: u32) -> u32 {
    let mut tp = want.min(limit).max(1);
    if !tp.is_power_of_two() {
        tp = tp.next_power_of_two() / 2;
    }
    while tp > 1 && !gpus.is_multiple_of(tp) {
        tp /= 2;
    }
    tp
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_config::validate::validate;
    use aceso_model::zoo::{deepnet, gpt3_custom};

    fn setup() -> (ModelGraph, ClusterSpec) {
        (
            gpt3_custom("t", 4, 512, 8, 256, 8192, 64),
            ClusterSpec::v100(1, 8),
        )
    }

    fn opts() -> AlpaOptions {
        AlpaOptions {
            layer_group_counts: vec![2, 4],
            max_microbatch: 64,
            ..AlpaOptions::default()
        }
    }

    #[test]
    fn finds_valid_config() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let r = AlpaSearch::new(&m, &c, &db, opts())
            .run()
            .expect("alpa runs");
        assert!(validate(&r.config, &m, &c).is_ok());
        assert!(!r.oom);
        assert!(r.explored > 0);
        assert!(r.modeled_seconds > r.wall_time.as_secs_f64());
    }

    #[test]
    fn stage_plans_are_uniform_and_recompute_global() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let r = AlpaSearch::new(&m, &c, &db, opts())
            .run()
            .expect("alpa runs");
        for s in &r.config.stages {
            let rc = s.num_recomputed();
            assert!(rc == 0 || rc == s.num_ops());
        }
    }

    #[test]
    fn compile_failure_beyond_64_layers() {
        let m = deepnet(128);
        let c = ClusterSpec::v100(1, 8);
        let db = ProfileDb::build(&m, &c);
        let r = AlpaSearch::new(&m, &c, &db, AlpaOptions::default()).run();
        assert!(matches!(r, Err(AlpaError::CompileFailure { .. })));
    }

    #[test]
    fn succeeds_at_64_layers() {
        let m = deepnet(64);
        let c = ClusterSpec::v100(1, 8);
        let db = ProfileDb::build(&m, &c);
        let r = AlpaSearch::new(
            &m,
            &c,
            &db,
            AlpaOptions {
                layer_group_counts: vec![8],
                max_microbatch: 16,
                ..AlpaOptions::default()
            },
        )
        .run();
        assert!(r.is_ok(), "{r:?}");
    }

    #[test]
    fn clamp_tp_behaviour() {
        assert_eq!(clamp_tp(8, 4, 8), 4);
        assert_eq!(clamp_tp(8, 64, 8), 8);
        assert_eq!(clamp_tp(1, 64, 8), 1);
    }

    #[test]
    fn deterministic_and_modeled_cost_scales_with_depth() {
        let c = ClusterSpec::v100(1, 4);
        let shallow = gpt3_custom("s", 4, 256, 4, 128, 8192, 32);
        let deep = gpt3_custom("d", 16, 256, 4, 128, 8192, 32);
        let dbs = ProfileDb::build(&shallow, &c);
        let dbd = ProfileDb::build(&deep, &c);
        let o = AlpaOptions {
            layer_group_counts: vec![4],
            max_microbatch: 16,
            ..AlpaOptions::default()
        };
        let rs = AlpaSearch::new(&shallow, &c, &dbs, o.clone())
            .run()
            .expect("shallow");
        let rs2 = AlpaSearch::new(&shallow, &c, &dbs, o.clone())
            .run()
            .expect("shallow again");
        assert_eq!(rs.config.semantic_hash(), rs2.config.semantic_hash());
        let rd = AlpaSearch::new(&deep, &c, &dbd, o).run().expect("deep");
        // The XLA compile model makes cost grow with model depth (Fig. 9's
        // linear trend).
        assert!(
            rd.modeled_seconds > 1.5 * rs.modeled_seconds,
            "deep {} vs shallow {}",
            rd.modeled_seconds,
            rs.modeled_seconds
        );
    }

    #[test]
    fn wider_grid_never_worse() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let narrow = AlpaSearch::new(
            &m,
            &c,
            &db,
            AlpaOptions {
                layer_group_counts: vec![2],
                max_microbatch: 16,
                ..AlpaOptions::default()
            },
        )
        .run()
        .expect("narrow");
        let wide = AlpaSearch::new(
            &m,
            &c,
            &db,
            AlpaOptions {
                layer_group_counts: vec![2, 4, 8],
                max_microbatch: 64,
                ..AlpaOptions::default()
            },
        )
        .run()
        .expect("wide");
        assert!(wide.score <= narrow.score + 1e-9);
        assert!(wide.explored > narrow.explored);
    }
}
