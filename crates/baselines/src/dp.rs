//! Pruned dynamic-programming search (Exp#4's comparison point).
//!
//! A classic mathematical-programming formulation at operator granularity:
//! choose contiguous op ranges as pipeline stages and, per stage, a device
//! mesh plus a uniform `(tp, dp, recompute)` plan, minimising the maximum
//! stage steady time, with the prunings the paper describes (bounded
//! microbatch, power-of-two tp/dp, bounded meshes). Every (range, plan)
//! candidate the DP examines is counted — this count is what Fig. 10
//! compares against Aceso's explored-configuration count.
//!
//! Stage costs accumulate incrementally while the range end advances, so
//! examining tens of millions of candidates stays tractable.

use crate::BaselineResult;
use aceso_cluster::{ClusterSpec, Collective, CommGroup};
use aceso_config::{OpParallel, ParallelConfig, StageConfig};
use aceso_model::ModelGraph;
use aceso_perf::PerfModel;
use aceso_profile::ProfileDb;
use std::time::Instant;

/// Pruning bounds of the DP search.
#[derive(Debug, Clone)]
pub struct DpOptions {
    /// Largest global microbatch to try.
    pub max_microbatch: usize,
    /// Largest op count per stage (`∞` = model length).
    pub max_ops_per_stage: usize,
    /// In-flight microbatch bounds to sweep for the memory prune (the DP
    /// does not know the final stage count while pruning, so it is run
    /// once per assumption and the best fully-evaluated result kept).
    pub assumed_in_flight: Vec<u64>,
}

impl Default for DpOptions {
    fn default() -> Self {
        Self {
            max_microbatch: 64,
            max_ops_per_stage: usize::MAX,
            assumed_in_flight: vec![1, 2, 4, 8],
        }
    }
}

/// The DP searcher.
pub struct DpSearch<'a> {
    model: &'a ModelGraph,
    cluster: &'a ClusterSpec,
    db: &'a ProfileDb,
    options: DpOptions,
}

/// Recompute policy of one DP plan. `Heavy` recomputes only the
/// operators whose stash exceeds twice the model's mean (attention cores
/// and similar) — a coarse, DP-friendly form of selective recomputation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RcMode {
    None,
    Heavy,
    All,
}

/// One uniform stage plan considered by the DP.
#[derive(Debug, Clone, Copy)]
struct Plan {
    mesh: usize,
    tp: u32,
    dp: u32,
    recompute: RcMode,
}

impl<'a> DpSearch<'a> {
    /// Creates a searcher.
    pub fn new(
        model: &'a ModelGraph,
        cluster: &'a ClusterSpec,
        db: &'a ProfileDb,
        options: DpOptions,
    ) -> Self {
        Self {
            model,
            cluster,
            db,
            options,
        }
    }

    /// All (mesh, tp, dp, rc) plans to try per stage range.
    fn plans(&self) -> Vec<Plan> {
        let total = self.cluster.total_gpus();
        let mut out = Vec::new();
        let mut mesh = 1usize;
        while mesh <= total {
            let mut tp = 1u32;
            while tp as usize <= mesh {
                let dp = (mesh / tp as usize) as u32;
                for recompute in [RcMode::None, RcMode::Heavy, RcMode::All] {
                    out.push(Plan {
                        mesh,
                        tp,
                        dp,
                        recompute,
                    });
                }
                tp *= 2;
            }
            mesh *= 2;
        }
        out
    }

    /// Runs the DP for every microbatch in the grid; returns the best
    /// configuration plus the total number of candidates examined.
    pub fn run(&self) -> Option<BaselineResult> {
        let start = Instant::now();
        let pm = PerfModel::new(self.model, self.cluster, self.db);
        let mut explored = 0usize;
        let mut best: Option<BaselineResult> = None;

        let mut mbs = 1usize;
        while mbs <= self.options.max_microbatch.min(self.model.global_batch) {
            if !self.model.global_batch.is_multiple_of(mbs) {
                mbs *= 2;
                continue;
            }
            for &aif in &self.options.assumed_in_flight {
                let Some(cfg) = self.solve_for_microbatch(mbs, aif, &mut explored) else {
                    continue;
                };
                let Ok(est) = pm.evaluate(&cfg) else { continue };
                let cand = BaselineResult {
                    iteration_time: est.iteration_time,
                    score: est.score(),
                    oom: est.oom(),
                    config: cfg,
                    explored: 0,
                    wall_time: start.elapsed(),
                    modeled_seconds: 0.0,
                };
                if best.as_ref().is_none_or(|b| cand.score < b.score) {
                    best = Some(cand);
                }
            }
            mbs *= 2;
        }
        best.map(|mut b| {
            b.explored = explored;
            b.wall_time = start.elapsed();
            b.modeled_seconds = start.elapsed().as_secs_f64();
            b
        })
    }

    /// Minimax DP for one microbatch size and one in-flight assumption.
    fn solve_for_microbatch(
        &self,
        mbs: usize,
        assumed_in_flight: u64,
        explored: &mut usize,
    ) -> Option<ParallelConfig> {
        let l = self.model.len();
        let total = self.cluster.total_gpus();
        let plans = self.plans();
        let act_bytes = self.model.precision.bytes();
        let capacity = self.cluster.device.mem_bytes;
        // Ops the `Heavy` recompute mode targets.
        let mean_stash = self.model.ops.iter().map(|o| o.stash_elems).sum::<u64>()
            / self.model.len().max(1) as u64;
        let heavy: Vec<bool> = self
            .model
            .ops
            .iter()
            .map(|o| o.stash_elems > 2 * mean_stash)
            .collect();

        // f[i][r] = (minimax cost over suffix, chosen j, chosen plan idx)
        let inf = (f64::INFINITY, 0usize, usize::MAX);
        let mut f = vec![vec![inf; total + 1]; l + 1];
        f[l][0] = (0.0, l, usize::MAX);

        for i in (0..l).rev() {
            for (pi, plan) in plans.iter().enumerate() {
                if !mbs.is_multiple_of(plan.dp as usize) {
                    continue;
                }
                // Incremental accumulation over the range end j.
                let mut compute = 0.0f64;
                let mut comm = 0.0f64;
                let mut grad_bytes = 0u64;
                let mut mem = 0u64;
                let tp_group = CommGroup::contiguous(0, plan.tp as usize);
                let dp_group = CommGroup::strided(0, plan.dp as usize, plan.tp as usize);
                let max_j = i.saturating_add(self.options.max_ops_per_stage).min(l);
                for j in (i + 1)..=max_j {
                    let op = &self.model.ops[j - 1];
                    let op_tp = clamp_tp(plan.tp, op.tp_limit, plan.mesh as u32);
                    let op_dp = plan.mesh as u32 / op_tp;
                    if !mbs.is_multiple_of(op_dp as usize) {
                        break;
                    }
                    let per_dev = (mbs / op_dp as usize) as u64;
                    let rc = match plan.recompute {
                        RcMode::None => false,
                        RcMode::Heavy => heavy[j - 1],
                        RcMode::All => true,
                    };
                    let fwd = self.db.op_fwd_time(op, op_tp, 0, per_dev);
                    compute += fwd * if rc { 4.0 } else { 3.0 };
                    let spec = op.partition(0);
                    if op_tp > 1 {
                        let fb = spec.fwd_comm_elems * per_dev * act_bytes;
                        let bb = spec.bwd_comm_elems * per_dev * act_bytes;
                        comm += self
                            .db
                            .collective_time(Collective::AllReduce, fb, &tp_group);
                        comm += self
                            .db
                            .collective_time(Collective::AllReduce, bb, &tp_group);
                    }
                    let params_rank = op.params_per_rank(0, op_tp);
                    grad_bytes += params_rank * act_bytes;
                    mem += params_rank * (2 * act_bytes + self.model.precision.optimizer_bytes());
                    if !rc {
                        mem +=
                            op.stash_per_rank(0, op_tp) * per_dev * act_bytes * assumed_in_flight;
                    }

                    *explored += 1;
                    if mem > capacity {
                        // Memory prune: extending further only grows memory.
                        break;
                    }
                    let dp_sync = if plan.dp > 1 {
                        self.db
                            .collective_time(Collective::AllReduce, grad_bytes, &dp_group)
                    } else {
                        0.0
                    };
                    let stage_cost = compute + comm + dp_sync;
                    for r in plan.mesh..=total {
                        let rest = f[j][r - plan.mesh].0;
                        if !rest.is_finite() {
                            continue;
                        }
                        let cost = stage_cost.max(rest);
                        if cost < f[i][r].0 {
                            f[i][r] = (cost, j, pi);
                        }
                    }
                }
            }
        }

        if !f[0][total].0.is_finite() {
            return None;
        }
        // Reconstruct.
        let mut stages = Vec::new();
        let (mut i, mut r) = (0usize, total);
        while i < l {
            let (_, j, pi) = f[i][r];
            if pi == usize::MAX {
                return None;
            }
            let plan = plans[pi];
            let mean_stash = self.model.ops.iter().map(|o| o.stash_elems).sum::<u64>()
                / self.model.len().max(1) as u64;
            let ops = (i..j)
                .map(|g| {
                    let limit = self.model.ops[g].tp_limit;
                    let op_tp = clamp_tp(plan.tp, limit, plan.mesh as u32);
                    let recompute = match plan.recompute {
                        RcMode::None => false,
                        RcMode::Heavy => self.model.ops[g].stash_elems > 2 * mean_stash,
                        RcMode::All => true,
                    };
                    OpParallel {
                        tp: op_tp,
                        dp: plan.mesh as u32 / op_tp,
                        dim_index: 0,
                        recompute,
                        zero: false,
                    }
                })
                .collect();
            stages.push(StageConfig {
                op_start: i,
                op_end: j,
                gpus: plan.mesh,
                ops,
            });
            i = j;
            r -= plan.mesh;
        }
        Some(ParallelConfig {
            stages,
            microbatch: mbs,
        })
    }
}

/// Largest power of two ≤ `want` accepted by the op that divides `gpus`.
fn clamp_tp(want: u32, limit: u32, gpus: u32) -> u32 {
    let mut tp = want.min(limit).max(1);
    if !tp.is_power_of_two() {
        tp = tp.next_power_of_two() / 2;
    }
    while tp > 1 && !gpus.is_multiple_of(tp) {
        tp /= 2;
    }
    tp
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_config::validate::validate;
    use aceso_model::zoo::gpt3_custom;

    fn setup() -> (ModelGraph, ClusterSpec) {
        (
            gpt3_custom("t", 2, 256, 4, 128, 1000, 16),
            ClusterSpec::v100(1, 4),
        )
    }

    #[test]
    fn dp_finds_valid_config() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let r = DpSearch::new(&m, &c, &db, DpOptions::default())
            .run()
            .expect("dp finds config");
        assert!(validate(&r.config, &m, &c).is_ok());
        assert!(!r.oom);
        assert!(r.explored > 100);
    }

    #[test]
    fn explored_count_scales_with_model() {
        let c = ClusterSpec::v100(1, 4);
        let small = gpt3_custom("s", 2, 256, 4, 128, 1000, 16);
        let large = gpt3_custom("l", 4, 256, 4, 128, 1000, 16);
        let dbs = ProfileDb::build(&small, &c);
        let dbl = ProfileDb::build(&large, &c);
        let rs = DpSearch::new(&small, &c, &dbs, DpOptions::default())
            .run()
            .expect("small");
        let rl = DpSearch::new(&large, &c, &dbl, DpOptions::default())
            .run()
            .expect("large");
        assert!(rl.explored > 2 * rs.explored);
    }

    #[test]
    fn dp_is_deterministic() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let a = DpSearch::new(&m, &c, &db, DpOptions::default())
            .run()
            .expect("a");
        let b = DpSearch::new(&m, &c, &db, DpOptions::default())
            .run()
            .expect("b");
        assert_eq!(a.config.semantic_hash(), b.config.semantic_hash());
        assert_eq!(a.explored, b.explored);
    }

    #[test]
    fn ops_per_stage_prune_respected() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let r = DpSearch::new(
            &m,
            &c,
            &db,
            DpOptions {
                max_ops_per_stage: 8,
                ..DpOptions::default()
            },
        )
        .run()
        .expect("dp runs");
        assert!(r.config.stages.iter().all(|s| s.num_ops() <= 8));
    }
}
