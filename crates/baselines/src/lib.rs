//! Baseline configuration searchers the paper compares against.
//!
//! * [`megatron`] — Megatron-LM's five global knobs (tp, dp, pp,
//!   microbatch, recompute-all) found by grid search over Aceso's
//!   performance model, exactly how §5 builds its strong manual baseline.
//! * [`alpa`] — an Alpa-like two-level search: inter-op dynamic program
//!   over operator groups × submeshes, an intra-op plan chooser with
//!   Alpa's *simplified* cost estimator (communication only, computation
//!   differences ignored — §5.1's analysis), model-global recomputation,
//!   and a grid over (l, b, recomp). Includes a modelled XLA
//!   compile/profile cost and the >64-layer compile failure (Exp#3).
//! * [`dp`] — the pruned pure dynamic-programming search of Exp#4, which
//!   counts every configuration it examines.
//! * [`random`] — Aceso's loop with Heuristic-2 disabled (Exp#5).

pub mod alpa;
pub mod dp;
pub mod megatron;
pub mod random;

pub use alpa::{AlpaError, AlpaOptions, AlpaSearch};
pub use dp::{DpOptions, DpSearch};
pub use megatron::{MegatronOptions, MegatronSearch};
pub use random::random_search;

use aceso_config::ParallelConfig;
use std::time::Duration;

/// Common result type of the baseline searchers.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// The best configuration found.
    pub config: ParallelConfig,
    /// Predicted iteration time (seconds).
    pub iteration_time: f64,
    /// Comparison score (OOM-penalised iteration time).
    pub score: f64,
    /// Whether the best configuration is still predicted OOM.
    pub oom: bool,
    /// Number of configurations examined.
    pub explored: usize,
    /// Wall-clock time of the search itself.
    pub wall_time: Duration,
    /// Modelled total search cost in seconds (adds simulated compile /
    /// profile overheads where the real system would pay them).
    pub modeled_seconds: f64,
}
