//! Megatron-LM baseline: global (tp, dp, pp, b, recomp) grid search.
//!
//! Megatron-LM sets its five options globally — every layer shares the
//! same tensor/data-parallel degrees, stages are uniform, recomputation is
//! all-or-nothing. The paper makes it a strong baseline by grid-searching
//! these options with Aceso's performance model (§5); this module does the
//! same.

use crate::BaselineResult;
use aceso_cluster::ClusterSpec;
use aceso_config::init::{split_gpus_pow2, split_ops_weighted};
use aceso_config::{OpParallel, ParallelConfig, StageConfig};
use aceso_model::ModelGraph;
use aceso_perf::PerfModel;
use aceso_profile::ProfileDb;
use std::time::Instant;

/// Grid bounds for the Megatron search.
#[derive(Debug, Clone)]
pub struct MegatronOptions {
    /// Largest tensor-parallel degree to try (Megatron keeps tp within a
    /// node).
    pub max_tp: u32,
    /// Largest global microbatch size to try.
    pub max_microbatch: usize,
}

impl Default for MegatronOptions {
    fn default() -> Self {
        Self {
            max_tp: 8,
            max_microbatch: 512,
        }
    }
}

/// The Megatron-LM grid searcher.
pub struct MegatronSearch<'a> {
    model: &'a ModelGraph,
    cluster: &'a ClusterSpec,
    db: &'a ProfileDb,
    options: MegatronOptions,
}

impl<'a> MegatronSearch<'a> {
    /// Creates a searcher.
    pub fn new(
        model: &'a ModelGraph,
        cluster: &'a ClusterSpec,
        db: &'a ProfileDb,
        options: MegatronOptions,
    ) -> Self {
        Self {
            model,
            cluster,
            db,
            options,
        }
    }

    /// Builds the uniform Megatron config for one grid point, or `None`
    /// when the point is structurally impossible.
    fn build(
        &self,
        tp: u32,
        pp: usize,
        dp: u32,
        microbatch: usize,
        recompute: bool,
    ) -> Option<ParallelConfig> {
        let n = self.model.len();
        if n < pp {
            return None;
        }
        let gpus_per_stage = (tp * dp) as usize;
        // Uniform stages: equal device counts, flop-even op ranges.
        let splits = split_gpus_pow2(self.cluster.total_gpus(), pp)?;
        if splits.iter().any(|&g| g != gpus_per_stage) {
            return None;
        }
        let weights = vec![1.0; pp];
        let ranges = split_ops_weighted(self.model, &weights);
        let stages = ranges
            .iter()
            .map(|&(s, e)| {
                let ops = (s..e)
                    .map(|g| {
                        // Megatron clamps tp at each op's divisibility.
                        let limit = self.model.ops[g].tp_limit;
                        let op_tp = clamp_pow2(tp.min(limit), gpus_per_stage as u32);
                        OpParallel {
                            tp: op_tp,
                            dp: gpus_per_stage as u32 / op_tp,
                            dim_index: 0,
                            recompute,
                            zero: false,
                        }
                    })
                    .collect();
                StageConfig {
                    op_start: s,
                    op_end: e,
                    gpus: gpus_per_stage,
                    ops,
                }
            })
            .collect();
        Some(ParallelConfig { stages, microbatch })
    }

    /// Runs the grid search; `None` when no grid point is valid.
    pub fn run(&self) -> Option<BaselineResult> {
        let start = Instant::now();
        let pm = PerfModel::new(self.model, self.cluster, self.db);
        let total = self.cluster.total_gpus();
        let mut best: Option<BaselineResult> = None;
        let mut explored = 0usize;

        let mut tp = 1u32;
        while tp as usize <= total.min(self.options.max_tp as usize) {
            let mut pp = 1usize;
            while pp * tp as usize <= total {
                if !total.is_multiple_of(pp * tp as usize) {
                    pp += 1;
                    continue;
                }
                let dp = (total / (pp * tp as usize)) as u32;
                if !dp.is_power_of_two() {
                    pp += 1;
                    continue;
                }
                let mut mbs = dp as usize;
                while mbs <= self.options.max_microbatch.min(self.model.global_batch) {
                    if self.model.global_batch.is_multiple_of(mbs) {
                        for recompute in [false, true] {
                            let Some(cfg) = self.build(tp, pp, dp, mbs, recompute) else {
                                continue;
                            };
                            let Ok(est) = pm.evaluate(&cfg) else {
                                continue;
                            };
                            explored += 1;
                            let cand = BaselineResult {
                                iteration_time: est.iteration_time,
                                score: est.score(),
                                oom: est.oom(),
                                config: cfg,
                                explored: 0,
                                wall_time: start.elapsed(),
                                modeled_seconds: 0.0,
                            };
                            if best.as_ref().is_none_or(|b| cand.score < b.score) {
                                best = Some(cand);
                            }
                        }
                    }
                    mbs *= 2;
                }
                pp += 1;
            }
            tp *= 2;
        }
        best.map(|mut b| {
            b.explored = explored;
            b.wall_time = start.elapsed();
            b.modeled_seconds = start.elapsed().as_secs_f64();
            b
        })
    }
}

/// Largest power of two ≤ `want` that divides `gpus`.
fn clamp_pow2(want: u32, gpus: u32) -> u32 {
    let mut tp = want.max(1);
    if !tp.is_power_of_two() {
        tp = tp.next_power_of_two() / 2;
    }
    while tp > 1 && !gpus.is_multiple_of(tp) {
        tp /= 2;
    }
    tp
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_config::validate::validate;
    use aceso_model::zoo::gpt3_custom;

    fn setup() -> (ModelGraph, ClusterSpec) {
        (
            gpt3_custom("t", 4, 512, 8, 256, 8192, 64),
            ClusterSpec::v100(1, 8),
        )
    }

    #[test]
    fn grid_finds_feasible_config() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let r = MegatronSearch::new(&m, &c, &db, MegatronOptions::default())
            .run()
            .expect("grid non-empty");
        assert!(!r.oom);
        assert!(r.explored > 10);
        assert!(validate(&r.config, &m, &c).is_ok());
    }

    #[test]
    fn configs_are_uniform() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let r = MegatronSearch::new(&m, &c, &db, MegatronOptions::default())
            .run()
            .expect("grid non-empty");
        // All stages share one device count; recompute is all-or-nothing.
        let g0 = r.config.stages[0].gpus;
        assert!(r.config.stages.iter().all(|s| s.gpus == g0));
        let rc: usize = r.config.stages.iter().map(|s| s.num_recomputed()).sum();
        let n: usize = r.config.stages.iter().map(|s| s.num_ops()).sum();
        assert!(rc == 0 || rc == n, "recompute must be global, got {rc}/{n}");
    }

    #[test]
    fn clamp_pow2_works() {
        assert_eq!(clamp_pow2(8, 8), 8);
        assert_eq!(clamp_pow2(6, 8), 4);
        assert_eq!(clamp_pow2(8, 4), 4);
        assert_eq!(clamp_pow2(0, 8), 1);
    }

    #[test]
    fn single_gpu_grid() {
        let m = gpt3_custom("t", 2, 256, 4, 128, 1000, 16);
        let c = ClusterSpec::v100(1, 1);
        let db = ProfileDb::build(&m, &c);
        let r = MegatronSearch::new(&m, &c, &db, MegatronOptions::default())
            .run()
            .expect("1-gpu grid works");
        assert_eq!(r.config.total_gpus(), 1);
    }

    #[test]
    fn handles_wide_resnet_fp32() {
        let m = aceso_model::zoo::wide_resnet_custom("t-wrn", &[1, 1, 1, 1], 1, 64);
        let c = ClusterSpec::v100(1, 4);
        let db = ProfileDb::build(&m, &c);
        let r = MegatronSearch::new(&m, &c, &db, MegatronOptions::default())
            .run()
            .expect("wrn grid works");
        assert!(!r.oom);
        assert!(validate(&r.config, &m, &c).is_ok());
    }

    #[test]
    fn handles_t5_encoder_decoder() {
        let m = aceso_model::zoo::t5_custom("t-t5", 2, 2, 512, 8, 64);
        let c = ClusterSpec::v100(1, 4);
        let db = ProfileDb::build(&m, &c);
        let r = MegatronSearch::new(&m, &c, &db, MegatronOptions::default())
            .run()
            .expect("t5 grid works");
        assert!(validate(&r.config, &m, &c).is_ok());
    }

    #[test]
    fn grid_is_deterministic() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let a = MegatronSearch::new(&m, &c, &db, MegatronOptions::default())
            .run()
            .expect("a");
        let b = MegatronSearch::new(&m, &c, &db, MegatronOptions::default())
            .run()
            .expect("b");
        assert_eq!(a.config.semantic_hash(), b.config.semantic_hash());
        assert_eq!(a.explored, b.explored);
    }

    #[test]
    fn tp_capped_at_node_size() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let r = MegatronSearch::new(
            &m,
            &c,
            &db,
            MegatronOptions {
                max_tp: 2,
                ..MegatronOptions::default()
            },
        )
        .run()
        .expect("runs");
        for s in &r.config.stages {
            assert!(s.ops.iter().all(|o| o.tp <= 2));
        }
    }
}
