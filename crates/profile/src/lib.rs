//! Simulated operator profiler and reusable profile database (paper §3.3).
//!
//! The paper builds its performance model on *profiled* per-operator
//! latencies/memory under different partitionings, plus collective times
//! under different group sizes; the profiled database is reused across
//! searches. With no GPUs available, this crate substitutes a *simulated
//! profiler*: an analytic device model ([`device_model`]) plays the role of
//! the hardware, and each "measurement" gets a deterministic per-kernel
//! perturbation (from a stable hash of the kernel identity) so that
//! profiles have the same non-ideal texture real ones do — launch
//! overheads, saturation effects at small per-device work, and
//! bandwidth-bound elementwise kernels.

pub mod db;
pub mod device_model;

pub use db::{PrecisionMismatch, ProfileDb};
pub use device_model::{op_fwd_time, op_working_set};
