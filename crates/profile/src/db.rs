//! The profile database.
//!
//! [`ProfileDb::build`] plays the role of the paper's offline profiling
//! run: it "measures" every distinct operator shape under every candidate
//! tensor-parallel degree, partition dimension and power-of-two per-device
//! batch, 50 repetitions each (whose simulated wall time is accounted and
//! reported, like the paper's 11 min / 5 min / 1.5 h figures), and stores
//! the averaged results. The database can be serialised and reused across
//! searches over models that share operators (§3.3).
//!
//! Lookups for keys outside the prefilled grid fall back to measuring on
//! demand with the same deterministic perturbation, so a hit and a miss
//! return identical values — the database is semantically a memo table.

use crate::device_model;
use aceso_cluster::{collective, ClusterSpec, Collective, CommGroup};
use aceso_model::{ModelGraph, Operator, Precision};
use aceso_util::hash::keyed_jitter;
use aceso_util::json::{obj, FromJson, JsonError, ToJson, Value};
use aceso_util::FnvHasher;
use std::collections::HashMap;
use std::sync::RwLock;

/// Relative spread of the simulated per-kernel measurement perturbation.
const KERNEL_JITTER: f64 = 0.02;
/// Relative spread of the simulated collective perturbation.
const COMM_JITTER: f64 = 0.03;
/// Profiling repetitions per operator (paper §5.3 runs each op 50×).
const PROFILE_REPS: u32 = 50;

/// Composite lookup key: operator signature × tp × dim × per-device batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    sig: u64,
    tp: u32,
    dim: u8,
    batch: u64,
}

/// Serialisable snapshot of a [`ProfileDb`].
#[derive(Debug)]
struct Snapshot {
    cluster: ClusterSpec,
    precision: Precision,
    profiling_seconds: f64,
    entries: Vec<(Key, f64)>,
}

impl ToJson for Snapshot {
    fn to_json_value(&self) -> Value {
        let entries = self
            .entries
            .iter()
            .map(|(k, t)| {
                obj([
                    ("sig", Value::UInt(k.sig)),
                    ("tp", Value::UInt(u64::from(k.tp))),
                    ("dim", Value::UInt(u64::from(k.dim))),
                    ("batch", Value::UInt(k.batch)),
                    ("time", Value::Float(*t)),
                ])
            })
            .collect();
        obj([
            ("cluster", self.cluster.to_json_value()),
            ("precision", self.precision.to_json_value()),
            ("profiling_seconds", Value::Float(self.profiling_seconds)),
            ("entries", Value::Array(entries)),
        ])
    }
}

impl FromJson for Snapshot {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        let mut entries = Vec::new();
        for e in v.field("entries")?.as_array()? {
            let key = Key {
                sig: e.field("sig")?.as_u64()?,
                tp: e.field("tp")?.as_u32()?,
                dim: e.field("dim")?.as_u8()?,
                batch: e.field("batch")?.as_u64()?,
            };
            entries.push((key, e.field("time")?.as_f64()?));
        }
        Ok(Self {
            cluster: ClusterSpec::from_json_value(v.field("cluster")?)?,
            precision: Precision::from_json_value(v.field("precision")?)?,
            profiling_seconds: v.field("profiling_seconds")?.as_f64()?,
            entries,
        })
    }
}

/// Error returned by [`ProfileDb::merge`] when the databases were
/// profiled at different numeric precisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecisionMismatch {
    /// Precision of the receiving database.
    pub ours: Precision,
    /// Precision of the database being merged in.
    pub theirs: Precision,
}

impl std::fmt::Display for PrecisionMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot merge a {:?} profile database into a {:?} one",
            self.theirs, self.ours
        )
    }
}

impl std::error::Error for PrecisionMismatch {}

/// Profiled per-operator latencies plus collective-time queries for one
/// cluster, reusable across searches.
#[derive(Debug)]
pub struct ProfileDb {
    cluster: ClusterSpec,
    precision: Precision,
    /// Simulated wall-clock cost of the profiling run, seconds.
    profiling_seconds: f64,
    entries: RwLock<HashMap<Key, f64>>,
}

impl ProfileDb {
    /// Profiles `model`'s operators on `cluster` and returns the database.
    pub fn build(model: &ModelGraph, cluster: &ClusterSpec) -> Self {
        let db = Self {
            cluster: cluster.clone(),
            precision: model.precision,
            profiling_seconds: 0.0,
            entries: RwLock::new(HashMap::new()),
        };
        let mut profiling = 0.0;
        let max_tp = cluster
            .total_gpus()
            .min(cluster.gpus_per_node * cluster.nodes) as u32;
        let max_batch = model.global_batch as u64;
        let mut seen = std::collections::HashSet::new();
        {
            let mut entries = db.entries.write().expect("profile lock");
            for op in &model.ops {
                let sig = Self::op_signature(op);
                if !seen.insert(sig) {
                    continue;
                }
                for dim in 0..op.partitions.len() {
                    let mut tp = 1u32;
                    while tp <= max_tp.min(op.tp_limit) {
                        let mut batch = 1u64;
                        while batch <= max_batch {
                            let key = Key {
                                sig,
                                tp,
                                dim: dim as u8,
                                batch,
                            };
                            let t = Self::measure(&db.cluster, db.precision, op, key);
                            profiling += t * f64::from(PROFILE_REPS);
                            entries.insert(key, t);
                            batch *= 2;
                        }
                        tp *= 2;
                    }
                }
            }
        }
        Self {
            profiling_seconds: profiling,
            ..db
        }
    }

    /// Parallelised profiling run (the paper's §5.3 future-work item:
    /// "the profiling overhead can be highly improved with good
    /// parallelization"). Distinct operators are profiled on worker
    /// threads; results are bit-identical to [`Self::build`] because each
    /// measurement is a pure function of its key.
    pub fn build_parallel(model: &ModelGraph, cluster: &ClusterSpec, threads: usize) -> Self {
        let threads = threads.max(1);
        let max_tp = cluster.total_gpus() as u32;
        let max_batch = model.global_batch as u64;
        // Unique operators in first-seen order (determinism of the
        // profiling-cost sum does not depend on order: it's a sum).
        let mut seen = std::collections::HashSet::new();
        let unique: Vec<&Operator> = model
            .ops
            .iter()
            .filter(|op| seen.insert(Self::op_signature(op)))
            .collect();

        let chunks: Vec<&[&Operator]> = unique.chunks(unique.len().div_ceil(threads)).collect();
        let mut entries: HashMap<Key, f64> = HashMap::new();
        let mut profiling = 0.0f64;
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    let cluster = &cluster;
                    scope.spawn(move || {
                        let mut local: Vec<(Key, f64)> = Vec::new();
                        let mut cost = 0.0f64;
                        for op in chunk {
                            let sig = Self::op_signature(op);
                            for dim in 0..op.partitions.len() {
                                let mut tp = 1u32;
                                while tp <= max_tp.min(op.tp_limit) {
                                    let mut batch = 1u64;
                                    while batch <= max_batch {
                                        let key = Key {
                                            sig,
                                            tp,
                                            dim: dim as u8,
                                            batch,
                                        };
                                        let t = Self::measure(cluster, model.precision, op, key);
                                        cost += t * f64::from(PROFILE_REPS);
                                        local.push((key, t));
                                        batch *= 2;
                                    }
                                    tp *= 2;
                                }
                            }
                        }
                        (local, cost)
                    })
                })
                .collect();
            for h in handles {
                let (local, cost) = h.join().expect("profiling workers do not panic");
                entries.extend(local);
                profiling += cost;
            }
        });
        Self {
            cluster: cluster.clone(),
            precision: model.precision,
            profiling_seconds: profiling,
            entries: RwLock::new(entries),
        }
    }

    /// Stable signature of an operator's cost-relevant fields.
    ///
    /// Two operators with equal signatures profile identically, so a
    /// 40-layer GPT contributes only a handful of distinct entries — the
    /// reuse property the paper relies on.
    pub fn op_signature(op: &Operator) -> u64 {
        let mut h = FnvHasher::new();
        h.write_u64(op.kind as u64);
        h.write_u64(op.flops.to_bits());
        h.write_u64(op.params);
        h.write_u64(op.input_elems);
        h.write_u64(op.output_elems);
        h.write_u64(op.stash_elems);
        h.write_u64(u64::from(op.tp_limit));
        h.write_usize(op.partitions.len());
        h.finish()
    }

    /// One simulated measurement (analytic model × stable perturbation).
    fn measure(cluster: &ClusterSpec, precision: Precision, op: &Operator, key: Key) -> f64 {
        let base = device_model::op_fwd_time(
            &cluster.device,
            precision,
            op,
            key.tp,
            key.dim as usize,
            key.batch,
        );
        let mut h = FnvHasher::new();
        h.write_u64(key.sig);
        h.write_u64(u64::from(key.tp));
        h.write_u64(u64::from(key.dim));
        h.write_u64(key.batch);
        base * keyed_jitter(h.finish(), KERNEL_JITTER)
    }

    /// Profiled forward time of `op` at (`tp`, `dim_index`) for
    /// `per_dev_batch` samples. Caches on miss.
    pub fn op_fwd_time(&self, op: &Operator, tp: u32, dim_index: usize, per_dev_batch: u64) -> f64 {
        self.op_fwd_time_sig(Self::op_signature(op), op, tp, dim_index, per_dev_batch)
    }

    /// Same as [`Self::op_fwd_time`] with a precomputed signature (hot path
    /// for the performance model).
    pub fn op_fwd_time_sig(
        &self,
        sig: u64,
        op: &Operator,
        tp: u32,
        dim_index: usize,
        per_dev_batch: u64,
    ) -> f64 {
        let key = Key {
            sig,
            tp,
            dim: dim_index as u8,
            batch: per_dev_batch.max(1),
        };
        if let Some(&t) = self.entries.read().expect("profile lock").get(&key) {
            return t;
        }
        let t = Self::measure(&self.cluster, self.precision, op, key);
        self.entries.write().expect("profile lock").insert(key, t);
        t
    }

    /// Working-set bytes of one execution (no jitter; memory is exact).
    pub fn op_working_set(
        &self,
        op: &Operator,
        tp: u32,
        dim_index: usize,
        per_dev_batch: u64,
    ) -> u64 {
        device_model::op_working_set(self.precision, op, tp, dim_index, per_dev_batch)
    }

    /// Profiled collective time over `group` for `bytes` payload.
    pub fn collective_time(&self, kind: Collective, bytes: u64, group: &CommGroup) -> f64 {
        let base = collective::collective_time(&self.cluster, kind, bytes, group);
        if base == 0.0 {
            return 0.0;
        }
        let mut h = FnvHasher::new();
        h.write_u64(kind as u64);
        h.write_u64(bytes.next_power_of_two());
        h.write_usize(group.size);
        h.write_bool(group.crosses_nodes(&self.cluster));
        base * keyed_jitter(h.finish(), COMM_JITTER)
    }

    /// Profiled point-to-point time between two global GPU ids.
    pub fn p2p_time(&self, bytes: u64, from: usize, to: usize) -> f64 {
        let base = collective::p2p_time(&self.cluster, bytes, from, to);
        if base == 0.0 {
            return 0.0;
        }
        let mut h = FnvHasher::new();
        h.write_u64(bytes.next_power_of_two());
        h.write_bool(self.cluster.node_of(from) == self.cluster.node_of(to));
        base * keyed_jitter(h.finish(), COMM_JITTER)
    }

    /// The cluster this database was profiled on.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Precision the profile was taken at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Simulated wall-clock time the profiling run would have taken
    /// (`PROFILE_REPS` repetitions of every grid point), in seconds.
    pub fn simulated_profiling_seconds(&self) -> f64 {
        self.profiling_seconds
    }

    /// Number of profiled grid entries.
    pub fn len(&self) -> usize {
        self.entries.read().expect("profile lock").len()
    }

    /// Approximate resident size of the database in bytes, used by the
    /// serve-mode `ProfileCache` for its LRU byte budget. Counts each
    /// entry at key + value + hash-table overhead; the constant only has
    /// to be stable and monotone in entry count, not exact.
    pub fn approx_bytes(&self) -> u64 {
        const BYTES_PER_ENTRY: u64 = 48;
        self.len() as u64 * BYTES_PER_ENTRY
    }

    /// Whether the database holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.read().expect("profile lock").is_empty()
    }

    /// Merges another database profiled on the same cluster/precision into
    /// this one (the §3.3 reuse property: "the profiled database can be
    /// reused by the search for models that contain the same operators").
    ///
    /// Entries for identical keys are identical by construction (pure
    /// function of the key), so the merge is conflict-free. Returns the
    /// number of entries added, or [`PrecisionMismatch`] when the two
    /// databases were profiled at different precisions — timings depend
    /// on the precision but entry keys do not encode it, so such a merge
    /// would silently mix incompatible measurements.
    pub fn merge(&mut self, other: &ProfileDb) -> Result<usize, PrecisionMismatch> {
        if self.precision != other.precision {
            return Err(PrecisionMismatch {
                ours: self.precision,
                theirs: other.precision,
            });
        }
        let mut added = 0usize;
        let mut mine = self.entries.write().expect("profile lock");
        let theirs = other.entries.read().expect("profile lock");
        for (k, v) in theirs.iter() {
            if mine.insert(*k, *v).is_none() {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Serialises the database to JSON.
    pub fn to_json(&self) -> String {
        let snap = Snapshot {
            cluster: self.cluster.clone(),
            precision: self.precision,
            profiling_seconds: self.profiling_seconds,
            entries: self
                .entries
                .read()
                .expect("profile lock")
                .iter()
                .map(|(k, v)| (*k, *v))
                .collect(),
        };
        snap.to_json_value().to_string_compact()
    }

    /// Restores a database from [`Self::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        let snap = Snapshot::from_json_value(&Value::parse(json)?)?;
        Ok(Self {
            cluster: snap.cluster,
            precision: snap.precision,
            profiling_seconds: snap.profiling_seconds,
            entries: RwLock::new(snap.entries.into_iter().collect()),
        })
    }

    /// Canonical dump of every profiled entry as
    /// `(sig, tp, dim, batch, time_bits)` tuples, sorted by key.
    ///
    /// Times are exported as raw [`f64::to_bits`] patterns so external
    /// encoders (the on-disk profile store) can round-trip them
    /// bit-exactly; the sort makes the dump deterministic regardless of
    /// hash-map iteration order.
    pub fn canonical_entries(&self) -> Vec<(u64, u32, u8, u64, u64)> {
        let mut out: Vec<(u64, u32, u8, u64, u64)> = self
            .entries
            .read()
            .expect("profile lock")
            .iter()
            .map(|(k, t)| (k.sig, k.tp, k.dim, k.batch, t.to_bits()))
            .collect();
        out.sort_unstable();
        out
    }

    /// Reassembles a database from [`Self::canonical_entries`] output plus
    /// the metadata the tuples do not carry.
    ///
    /// Times arrive as raw bit patterns ([`f64::from_bits`]), so a decode
    /// through this constructor returns *exactly* the values the source
    /// database held — the bit-identity contract the disk store's
    /// differential suite enforces.
    pub fn from_raw_parts(
        cluster: ClusterSpec,
        precision: Precision,
        profiling_seconds: f64,
        entries: impl IntoIterator<Item = (u64, u32, u8, u64, u64)>,
    ) -> Self {
        Self {
            cluster,
            precision,
            profiling_seconds,
            entries: RwLock::new(
                entries
                    .into_iter()
                    .map(|(sig, tp, dim, batch, bits)| {
                        (
                            Key {
                                sig,
                                tp,
                                dim,
                                batch,
                            },
                            f64::from_bits(bits),
                        )
                    })
                    .collect(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_model::zoo::gpt3_custom;

    fn setup() -> (ModelGraph, ClusterSpec) {
        (
            gpt3_custom("t", 2, 256, 4, 128, 1000, 64),
            ClusterSpec::v100(1, 4),
        )
    }

    #[test]
    fn build_dedups_identical_ops() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        // 2 identical layers → far fewer entries than ops × grid.
        assert!(!db.is_empty());
        let unique_sigs: std::collections::HashSet<u64> =
            m.ops.iter().map(ProfileDb::op_signature).collect();
        assert!(unique_sigs.len() < m.len());
        assert!(db.simulated_profiling_seconds() > 0.0);
    }

    #[test]
    fn lookup_matches_on_demand_measurement() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let op = &m.ops[1];
        let hit = db.op_fwd_time(op, 2, 0, 4);
        // A fresh db without prefill must return the same value.
        let db2 = ProfileDb {
            cluster: c.clone(),
            precision: m.precision,
            profiling_seconds: 0.0,
            entries: RwLock::new(HashMap::new()),
        };
        let miss = db2.op_fwd_time(op, 2, 0, 4);
        assert_eq!(hit, miss);
    }

    #[test]
    fn deterministic_across_builds() {
        let (m, c) = setup();
        let a = ProfileDb::build(&m, &c);
        let b = ProfileDb::build(&m, &c);
        let op = &m.ops[3];
        assert_eq!(a.op_fwd_time(op, 1, 0, 8), b.op_fwd_time(op, 1, 0, 8));
        assert_eq!(
            a.simulated_profiling_seconds(),
            b.simulated_profiling_seconds()
        );
    }

    #[test]
    fn jitter_stays_small() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let op = &m.ops[1];
        let measured = db.op_fwd_time(op, 1, 0, 4);
        let analytic = device_model::op_fwd_time(&c.device, m.precision, op, 1, 0, 4);
        assert!((measured / analytic - 1.0).abs() <= KERNEL_JITTER + 1e-12);
    }

    #[test]
    fn collective_and_p2p_positive() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let g = CommGroup::contiguous(0, 4);
        assert!(db.collective_time(Collective::AllReduce, 1 << 20, &g) > 0.0);
        assert_eq!(db.collective_time(Collective::AllReduce, 0, &g), 0.0);
        assert!(db.p2p_time(1 << 20, 0, 1) > 0.0);
        assert_eq!(db.p2p_time(1 << 20, 2, 2), 0.0);
    }

    #[test]
    fn parallel_build_matches_serial() {
        let (m, c) = setup();
        let serial = ProfileDb::build(&m, &c);
        for threads in [1usize, 2, 4] {
            let par = ProfileDb::build_parallel(&m, &c, threads);
            assert_eq!(par.len(), serial.len(), "threads={threads}");
            for op in &m.ops {
                for tp in [1u32, 2] {
                    assert_eq!(
                        par.op_fwd_time(op, tp, 0, 4),
                        serial.op_fwd_time(op, tp, 0, 4),
                        "threads={threads}"
                    );
                }
            }
            // Cost sums are order-sensitive floating point; require only
            // near-equality.
            let rel = (par.simulated_profiling_seconds() - serial.simulated_profiling_seconds())
                .abs()
                / serial.simulated_profiling_seconds();
            assert!(rel < 1e-9, "threads={threads} rel={rel}");
        }
    }

    #[test]
    fn merge_reuses_shared_operators() {
        let c = ClusterSpec::v100(1, 4);
        // Two GPT variants sharing layer shapes (same hidden) but with
        // different depths: their unique-op sets overlap heavily.
        let a = gpt3_custom("a", 2, 256, 4, 128, 1000, 64);
        let b = gpt3_custom("b", 4, 256, 4, 128, 1000, 64);
        let mut db_a = ProfileDb::build(&a, &c);
        let db_b = ProfileDb::build(&b, &c);
        let before = db_a.len();
        let added = db_a.merge(&db_b).expect("same precision");
        // Identical layer shapes → nothing new to add.
        assert_eq!(added, 0);
        assert_eq!(db_a.len(), before);
        // A different hidden size brings genuinely new entries.
        let d = gpt3_custom("d", 2, 512, 8, 128, 1000, 64);
        let db_d = ProfileDb::build(&d, &c);
        let added = db_a.merge(&db_d).expect("same precision");
        assert!(added > 0);
        // Merged lookups match the source database exactly.
        let op = &d.ops[1];
        assert_eq!(db_a.op_fwd_time(op, 2, 0, 4), db_d.op_fwd_time(op, 2, 0, 4));
    }

    #[test]
    fn merge_rejects_precision_mismatch() {
        let c = ClusterSpec::v100(1, 4);
        let fp16 = gpt3_custom("a", 2, 256, 4, 128, 1000, 64);
        let mut fp32 = gpt3_custom("b", 2, 256, 4, 128, 1000, 64);
        fp32.precision = Precision::Fp32;
        let mut db_fp16 = ProfileDb::build(&fp16, &c);
        let db_fp32 = ProfileDb::build(&fp32, &c);
        let before = db_fp16.len();
        let err = db_fp16.merge(&db_fp32).expect_err("precisions differ");
        assert_eq!(err.ours, Precision::Fp16);
        assert_eq!(err.theirs, Precision::Fp32);
        // The failed merge must leave the receiver untouched.
        assert_eq!(db_fp16.len(), before);
    }

    #[test]
    fn canonical_entries_roundtrip_is_bit_exact() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let dump = db.canonical_entries();
        assert_eq!(dump.len(), db.len());
        // Sorted and duplicate-free.
        assert!(dump.windows(2).all(|w| w[0] < w[1]));
        let back = ProfileDb::from_raw_parts(
            c.clone(),
            db.precision(),
            db.simulated_profiling_seconds(),
            dump.iter().copied(),
        );
        assert_eq!(back.canonical_entries(), dump);
        for op in &m.ops {
            for tp in [1u32, 2, 4] {
                assert_eq!(
                    back.op_fwd_time(op, tp, 0, 4).to_bits(),
                    db.op_fwd_time(op, tp, 0, 4).to_bits()
                );
            }
        }
    }

    #[test]
    fn json_roundtrip_preserves_lookups() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let json = db.to_json();
        let back = ProfileDb::from_json(&json).expect("parses");
        assert_eq!(back.len(), db.len());
        let op = &m.ops[2];
        assert_eq!(back.op_fwd_time(op, 1, 0, 2), db.op_fwd_time(op, 1, 0, 2));
        assert_eq!(back.precision(), db.precision());
    }
}
