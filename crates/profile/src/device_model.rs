//! Analytic device model: the "hardware" the simulated profiler measures.
//!
//! Per-kernel forward time is a roofline with a saturation knee:
//!
//! * compute term — `flops / (peak · eff · sat)` where `eff` combines the
//!   operator kind's achievable fraction of peak with the partition
//!   layout's relative efficiency, and `sat = w / (w + w_half)` models the
//!   poor utilisation of small per-device workloads (this is what gives
//!   tensor parallelism genuine diminishing returns);
//! * bandwidth term — bytes moved over effective HBM bandwidth (elementwise
//!   and normalisation kernels live here);
//! * plus a fixed kernel-launch overhead.

use aceso_cluster::DeviceSpec;
use aceso_model::{Layout, OpKind, Operator, Precision, Scaling};

/// Fraction of peak FLOPs a well-tuned kernel of each kind achieves on
/// large inputs.
fn kind_efficiency(kind: OpKind) -> f64 {
    match kind {
        OpKind::MatMul => 0.62,
        OpKind::Conv2d => 0.72,
        OpKind::Attention => 1.0, // layout efficiency already carries it
        // Bandwidth-bound kinds rarely hit the compute roof at all.
        _ => 0.30,
    }
}

/// Fraction of peak HBM bandwidth streaming kernels achieve.
const BW_EFFICIENCY: f64 = 0.78;

/// Work (FLOPs) at which a kernel reaches half its asymptotic efficiency.
///
/// Expressed as FLOPs equal to ~10 µs of peak compute. Note the algebra:
/// `flops / (peak · eff · sat)` with `sat = w/(w + w_half)` equals
/// `(flops + w_half) / (peak · eff)` — a per-kernel latency tax that makes
/// very small per-device work (deep tensor-parallel splits) pay a fixed
/// cost, which is exactly the diminishing-returns behaviour real kernels
/// show.
fn half_saturation_flops(peak: f64) -> f64 {
    peak * 10e-6
}

/// Kernel-efficiency falloff under tensor parallelism.
///
/// Splitting an operator across ranks fragments its tiling: convolutions
/// suffer badly (channel slices stop matching tensor-core/implicit-GEMM
/// tile shapes), matmuls and head-sharded attention mildly. This is what
/// makes "8-way tp on every op" a genuinely bad plan for Wide-ResNet — the
/// effect behind the paper's §5.4 case study where Aceso mixes 2-way dp
/// with 4-way tp instead of Alpa's uniform 8-way tp.
fn tp_fragmentation(kind: OpKind, tp: u32) -> f64 {
    let t = f64::from(tp.max(1)) - 1.0;
    match kind {
        OpKind::Conv2d => 1.0 + 0.10 * t,
        OpKind::MatMul => 1.0 + 0.02 * t,
        OpKind::Attention => 1.0 + 0.015 * t,
        _ => 1.0,
    }
}

/// Elements of an activation tensor seen by one tp rank.
fn per_rank(elems: u64, layout: Layout, scaling: Scaling, tp: u32) -> u64 {
    match (scaling, layout) {
        (Scaling::Divided, Layout::Sharded) => elems / u64::from(tp.max(1)),
        _ => elems,
    }
}

/// Forward execution time of one operator on one device, in seconds.
///
/// `per_dev_batch` is the number of samples this device processes per
/// microbatch (global microbatch / dp).
pub fn op_fwd_time(
    device: &DeviceSpec,
    precision: Precision,
    op: &Operator,
    tp: u32,
    dim_index: usize,
    per_dev_batch: u64,
) -> f64 {
    let spec = op.partition(dim_index);
    let b = per_dev_batch.max(1) as f64;
    let flops = op.flops_per_rank(dim_index, tp) * b;

    let peak = match precision {
        Precision::Fp16 => device.peak_fp16_flops,
        Precision::Fp32 => device.peak_fp32_flops,
    };
    let sat = flops / (flops + half_saturation_flops(peak));
    let eff = kind_efficiency(op.kind) * spec.efficiency * sat / tp_fragmentation(op.kind, tp);
    let t_compute = if flops > 0.0 {
        flops / (peak * eff.max(1e-6))
    } else {
        0.0
    };

    // Bytes streamed: input + output activations (sharded view) + weights.
    let in_elems = per_rank(op.input_elems, spec.input_layout, spec.scaling, tp) as f64 * b;
    let out_elems = per_rank(op.output_elems, spec.output_layout, spec.scaling, tp) as f64 * b;
    let w_elems = op.params_per_rank(dim_index, tp) as f64;
    let bytes = (in_elems + out_elems + w_elems) * precision.bytes() as f64;
    let t_bandwidth = bytes / (device.mem_bandwidth * BW_EFFICIENCY);

    t_compute.max(t_bandwidth) + device.kernel_overhead
}

/// Transient working-set bytes of one operator execution on one device
/// (inputs, outputs and backward stash for one microbatch).
///
/// The perf model's reserved-memory overestimate (§3.3) takes the max of
/// this across a stage's operators.
pub fn op_working_set(
    precision: Precision,
    op: &Operator,
    tp: u32,
    dim_index: usize,
    per_dev_batch: u64,
) -> u64 {
    let spec = op.partition(dim_index);
    let b = per_dev_batch.max(1);
    let in_elems = per_rank(op.input_elems, spec.input_layout, spec.scaling, tp) * b;
    let out_elems = per_rank(op.output_elems, spec.output_layout, spec.scaling, tp) * b;
    let stash = op.stash_per_rank(dim_index, tp) * b;
    (in_elems + out_elems + stash) * precision.bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_model::{PartitionDim, PartitionSpec};

    fn matmul(flops: f64, params: u64, elems: u64) -> Operator {
        Operator {
            name: "mm".into(),
            kind: OpKind::MatMul,
            flops,
            params,
            input_elems: elems,
            output_elems: elems,
            stash_elems: elems,
            tp_limit: 64,
            partitions: vec![PartitionSpec {
                dim: PartitionDim::Column,
                scaling: Scaling::Divided,
                input_layout: Layout::Full,
                output_layout: Layout::Sharded,
                fwd_comm_elems: 0,
                bwd_comm_elems: elems,
                efficiency: 1.0,
            }],
        }
    }

    fn dev() -> DeviceSpec {
        DeviceSpec::v100()
    }

    #[test]
    fn large_matmul_near_roofline() {
        // A very large matmul should run at ~kind_efficiency of peak.
        let op = matmul(1e13, 1 << 20, 1 << 20);
        let t = op_fwd_time(&dev(), Precision::Fp16, &op, 1, 0, 1);
        let achieved = 1e13 / t;
        let frac = achieved / dev().peak_fp16_flops;
        assert!(frac > 0.55 && frac < 0.65, "achieved fraction {frac}");
    }

    #[test]
    fn tensor_parallel_sublinear_speedup() {
        // 8-way tp on a moderate matmul must give < 8× speedup.
        let op = matmul(5e10, 1 << 24, 1 << 22);
        let t1 = op_fwd_time(&dev(), Precision::Fp16, &op, 1, 0, 1);
        let t8 = op_fwd_time(&dev(), Precision::Fp16, &op, 8, 0, 1);
        let speedup = t1 / t8;
        assert!(speedup > 2.0 && speedup < 7.9, "speedup {speedup}");
    }

    #[test]
    fn tiny_kernel_pays_fixed_costs() {
        let op = matmul(1e6, 128, 128);
        let t = op_fwd_time(&dev(), Precision::Fp16, &op, 1, 0, 1);
        // Dominated by launch overhead + the saturation latency tax, not by
        // its (negligible) arithmetic.
        let pure_compute = 1e6 / (dev().peak_fp16_flops * 0.62);
        assert!(t > 10.0 * pure_compute);
        assert!(t < 6.0 * dev().kernel_overhead);
        assert!(t >= dev().kernel_overhead);
    }

    #[test]
    fn bandwidth_bound_op_ignores_compute_peak() {
        let mut op = matmul(1e7, 0, 1 << 26);
        op.kind = OpKind::LayerNorm;
        let t = op_fwd_time(&dev(), Precision::Fp16, &op, 1, 0, 1);
        let bytes = 2.0 * 2.0 * (1u64 << 26) as f64; // in+out, fp16
        let expect = bytes / (dev().mem_bandwidth * BW_EFFICIENCY);
        assert!((t - expect).abs() / expect < 0.2, "t={t} expect={expect}");
    }

    #[test]
    fn fp32_slower_than_fp16() {
        let op = matmul(1e12, 1 << 20, 1 << 20);
        let t16 = op_fwd_time(&dev(), Precision::Fp16, &op, 1, 0, 1);
        let t32 = op_fwd_time(&dev(), Precision::Fp32, &op, 1, 0, 1);
        assert!(t32 > 3.0 * t16);
    }

    #[test]
    fn batch_scales_time() {
        let op = matmul(1e10, 1 << 20, 1 << 20);
        let t1 = op_fwd_time(&dev(), Precision::Fp16, &op, 1, 0, 1);
        let t4 = op_fwd_time(&dev(), Precision::Fp16, &op, 1, 0, 4);
        assert!(t4 > 2.0 * t1 && t4 < 4.5 * t1);
    }

    #[test]
    fn working_set_scales_with_batch_and_tp() {
        let op = matmul(1e10, 1 << 20, 1 << 22);
        let w1 = op_working_set(Precision::Fp16, &op, 1, 0, 2);
        let w2 = op_working_set(Precision::Fp16, &op, 4, 0, 2);
        assert!(w1 > w2, "sharding reduces working set");
        let w4 = op_working_set(Precision::Fp16, &op, 1, 0, 8);
        assert_eq!(w4, 4 * w1);
    }
}
