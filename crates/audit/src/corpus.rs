//! The audit corpus: model-zoo × cluster-preset × configuration samples.
//!
//! Every analyzer sweeps the same corpus, so one invocation proves the
//! invariants over a representative slice of the search space rather than
//! a single hand-picked configuration. The corpus is fully deterministic.

use aceso_cluster::ClusterSpec;
use aceso_config::{balanced_init, ParallelConfig};
use aceso_model::{zoo, ModelGraph};
use aceso_profile::ProfileDb;

/// One (model, cluster) pair plus the starting configurations to audit.
pub struct CorpusSample {
    /// The model.
    pub model: ModelGraph,
    /// The cluster preset.
    pub cluster: ClusterSpec,
    /// Profile database for the pair (built once, shared by analyzers).
    pub db: ProfileDb,
    /// Stable sample label, e.g. `gpt3-0.35b/v100-1x8`.
    pub label: String,
    /// Valid starting configurations (balanced inits plus variants).
    pub configs: Vec<ParallelConfig>,
}

/// Cluster presets swept by the audit.
fn cluster_presets() -> Vec<(ClusterSpec, &'static str)> {
    vec![
        (ClusterSpec::v100(1, 4), "v100-1x4"),
        (ClusterSpec::v100(1, 8), "v100-1x8"),
    ]
}

/// Model-zoo entries swept by the audit. `smoke` keeps only a small custom
/// model so the CI smoke run finishes in seconds.
fn zoo_models(smoke: bool) -> Vec<ModelGraph> {
    if smoke {
        return vec![zoo::gpt3_custom("audit-gpt", 4, 512, 8, 256, 8192, 64)];
    }
    vec![
        zoo::gpt3(zoo::Gpt3Size::S0_35b),
        zoo::t5(zoo::T5Size::S0_77b),
        zoo::wide_resnet(zoo::WideResnetSize::S0_5b),
        zoo::deepnet(12),
    ]
}

/// Deterministic configuration variants of one balanced init: microbatch
/// scaled up, everything recomputed, and ZeRO on every shardable op. Only
/// variants that validate are kept.
fn variants(
    model: &ModelGraph,
    cluster: &ClusterSpec,
    base: &ParallelConfig,
) -> Vec<ParallelConfig> {
    let mut out = vec![base.clone()];

    let mut bigger_mb = base.clone();
    bigger_mb.microbatch *= 2;
    out.push(bigger_mb);

    let mut recomputed = base.clone();
    for s in &mut recomputed.stages {
        for o in &mut s.ops {
            o.recompute = true;
        }
    }
    out.push(recomputed);

    let mut zeroed = base.clone();
    let mut any = false;
    for s in &mut zeroed.stages {
        for o in &mut s.ops {
            if o.dp > 1 {
                o.zero = true;
                any = true;
            }
        }
    }
    if any {
        out.push(zeroed);
    }

    out.retain(|c| aceso_config::validate::validate(c, model, cluster).is_ok());
    out
}

/// Builds the audit corpus. Full mode sweeps 4 zoo models × 2 cluster
/// presets; smoke mode keeps one small model for fast CI checks.
pub fn corpus(smoke: bool) -> Vec<CorpusSample> {
    let mut samples = Vec::new();
    for model in zoo_models(smoke) {
        for (cluster, cname) in cluster_presets() {
            let stage_counts: &[usize] = if smoke { &[2] } else { &[1, 2, 4] };
            let mut configs = Vec::new();
            for &p in stage_counts {
                if p > cluster.total_gpus() || p > model.len() / 2 {
                    continue;
                }
                if let Ok(base) = balanced_init(&model, &cluster, p) {
                    configs.extend(variants(&model, &cluster, &base));
                }
            }
            if configs.is_empty() {
                continue;
            }
            let db = ProfileDb::build(&model, &cluster);
            samples.push(CorpusSample {
                label: format!("{}/{}", model.name, cname),
                model: model.clone(),
                cluster,
                db,
                configs,
            });
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_corpus_is_small_and_valid() {
        let samples = corpus(true);
        assert_eq!(samples.len(), 2); // 1 model × 2 cluster presets
        for s in &samples {
            assert!(!s.configs.is_empty());
            for c in &s.configs {
                assert!(aceso_config::validate::validate(c, &s.model, &s.cluster).is_ok());
            }
        }
    }

    #[test]
    fn full_corpus_covers_zoo_and_presets() {
        // 4 zoo models × 2 presets (model construction only — no profile
        // builds beyond what the samples need).
        let samples = corpus(false);
        assert!(samples.len() >= 6, "got {} samples", samples.len());
        let labels: Vec<&str> = samples.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.iter().any(|l| l.contains("v100-1x4")));
        assert!(labels.iter().any(|l| l.contains("v100-1x8")));
    }
}
