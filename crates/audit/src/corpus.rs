//! The audit corpus: model-zoo × cluster-preset × configuration samples.
//!
//! Every analyzer sweeps the same corpus, so one invocation proves the
//! invariants over a representative slice of the search space rather than
//! a single hand-picked configuration. The corpus is fully deterministic.

use aceso_cluster::ClusterSpec;
use aceso_config::{balanced_init, ParallelConfig};
use aceso_core::primitives::{generate_with, GenOptions};
use aceso_core::{Primitive, Resource};
use aceso_model::{zoo, ModelGraph};
use aceso_perf::PerfModel;
use aceso_profile::ProfileDb;
use aceso_util::SplitMix64;

/// One (model, cluster) pair plus the starting configurations to audit.
pub struct CorpusSample {
    /// The model.
    pub model: ModelGraph,
    /// The cluster preset.
    pub cluster: ClusterSpec,
    /// Profile database for the pair (built once, shared by analyzers).
    pub db: ProfileDb,
    /// Stable sample label, e.g. `gpt3-0.35b/v100-1x8`.
    pub label: String,
    /// Valid starting configurations (balanced inits plus variants).
    pub configs: Vec<ParallelConfig>,
}

/// Cluster presets swept by the audit.
fn cluster_presets() -> Vec<(ClusterSpec, &'static str)> {
    vec![
        (ClusterSpec::v100(1, 4), "v100-1x4"),
        (ClusterSpec::v100(1, 8), "v100-1x8"),
    ]
}

/// Model-zoo entries swept by the audit. `smoke` keeps only a small custom
/// model so the CI smoke run finishes in seconds.
fn zoo_models(smoke: bool) -> Vec<ModelGraph> {
    if smoke {
        return vec![zoo::gpt3_custom("audit-gpt", 4, 512, 8, 256, 8192, 64)];
    }
    vec![
        zoo::gpt3(zoo::Gpt3Size::S0_35b),
        zoo::t5(zoo::T5Size::S0_77b),
        zoo::wide_resnet(zoo::WideResnetSize::S0_5b),
        zoo::deepnet(12),
    ]
}

/// Deterministic configuration variants of one balanced init: microbatch
/// scaled up, everything recomputed, and ZeRO on every shardable op. Only
/// variants that validate are kept.
fn variants(
    model: &ModelGraph,
    cluster: &ClusterSpec,
    base: &ParallelConfig,
) -> Vec<ParallelConfig> {
    let mut out = vec![base.clone()];

    let mut bigger_mb = base.clone();
    bigger_mb.microbatch *= 2;
    out.push(bigger_mb);

    let mut recomputed = base.clone();
    for s in &mut recomputed.stages {
        for o in &mut s.ops {
            o.recompute = true;
        }
    }
    out.push(recomputed);

    let mut zeroed = base.clone();
    let mut any = false;
    for s in &mut zeroed.stages {
        for o in &mut s.ops {
            if o.dp > 1 {
                o.zero = true;
                any = true;
            }
        }
    }
    if any {
        out.push(zeroed);
    }

    out.retain(|c| aceso_config::validate::validate(c, model, cluster).is_ok());
    out
}

/// Builds the audit corpus. Full mode sweeps 4 zoo models × 2 cluster
/// presets; smoke mode keeps one small model for fast CI checks.
pub fn corpus(smoke: bool) -> Vec<CorpusSample> {
    let mut samples = Vec::new();
    for model in zoo_models(smoke) {
        for (cluster, cname) in cluster_presets() {
            let stage_counts: &[usize] = if smoke { &[2] } else { &[1, 2, 4] };
            let mut configs = Vec::new();
            for &p in stage_counts {
                if p > cluster.total_gpus() || p > model.len() / 2 {
                    continue;
                }
                if let Ok(base) = balanced_init(&model, &cluster, p) {
                    configs.extend(variants(&model, &cluster, &base));
                }
            }
            if configs.is_empty() {
                continue;
            }
            let db = ProfileDb::build(&model, &cluster);
            samples.push(CorpusSample {
                label: format!("{}/{}", model.name, cname),
                model: model.clone(),
                cluster,
                db,
                configs,
            });
        }
    }
    samples
}

/// A seeded random primitive walk from `start`: at each step, candidates
/// are generated for a random (primitive, stage, resource) triple and a
/// random candidate becomes the next configuration. Returns every
/// configuration visited, `start` first — all structurally valid by the
/// generator's invariants.
///
/// This is the walk the differential perf-equivalence suite replays: the
/// same sampler the transform analyzer audits, reused as a source of
/// realistic search-shaped configuration sequences.
pub fn primitive_walk(
    sample: &CorpusSample,
    start: &ParallelConfig,
    seed: u64,
    steps: usize,
) -> Vec<ParallelConfig> {
    let pm = PerfModel::new(&sample.model, &sample.cluster, &sample.db);
    let mut rng = SplitMix64::new(seed);
    let mut config = start.clone();
    let mut visited = vec![config.clone()];
    for _ in 0..steps {
        let est = pm.evaluate_unchecked(&config);
        let stage = rng.next_below(config.num_stages());
        let prim = *rng.choose(&Primitive::EXTENDED).expect("nonempty");
        let resource = *rng.choose(&Resource::ALL).expect("nonempty");
        let candidates = generate_with(
            &pm,
            &config,
            &est,
            prim,
            stage,
            resource,
            GenOptions::default(),
        );
        if let Some(next) = rng.choose(&candidates) {
            config = next.config.clone();
            visited.push(config.clone());
        }
    }
    visited
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_corpus_is_small_and_valid() {
        let samples = corpus(true);
        assert_eq!(samples.len(), 2); // 1 model × 2 cluster presets
        for s in &samples {
            assert!(!s.configs.is_empty());
            for c in &s.configs {
                assert!(aceso_config::validate::validate(c, &s.model, &s.cluster).is_ok());
            }
        }
    }

    #[test]
    fn full_corpus_covers_zoo_and_presets() {
        // 4 zoo models × 2 presets (model construction only — no profile
        // builds beyond what the samples need).
        let samples = corpus(false);
        assert!(samples.len() >= 6, "got {} samples", samples.len());
        let labels: Vec<&str> = samples.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.iter().any(|l| l.contains("v100-1x4")));
        assert!(labels.iter().any(|l| l.contains("v100-1x8")));
    }

    #[test]
    fn primitive_walk_is_deterministic_and_valid() {
        let samples = corpus(true);
        let s = &samples[0];
        let a = primitive_walk(s, &s.configs[0], 7, 6);
        let b = primitive_walk(s, &s.configs[0], 7, 6);
        assert!(a.len() > 1, "walk must make progress");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.semantic_hash(), y.semantic_hash());
        }
        for c in &a {
            assert!(aceso_config::validate::validate(c, &s.model, &s.cluster).is_ok());
        }
    }
}
