//! Analyzer 4: search-trace replay.
//!
//! Runs a short deterministic search per corpus sample and re-proves the
//! search invariants from its trace: the best score is monotone
//! non-increasing, hop depths respect the `MaxHops` bound (plus the §4.3
//! bundling allowance), no configuration is accepted twice, and every
//! accepted configuration re-validates and re-estimates to its recorded
//! score. Works equally on externally supplied [`SearchResult`]s.

use crate::corpus::CorpusSample;
use crate::report::{AuditFinding, AuditReport, Severity};
use aceso_core::{AcesoSearch, SearchOptions, SearchResult, SearchTrace};
use aceso_perf::PerfModel;
use std::collections::HashSet;

fn finding(
    rule: &'static str,
    location: String,
    message: String,
    fingerprint: u64,
) -> AuditFinding {
    AuditFinding {
        rule,
        severity: Severity::Error,
        location,
        message,
        fingerprint,
    }
}

/// Audits one stage-count trace.
fn audit_trace(sample: &CorpusSample, trace: &SearchTrace, eps: f64, report: &mut AuditReport) {
    let loc = format!("{}/trace-p{}", sample.label, trace.stage_count);
    let pm = PerfModel::new(&sample.model, &sample.cluster, &sample.db);

    // Shape: one convergence point per iteration, one accepted
    // configuration per improving iteration.
    let improved = trace.iterations.iter().filter(|r| r.improved).count();
    report.tick(2);
    if trace.convergence.len() != trace.iterations.len() {
        report.push(finding(
            "TRACE-SHAPE",
            loc.clone(),
            format!(
                "{} convergence points for {} iterations",
                trace.convergence.len(),
                trace.iterations.len()
            ),
            0,
        ));
    }
    if trace.accepted.len() != improved {
        report.push(finding(
            "TRACE-SHAPE",
            loc.clone(),
            format!(
                "{} accepted configurations for {improved} improving iterations",
                trace.accepted.len()
            ),
            0,
        ));
    }

    // Monotonicity: best score never rises, never exceeds the initial
    // score, and the curve ends at the running minimum.
    let mut prev = trace.initial_score;
    for (k, pt) in trace.convergence.iter().enumerate() {
        report.tick(1);
        if pt.best_score > prev + eps {
            report.push(finding(
                "TRACE-MONO",
                loc.clone(),
                format!(
                    "best score rose from {prev:.6e} to {:.6e} at iteration {k}",
                    pt.best_score
                ),
                0,
            ));
        }
        prev = pt.best_score;
    }
    if let Some(last) = trace.convergence.last() {
        let want = trace
            .accepted
            .iter()
            .map(|a| a.score)
            .fold(trace.initial_score, f64::min);
        report.tick(1);
        if (last.best_score - want).abs() > eps * want.abs().max(1.0) {
            report.push(finding(
                "TRACE-MONO",
                loc.clone(),
                format!(
                    "final best score {:.6e} != running minimum {want:.6e}",
                    last.best_score
                ),
                0,
            ));
        }
    }
    let mut prev_explored = 0usize;
    for pt in &trace.convergence {
        report.tick(1);
        if pt.explored < prev_explored {
            report.push(finding(
                "TRACE-MONO",
                loc.clone(),
                "explored counter went backwards".into(),
                0,
            ));
        }
        prev_explored = pt.explored;
    }

    // Hop bound: a hit found at depth < MaxHops may bundle a relay chain
    // (≤ stage_count − 1 moves) plus one attached recompute fix-up.
    let hop_bound = trace.max_hops.saturating_sub(1) + trace.stage_count;
    for (k, it) in trace.iterations.iter().enumerate() {
        report.tick(2);
        if it.improved && (it.hops_used == 0 || it.hops_used > hop_bound) {
            report.push(finding(
                "TRACE-HOPS",
                loc.clone(),
                format!(
                    "iteration {k} used {} hops (bound {hop_bound}, max_hops {})",
                    it.hops_used, trace.max_hops
                ),
                0,
            ));
        }
        if !it.improved && it.hops_used != 0 {
            report.push(finding(
                "TRACE-HOPS",
                loc.clone(),
                format!("non-improving iteration {k} reports {} hops", it.hops_used),
                0,
            ));
        }
    }

    // Acceptance: unique fingerprints, each re-validating and re-scoring
    // to the recorded value.
    let mut seen: HashSet<u64> = HashSet::new();
    for (k, acc) in trace.accepted.iter().enumerate() {
        report.tick(4);
        if !seen.insert(acc.fingerprint) {
            report.push(finding(
                "TRACE-DUP",
                loc.clone(),
                format!("configuration accepted twice (acceptance {k})"),
                acc.fingerprint,
            ));
        }
        if acc.config.semantic_hash() != acc.fingerprint {
            report.push(finding(
                "TRACE-REVALID",
                loc.clone(),
                format!("acceptance {k}: fingerprint does not match the configuration"),
                acc.fingerprint,
            ));
        }
        if let Err(e) =
            aceso_config::validate::validate(&acc.config, &sample.model, &sample.cluster)
        {
            report.push(finding(
                "TRACE-REVALID",
                loc.clone(),
                format!("acceptance {k} fails validation: {e}"),
                acc.fingerprint,
            ));
            continue;
        }
        let rescore = pm.evaluate_unchecked(&acc.config).score();
        if (rescore - acc.score).abs() > eps * rescore.abs().max(1.0) {
            report.push(finding(
                "TRACE-REVALID",
                loc.clone(),
                format!(
                    "acceptance {k}: recorded score {:.6e}, re-estimate {rescore:.6e}",
                    acc.score
                ),
                acc.fingerprint,
            ));
        }
    }
}

/// Audits a finished [`SearchResult`]: result-level invariants plus every
/// per-stage-count trace.
pub fn audit_search_result(
    sample: &CorpusSample,
    result: &SearchResult,
    eps: f64,
    report: &mut AuditReport,
) {
    let loc = format!("{}/result", sample.label);
    report.tick(4);
    if result.top_configs.is_empty() {
        report.push(finding(
            "TRACE-RESULT",
            loc,
            "search result has no configurations".into(),
            0,
        ));
        return;
    }
    for w in result.top_configs.windows(2) {
        if w[0].score > w[1].score + eps {
            report.push(finding(
                "TRACE-RESULT",
                loc.clone(),
                "top configurations are not sorted by score".into(),
                w[1].config.semantic_hash(),
            ));
        }
    }
    let best = &result.top_configs[0];
    if result.best_config.semantic_hash() != best.config.semantic_hash()
        || result.best_time != best.iteration_time
        || result.best_oom != best.oom
    {
        report.push(finding(
            "TRACE-RESULT",
            loc.clone(),
            "best_config/best_time/best_oom disagree with the top entry".into(),
            best.config.semantic_hash(),
        ));
    }
    let traced: usize = result.traces.iter().map(|t| t.explored).sum();
    if result.explored != traced {
        report.push(finding(
            "TRACE-RESULT",
            loc.clone(),
            format!(
                "explored {} != sum of trace explored {traced}",
                result.explored
            ),
            0,
        ));
    }
    for sc in &result.top_configs {
        report.tick(1);
        if let Err(e) = aceso_config::validate::validate(&sc.config, &sample.model, &sample.cluster)
        {
            report.push(finding(
                "TRACE-REVALID",
                loc.clone(),
                format!("top configuration fails validation: {e}"),
                sc.config.semantic_hash(),
            ));
        }
    }
    for trace in &result.traces {
        audit_trace(sample, trace, eps, report);
    }
}

/// Runs a short deterministic search on the sample and audits its result.
pub fn audit_search(sample: &CorpusSample, smoke: bool, eps: f64, report: &mut AuditReport) {
    let mut options = SearchOptions {
        max_iterations: if smoke { 6 } else { 10 },
        parallel: false,
        top_k: 3,
        stage_counts: Some(if smoke { vec![2] } else { vec![2, 4] }),
        ..SearchOptions::default()
    };
    options.gen_options.enable_zero = true;
    let search = AcesoSearch::new(&sample.model, &sample.cluster, &sample.db, options);
    match search.run() {
        Ok(result) => audit_search_result(sample, &result, eps, report),
        Err(e) => report.push(finding(
            "TRACE-RESULT",
            format!("{}/result", sample.label),
            format!("audit search failed to run: {e}"),
            0,
        )),
    }
}
