//! Analyzer 7: lock-order deadlock analysis.
//!
//! The serve daemon's profile cache coalesces concurrent builds behind a
//! mutex + condvar pair; a deadlock there would wedge every request. The
//! in-tree locks are wrapped in `aceso_util::lockorder` shadow types that
//! record, at runtime, the directed held-before graph of lock
//! acquisitions. This analyzer turns the shadow layer on, drives the
//! cache through the adversarial interleavings a real daemon sees —
//! coalesced same-key builds, a drain racing a build, LRU eviction under
//! a tiny budget — and then proves the recorded acquisition graph is
//! acyclic. A cycle in the held-before graph is a potential deadlock:
//! two threads can each hold one lock of the cycle and block on the
//! next.
//!
//! Rules:
//!
//! * `LOCK-CYCLE` — the recorded acquisition graph contains a
//!   held-before cycle (reported with the full lock path).
//! * `LOCK-COVERAGE` — the scenarios failed to exercise an expected lock
//!   class, so the acyclicity proof would be vacuous.
//!
//! The [`Mutation::SwapLockPair`] gate acquires a private pair of
//! tracked mutexes in both orders (recorded into a private sink, so the
//! process-global graph stays healthy) and proves the cycle detector
//! fires.

use crate::report::{AuditFinding, AuditReport, Severity};
use crate::Mutation;
use aceso_cluster::ClusterSpec;
use aceso_model::zoo::gpt3_custom;
use aceso_serve::ProfileCache;
use aceso_util::lockorder::{self, LockGraph, TrackedMutex};
use std::sync::{Arc, Barrier};

/// Lock classes the scenarios must touch for the proof to be
/// non-vacuous.
const EXPECTED_CLASSES: &[&str] = &["profile-cache.state"];

/// Drives the profile cache through deterministic adversarial
/// interleavings while the shadow-lock layer records acquisitions.
fn drive_cache_scenarios() {
    let model_a = gpt3_custom("lock-a", 2, 256, 4, 128, 1024, 64);
    let model_b = gpt3_custom("lock-b", 2, 256, 4, 128, 1024, 64);
    let cluster = ClusterSpec::v100(1, 2);

    // Scenario 1: three threads coalesce on one key; one builds, the
    // others wait out the build on the condvar.
    let cache = ProfileCache::new(u64::MAX);
    std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(|| cache.get_or_build(&model_a, &cluster));
        }
    });

    // Scenario 2: a drain races a coalesced build. The builder parks
    // inside its build closure; a waiter blocks on the condvar; the
    // drain fires shutdown before the builder is released.
    let cache = ProfileCache::new(u64::MAX);
    let parked = Arc::new(Barrier::new(2));
    let release = Arc::new(Barrier::new(2));
    std::thread::scope(|s| {
        let builder = {
            let (parked, release) = (Arc::clone(&parked), Arc::clone(&release));
            let (model_a, cluster) = (&model_a, &cluster);
            let cache = &cache;
            s.spawn(move || {
                cache.get_or_build_with(model_a, cluster, |m, c| {
                    parked.wait();
                    release.wait();
                    aceso_profile::ProfileDb::build(m, c)
                })
            })
        };
        parked.wait();
        let waiter = s.spawn(|| cache.get_or_build(&model_a, &cluster));
        while cache.waiting() == 0 && !waiter.is_finished() {
            std::thread::yield_now();
        }
        cache.shutdown();
        waiter.join().expect("waiter survives the drain");
        release.wait();
        builder.join().expect("builder completes");
    });

    // Scenario 3: eviction under a one-byte budget — every insert
    // evicts the previous resident entry.
    let cache = ProfileCache::new(1);
    cache.get_or_build(&model_a, &cluster);
    cache.get_or_build(&model_b, &cluster);
    cache.get_or_build(&model_a, &cluster);
}

/// Runs the lock-order analyzer.
///
/// Corpus-independent: the lock graph describes the code, not a model.
/// With [`Mutation::SwapLockPair`] a private mutex pair is acquired in
/// both orders through a sink graph, seeding the cycle the detector
/// must catch.
pub fn audit_lock_order(mutation: Option<Mutation>, report: &mut AuditReport) {
    // Left on for the rest of the process: concurrent analyzer runs in
    // one test binary share the flag, and turning it back off under a
    // sibling's feet would silently blind its coverage check.
    lockorder::set_recording(true);
    drive_cache_scenarios();

    // Snapshot the process-global graph; mutations stay in a sink.
    let graph = LockGraph::new();
    graph.absorb(lockorder::global());

    if mutation == Some(Mutation::SwapLockPair) {
        let sink = Arc::new(LockGraph::new());
        let a = TrackedMutex::with_sink("audit.swap-a", (), Arc::clone(&sink));
        let b = TrackedMutex::with_sink("audit.swap-b", (), Arc::clone(&sink));
        {
            let _ga = a.lock().expect("a");
            let _gb = b.lock().expect("b under a");
        }
        {
            let _gb = b.lock().expect("b");
            let _ga = a.lock().expect("a under b");
        }
        graph.absorb(&sink);
    }

    let mk = |rule: &'static str, message: String| AuditFinding {
        rule,
        severity: Severity::Error,
        location: "lockorder/global".into(),
        message,
        fingerprint: graph.edges().len() as u64,
    };

    report.tick(1);
    if let Some(cycle) = graph.cycle() {
        report.push(mk(
            "LOCK-CYCLE",
            format!("held-before cycle: {}", cycle.join(" -> ")),
        ));
    }
    let acquired = graph.acquisitions();
    for class in EXPECTED_CLASSES {
        report.tick(1);
        let count = acquired
            .iter()
            .find(|(name, _)| name == class)
            .map_or(0, |(_, n)| *n);
        if count == 0 {
            report.push(mk(
                "LOCK-COVERAGE",
                format!("scenarios never acquired `{class}` — the proof is vacuous"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_lock_graph_is_acyclic() {
        let mut report = AuditReport::default();
        audit_lock_order(None, &mut report);
        assert!(report.checks_run >= 2);
        assert!(report.clean(), "lock order violated:\n{}", report.render());
    }

    #[test]
    fn swap_lock_pair_mutation_is_caught() {
        let mut report = AuditReport::default();
        audit_lock_order(Some(Mutation::SwapLockPair), &mut report);
        assert!(!report.clean(), "mutation must be caught");
        assert!(
            report.findings.iter().any(|f| f.rule == "LOCK-CYCLE"),
            "expected a LOCK-CYCLE finding:\n{}",
            report.render()
        );
    }
}
