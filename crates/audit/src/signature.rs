//! Analyzer 1: resource-signature conformance (Table 1).
//!
//! For every corpus configuration, applies each primitive in its *pure*
//! form (no attached recompute fix-up, no relay bundling) and re-estimates
//! the result, then checks that the observed per-iteration change of
//! compute, communication, and memory on the target stage never *opposes*
//! a declared `Inc`/`Dec` arrow. `Same` arrows are not enforced: the paper
//! uses them for the dominant-effect view and secondary couplings (e.g.
//! recomputation re-running tensor-parallel collectives) legitimately
//! move those resources.
//!
//! In-place tp↔dp conversions emitted under the inc/dec-dp/tp primitives
//! are skipped: they bundle a `dec` of one mechanism with an `inc` of the
//! other (`primitives_applied == 2`), so the single-primitive arrows do
//! not apply to the composite.

use crate::corpus::CorpusSample;
use crate::report::{AuditFinding, AuditReport, Severity};
use aceso_core::primitives::{generate_with, GenOptions};
use aceso_core::{Primitive, Resource, Trend};
use aceso_perf::{ConfigEstimate, PerfModel};

/// The first resource a primitive's signature decreases — the bottleneck
/// resource under which the search would select it.
fn target_resource(prim: Primitive) -> Resource {
    for r in Resource::ALL {
        if prim.decreases(r) {
            return r;
        }
    }
    // Every Table-1 primitive decreases at least one resource; fall back
    // to compute for robustness.
    Resource::Compute
}

/// Per-iteration resource totals of one stage: compute seconds,
/// communication seconds, and memory bytes.
///
/// Communication counts the *stage-local* collectives (tensor-parallel
/// ops plus gradient sync), which is what the Table-1 arrows describe.
/// Boundary p2p is deliberately excluded: it is a pipeline-structure
/// cost shared with the neighbour stage, and its per-device volume
/// shrinks as the stage's concurrency grows — a secondary coupling that
/// would mask the declared collective-communication direction.
fn stage_resources(
    pm: &PerfModel,
    config: &aceso_config::ParallelConfig,
    est: &ConfigEstimate,
    stage: usize,
) -> (f64, f64, f64) {
    let sb = pm.stage_breakdown(config, stage);
    let n = est.num_microbatches as f64;
    (
        n * sb.comp_per_mb(),
        n * sb.comm_per_mb() + sb.dp_sync,
        est.stages[stage].mem_total as f64,
    )
}

/// Checks one observed delta against a declared arrow; returns a message
/// when the observation materially opposes the declaration.
fn check_arrow(name: &str, declared: Trend, before: f64, after: f64, eps: f64) -> Option<String> {
    let tol = eps * before.abs().max(after.abs()) + eps;
    match declared {
        Trend::Inc if after < before - tol => Some(format!(
            "declares Inc({name}) but observed {before:.6e} -> {after:.6e}"
        )),
        Trend::Dec if after > before + tol => Some(format!(
            "declares Dec({name}) but observed {before:.6e} -> {after:.6e}"
        )),
        _ => None,
    }
}

/// Runs the signature-conformance analyzer over one corpus sample.
pub fn audit_signatures(sample: &CorpusSample, eps: f64, report: &mut AuditReport) {
    let pm = PerfModel::new(&sample.model, &sample.cluster, &sample.db);
    let opts = GenOptions {
        attach_rc: false,
        relay_moves: false,
        enable_zero: true,
    };
    for (ci, config) in sample.configs.iter().enumerate() {
        let est = pm.evaluate_unchecked(config);
        for stage in 0..config.num_stages() {
            let before = stage_resources(&pm, config, &est, stage);
            for prim in Primitive::EXTENDED {
                let resource = target_resource(prim);
                for cand in generate_with(&pm, config, &est, prim, stage, resource, opts) {
                    let concurrency_prim = matches!(
                        prim,
                        Primitive::IncDp | Primitive::IncTp | Primitive::DecDp | Primitive::DecTp
                    );
                    let gpus_changed = cand.config.stages[stage].gpus != config.stages[stage].gpus;
                    if concurrency_prim && !gpus_changed {
                        // In-place conversion: composite of two primitives,
                        // single-primitive arrows do not apply.
                        continue;
                    }
                    let cest = pm.evaluate_unchecked(&cand.config);
                    let after = stage_resources(&pm, &cand.config, &cest, stage);
                    let (d_comp, d_comm, d_mem) = prim.effects();
                    report.tick(3);
                    for msg in [
                        check_arrow("compute", d_comp, before.0, after.0, eps),
                        check_arrow("communication", d_comm, before.1, after.1, eps),
                        check_arrow("memory", d_mem, before.2, after.2, eps),
                    ]
                    .into_iter()
                    .flatten()
                    {
                        report.push(AuditFinding {
                            rule: "SIG-DIR",
                            severity: Severity::Error,
                            location: format!(
                                "{}#cfg{} stage {} {}",
                                sample.label,
                                ci,
                                stage,
                                prim.name()
                            ),
                            message: msg,
                            fingerprint: cand.config.semantic_hash(),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_resource_picks_first_dec() {
        assert_eq!(target_resource(Primitive::IncDp), Resource::Compute);
        assert_eq!(target_resource(Primitive::IncRc), Resource::Memory);
        assert_eq!(target_resource(Primitive::DecTp), Resource::Communication);
        assert_eq!(target_resource(Primitive::IncZero), Resource::Memory);
    }

    #[test]
    fn arrow_check_tolerates_flat_and_flags_opposition() {
        // Flat observation never violates either arrow.
        assert!(check_arrow("compute", Trend::Inc, 1.0, 1.0, 1e-6).is_none());
        assert!(check_arrow("compute", Trend::Dec, 1.0, 1.0, 1e-6).is_none());
        // Material opposition is flagged.
        assert!(check_arrow("compute", Trend::Inc, 1.0, 0.5, 1e-6).is_some());
        assert!(check_arrow("compute", Trend::Dec, 1.0, 2.0, 1e-6).is_some());
        // Conforming movement passes.
        assert!(check_arrow("compute", Trend::Inc, 1.0, 2.0, 1e-6).is_none());
        // `Same` is never enforced.
        assert!(check_arrow("memory", Trend::Same, 1.0, 99.0, 1e-6).is_none());
    }
}
