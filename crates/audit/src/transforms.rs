//! Analyzer 2: transform pre/post-condition checking.
//!
//! Every candidate configuration produced by `generate_with` — with every
//! combination feature enabled (relay moves, attached recompute fix-up,
//! ZeRO extension) — must pass full validation, conserve the GPU total,
//! report at least one applied primitive, actually differ from its input,
//! and be unique within its generation batch.

use crate::corpus::CorpusSample;
use crate::report::{AuditFinding, AuditReport, Severity};
use aceso_core::primitives::{generate_with, GenOptions};
use aceso_core::{Primitive, Resource};
use aceso_perf::PerfModel;
use std::collections::HashSet;

/// Runs the transform-validity analyzer over one corpus sample.
pub fn audit_transforms(sample: &CorpusSample, report: &mut AuditReport) {
    let pm = PerfModel::new(&sample.model, &sample.cluster, &sample.db);
    let opts = GenOptions {
        attach_rc: true,
        relay_moves: true,
        enable_zero: true,
    };
    for (ci, config) in sample.configs.iter().enumerate() {
        let est = pm.evaluate_unchecked(config);
        let input_hash = config.semantic_hash();
        let input_gpus = config.total_gpus();
        for stage in 0..config.num_stages() {
            for resource in Resource::ALL {
                for prim in Primitive::EXTENDED {
                    let mut seen: HashSet<u64> = HashSet::new();
                    for cand in generate_with(&pm, config, &est, prim, stage, resource, opts) {
                        let loc = format!(
                            "{}#cfg{} stage {} {} for {:?}",
                            sample.label,
                            ci,
                            stage,
                            prim.name(),
                            resource
                        );
                        let h = cand.config.semantic_hash();
                        report.tick(5);
                        if cand.config.total_gpus() != input_gpus {
                            report.push(AuditFinding {
                                rule: "XFORM-GPUS",
                                severity: Severity::Error,
                                location: loc.clone(),
                                message: format!(
                                    "candidate uses {} GPUs, input used {}",
                                    cand.config.total_gpus(),
                                    input_gpus
                                ),
                                fingerprint: h,
                            });
                        } else if let Err(e) = aceso_config::validate::validate(
                            &cand.config,
                            &sample.model,
                            &sample.cluster,
                        ) {
                            report.push(AuditFinding {
                                rule: "XFORM-VALID",
                                severity: Severity::Error,
                                location: loc.clone(),
                                message: format!("candidate fails validation: {e}"),
                                fingerprint: h,
                            });
                        }
                        if cand.primitives_applied == 0 {
                            report.push(AuditFinding {
                                rule: "XFORM-HOPS",
                                severity: Severity::Error,
                                location: loc.clone(),
                                message: "candidate reports zero applied primitives".into(),
                                fingerprint: h,
                            });
                        }
                        if h == input_hash {
                            report.push(AuditFinding {
                                rule: "XFORM-NOOP",
                                severity: Severity::Error,
                                location: loc.clone(),
                                message: "candidate is identical to its input configuration".into(),
                                fingerprint: h,
                            });
                        }
                        if !seen.insert(h) {
                            report.push(AuditFinding {
                                rule: "XFORM-DUP",
                                severity: Severity::Error,
                                location: loc,
                                message: "duplicate candidate fingerprint in one generation".into(),
                                fingerprint: h,
                            });
                        }
                    }
                }
            }
        }
    }
}
