//! Analyzer 5: static plan-safety proofs.
//!
//! The search promises that any configuration it emits fits the cluster.
//! This analyzer discharges that promise *statically*: it recomputes the
//! closed-form Eq. 1 peak-memory bound from first principles for every
//! corpus configuration (plus a seeded primitive walk, so search-shaped
//! configurations are covered, not just balanced inits), proves the bound
//! dominates the discrete-event simulator's measured peak under both
//! pipeline schedules, and checks that device assignment and every
//! stage-boundary resharding transition are legal.
//!
//! Rules:
//!
//! * `PLAN-EQ1` — the analyzer's independent Eq. 1 reassembly
//!   (`params + opt + act·(p−i) + reserved`) must equal the estimate's
//!   `mem_total` bit-for-bit; `in_flight` must equal `p − i`.
//! * `PLAN-MEM` — the static per-stage bound must be ≥ the simulator's
//!   measured per-stage peak for 1F1B, and the GPipe variant of the
//!   bound (`in_flight = n`, activations inflated by the allocator's
//!   worst-case fragmentation) must dominate the GPipe measurement.
//!   This is the differential proof that Eq. 1 is a true upper bound,
//!   not merely an estimate.
//! * `PLAN-FIT` — the estimate's OOM verdict must be exactly
//!   `max_memory > capacity` against the real device capacity, and
//!   `max_memory` must be achieved by some stage.
//! * `PLAN-DEV` — stage device ranges must contiguously partition
//!   `[0, cluster)`; every op's `tp·dp` must equal its stage's GPU count,
//!   `tp` must respect the operator's divisibility limit and `dim_index`
//!   must name a real partition dimension.
//! * `PLAN-RESHARD` — at every stage boundary the producing and the
//!   consuming data-parallel degrees must both divide the microbatch, so
//!   the boundary tensor can be redistributed without remainder.

use crate::corpus::{primitive_walk, CorpusSample};
use crate::report::{AuditFinding, AuditReport, Severity};
use crate::Mutation;
use aceso_config::ParallelConfig;
use aceso_perf::PerfModel;
use aceso_runtime::memory::WORST_CASE_FRAG;
use aceso_runtime::schedule::PipelineSchedule;
use aceso_runtime::{SimOptions, Simulator};

/// Walk length appended to each sample's fixed configurations.
fn walk_steps(smoke: bool) -> usize {
    if smoke {
        4
    } else {
        8
    }
}

/// Runs the plan-safety analyzer over one corpus sample.
///
/// `mutation` seeds the analyzer's own Eq. 1 reassembly with an
/// off-by-one in-flight count when set to [`Mutation::MemBound`] — the
/// mutation gate proving the bit-exact identity check has teeth.
pub fn audit_plan_safety(
    sample: &CorpusSample,
    smoke: bool,
    mutation: Option<Mutation>,
    report: &mut AuditReport,
) {
    let pm = PerfModel::new(&sample.model, &sample.cluster, &sample.db);
    let mut configs: Vec<ParallelConfig> = sample.configs.clone();
    configs.extend(
        primitive_walk(sample, &sample.configs[0], 0x9147_5AFE, walk_steps(smoke))
            .into_iter()
            .skip(1),
    );

    let sim_1f1b = Simulator::with_defaults(&sample.model, &sample.cluster, &sample.db);
    let sim_gpipe = Simulator::new(
        &sample.model,
        &sample.cluster,
        &sample.db,
        SimOptions {
            schedule: PipelineSchedule::GPipe,
            ..SimOptions::default()
        },
    );

    for (ci, config) in configs.iter().enumerate() {
        let est = pm.evaluate_unchecked(config);
        let p = config.num_stages();
        let n = config.num_microbatches(sample.model.global_batch).max(1);
        let fp = config.semantic_hash();
        let loc = |stage: usize| format!("{}#plan{} stage {}", sample.label, ci, stage);
        let whole = format!("{}#plan{}", sample.label, ci);
        let mk = |rule: &'static str, location: String, message: String| AuditFinding {
            rule,
            severity: Severity::Error,
            location,
            message,
            fingerprint: fp,
        };

        // --- PLAN-EQ1: independent closed-form reassembly -------------
        let mut static_1f1b = Vec::with_capacity(p);
        let mut static_gpipe = Vec::with_capacity(p);
        for (i, s) in est.stages.iter().enumerate() {
            let mut in_flight = p - i;
            if mutation == Some(Mutation::MemBound) {
                // Seeded injection: an off-by-one in the in-flight count
                // shrinks the bound by one activation stash.
                in_flight = in_flight.saturating_sub(1);
            }
            report.tick(2);
            if s.in_flight != in_flight {
                report.push(mk(
                    "PLAN-EQ1",
                    loc(i),
                    format!(
                        "in_flight {} != 1F1B depth p - i = {in_flight}",
                        s.in_flight
                    ),
                ));
            }
            let bound =
                s.mem_params + s.mem_opt + s.mem_act_per_mb * in_flight as u64 + s.mem_reserved;
            if bound != s.mem_total {
                report.push(mk(
                    "PLAN-EQ1",
                    loc(i),
                    format!(
                        "Eq.1 reassembly {bound} != estimate mem_total {}",
                        s.mem_total
                    ),
                ));
            }
            static_1f1b.push(bound);
            // GPipe stashes every microbatch, so the activation term can
            // dwarf the Eq. 1 reserve slack; the sound closed-form bound
            // inflates it by the allocator's worst-case fragmentation.
            let gpipe_act = (s.mem_act_per_mb as f64 * n as f64 * WORST_CASE_FRAG).ceil() as u64;
            static_gpipe.push(s.mem_params + s.mem_opt + gpipe_act + s.mem_reserved);
        }

        // --- PLAN-MEM: static bound dominates the simulator -----------
        for (schedule, sim, bounds) in [
            ("1f1b", &sim_1f1b, &static_1f1b),
            ("gpipe", &sim_gpipe, &static_gpipe),
        ] {
            match sim.execute(config) {
                Ok(r) => {
                    for (i, (&bound, &actual)) in
                        bounds.iter().zip(&r.peak_memory_per_stage).enumerate()
                    {
                        report.tick(1);
                        if bound < actual {
                            report.push(mk(
                                "PLAN-MEM",
                                loc(i),
                                format!(
                                    "static {schedule} bound {bound} < simulated peak {actual}"
                                ),
                            ));
                        }
                    }
                }
                Err(e) => report.push(mk(
                    "PLAN-MEM",
                    whole.clone(),
                    format!("{schedule} simulation rejected an audited config: {e}"),
                )),
            }
        }

        // --- PLAN-FIT: OOM verdict against the real capacity ----------
        report.tick(3);
        let capacity = sample.cluster.device.mem_bytes;
        if est.mem_capacity != capacity {
            report.push(mk(
                "PLAN-FIT",
                whole.clone(),
                format!(
                    "estimate capacity {} != device capacity {capacity}",
                    est.mem_capacity
                ),
            ));
        }
        if est.oom() != (est.max_memory > capacity) {
            report.push(mk(
                "PLAN-FIT",
                whole.clone(),
                format!(
                    "oom verdict {} inconsistent with max_memory {} vs capacity {capacity}",
                    est.oom(),
                    est.max_memory
                ),
            ));
        }
        if est.stages.iter().all(|s| s.mem_total != est.max_memory) {
            report.push(mk(
                "PLAN-FIT",
                whole.clone(),
                format!("max_memory {} achieved by no stage", est.max_memory),
            ));
        }

        // --- PLAN-DEV: device assignment partitions the cluster -------
        let mut next_device = 0usize;
        for (i, s) in config.stages.iter().enumerate() {
            let range = config.device_range(i);
            report.tick(2);
            if range.start != next_device || range.len != s.gpus || s.gpus == 0 {
                report.push(mk(
                    "PLAN-DEV",
                    loc(i),
                    format!(
                        "device range [{}, {}) breaks the contiguous partition at {next_device}",
                        range.start,
                        range.end()
                    ),
                ));
            }
            next_device = range.end();
            for (j, op) in s.ops.iter().enumerate() {
                let model_op = &sample.model.ops[s.op_start + j];
                report.tick(3);
                if op.gpus() as usize != s.gpus {
                    report.push(mk(
                        "PLAN-DEV",
                        loc(i),
                        format!("op {j}: tp*dp = {} != stage gpus {}", op.gpus(), s.gpus),
                    ));
                }
                if op.tp > model_op.tp_limit {
                    report.push(mk(
                        "PLAN-DEV",
                        loc(i),
                        format!("op {j}: tp {} over limit {}", op.tp, model_op.tp_limit),
                    ));
                }
                if usize::from(op.dim_index) >= model_op.partitions.len() {
                    report.push(mk(
                        "PLAN-DEV",
                        loc(i),
                        format!("op {j}: dim_index {} out of range", op.dim_index),
                    ));
                }
            }
        }
        report.tick(1);
        if next_device != sample.cluster.total_gpus() {
            report.push(mk(
                "PLAN-DEV",
                whole.clone(),
                format!(
                    "stages cover {next_device} devices, cluster has {}",
                    sample.cluster.total_gpus()
                ),
            ));
        }

        // --- PLAN-RESHARD: boundary transitions are legal -------------
        report.tick(1);
        if config.microbatch == 0
            || !sample
                .model
                .global_batch
                .is_multiple_of(config.microbatch.max(1))
        {
            report.push(mk(
                "PLAN-RESHARD",
                whole.clone(),
                format!("microbatch {} does not divide the batch", config.microbatch),
            ));
        }
        for i in 0..p.saturating_sub(1) {
            let produce = config.stages[i].ops.last();
            let consume = config.stages[i + 1].ops.first();
            let (Some(produce), Some(consume)) = (produce, consume) else {
                report.push(mk("PLAN-RESHARD", loc(i), "empty stage at boundary".into()));
                continue;
            };
            report.tick(2);
            if !config.microbatch.is_multiple_of(produce.dp as usize) {
                report.push(mk(
                    "PLAN-RESHARD",
                    loc(i),
                    format!(
                        "producing dp {} does not divide microbatch {}",
                        produce.dp, config.microbatch
                    ),
                ));
            }
            if !config.microbatch.is_multiple_of(consume.dp as usize) {
                report.push(mk(
                    "PLAN-RESHARD",
                    loc(i),
                    format!(
                        "consuming dp {} does not divide microbatch {}",
                        consume.dp, config.microbatch
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::corpus;

    #[test]
    fn smoke_plan_safety_is_clean() {
        let mut report = AuditReport::default();
        for sample in corpus(true) {
            audit_plan_safety(&sample, true, None, &mut report);
        }
        assert!(report.checks_run > 0);
        assert!(report.clean(), "plan safety violated:\n{}", report.render());
    }

    #[test]
    fn static_bound_dominates_simulation_differentially() {
        // The differential proof: for every corpus config under both
        // schedules, the closed-form bound is ≥ the measured peak. A
        // clean PLAN-MEM pass over the smoke corpus *is* the proof for
        // that slice; this test additionally pins that the comparison
        // actually ran (a silently-skipped sweep would also be "clean").
        let mut report = AuditReport::default();
        let samples = corpus(true);
        for sample in &samples {
            audit_plan_safety(sample, true, None, &mut report);
        }
        let min_mem_checks: usize = samples
            .iter()
            .map(|s| 2 * s.configs.iter().map(|c| c.num_stages()).sum::<usize>())
            .sum();
        assert!(
            report.checks_run >= min_mem_checks,
            "expected at least {min_mem_checks} checks, ran {}",
            report.checks_run
        );
        assert!(report.clean(), "{}", report.render());
    }

    #[test]
    fn mem_bound_mutation_is_caught() {
        let mut report = AuditReport::default();
        let samples = corpus(true);
        audit_plan_safety(&samples[0], true, Some(Mutation::MemBound), &mut report);
        assert!(!report.clean(), "mutation must be caught");
        assert!(
            report.findings.iter().any(|f| f.rule == "PLAN-EQ1"),
            "expected a PLAN-EQ1 finding:\n{}",
            report.render()
        );
    }
}
