//! Analyzer 3: performance-model internal consistency.
//!
//! The search relies on `evaluate_unchecked` while the runtime simulator
//! composes raw `stage_breakdown` ingredients; the two must agree. This
//! analyzer independently reassembles every full estimate from its
//! stage-local pieces (breakdown + boundary p2p + Eq. 1/Eq. 2 roll-ups)
//! and flags any divergence beyond epsilon, plus any broken arithmetic
//! identity inside the estimate itself.

use crate::corpus::CorpusSample;
use crate::report::{AuditFinding, AuditReport, Severity};
use aceso_perf::PerfModel;

fn close(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps * a.abs().max(b.abs()) + eps
}

/// Runs the perf-model consistency analyzer over one corpus sample.
pub fn audit_perf_model(sample: &CorpusSample, eps: f64, report: &mut AuditReport) {
    let pm = PerfModel::new(&sample.model, &sample.cluster, &sample.db);
    for (ci, config) in sample.configs.iter().enumerate() {
        let est = pm.evaluate_unchecked(config);
        let p = config.num_stages();
        let loc = |stage: usize| format!("{}#cfg{} stage {}", sample.label, ci, stage);
        let fp = config.semantic_hash();
        let mk = |rule: &'static str, location: String, message: String| AuditFinding {
            rule,
            severity: Severity::Error,
            location,
            message,
            fingerprint: fp,
        };

        // Reassemble each stage from its stage-local breakdown plus the
        // boundary p2p terms, exactly as the full estimate composes them.
        for i in 0..p {
            let sb = pm.stage_breakdown(config, i);
            let range = config.device_range(i);
            let mut comm_fwd = sb.comm_fwd;
            let mut comm_bwd = sb.comm_bwd;
            if i + 1 < p {
                let next = config.device_range(i + 1);
                let t = pm.boundary_p2p(config, i, range.end() - 1, next.start);
                comm_fwd += t;
                comm_bwd += t;
            }
            if i > 0 {
                let prev = config.device_range(i - 1);
                let t = pm.boundary_p2p(config, i - 1, prev.end() - 1, range.start);
                comm_fwd += t;
                comm_bwd += t;
            }
            let s = &est.stages[i];
            let pairs = [
                ("comp_fwd", sb.comp_fwd, s.comp_fwd),
                ("comp_bwd", sb.comp_bwd, s.comp_bwd),
                ("comm_fwd", comm_fwd, s.comm_fwd),
                ("comm_bwd", comm_bwd, s.comm_bwd),
                ("dp_sync", sb.dp_sync, s.dp_sync),
                ("mem_params", sb.mem_params as f64, s.mem_params as f64),
                ("mem_opt", sb.mem_opt as f64, s.mem_opt as f64),
                (
                    "mem_act_per_mb",
                    sb.mem_act_per_mb as f64,
                    s.mem_act_per_mb as f64,
                ),
                (
                    "mem_reserved",
                    sb.mem_reserved as f64,
                    s.mem_reserved as f64,
                ),
            ];
            report.tick(pairs.len());
            for (name, local, full) in pairs {
                if !close(local, full, eps) {
                    report.push(mk(
                        "PERF-STAGE",
                        loc(i),
                        format!("stage-local {name} {local:.6e} vs full estimate {full:.6e}"),
                    ));
                }
            }

            // Eq. 1 identities inside the full estimate.
            report.tick(2);
            if s.in_flight != p - i {
                report.push(mk(
                    "PERF-ROLLUP",
                    loc(i),
                    format!("in_flight {} != p - i = {}", s.in_flight, p - i),
                ));
            }
            let mem =
                s.mem_params + s.mem_opt + s.mem_act_per_mb * s.in_flight as u64 + s.mem_reserved;
            if mem != s.mem_total {
                report.push(mk(
                    "PERF-ROLLUP",
                    loc(i),
                    format!("mem_total {} != components sum {}", s.mem_total, mem),
                ));
            }
        }

        // Eq. 2 roll-up: stage_time = warmup + N·steady + cooldown.
        let n_mb = est.num_microbatches as f64;
        let warmup: f64 = est.stages.iter().map(|s| s.comp_fwd + s.comm_fwd).sum();
        let cooldown: f64 = est.stages.iter().map(|s| s.comp_bwd + s.comm_bwd).sum();
        for (i, s) in est.stages.iter().enumerate() {
            report.tick(1);
            let want = warmup + n_mb * s.steady_per_mb() + cooldown;
            if !close(s.stage_time, want, eps) {
                report.push(mk(
                    "PERF-ROLLUP",
                    loc(i),
                    format!("stage_time {:.6e} != Eq.2 roll-up {want:.6e}", s.stage_time),
                ));
            }
        }

        // Whole-configuration roll-ups.
        let whole = format!("{}#cfg{}", sample.label, ci);
        report.tick(6);
        let max_time = est
            .stages
            .iter()
            .map(|s| s.stage_time + s.dp_sync)
            .fold(0.0f64, f64::max);
        if !close(est.iteration_time, max_time, eps) {
            report.push(mk(
                "PERF-ROLLUP",
                whole.clone(),
                format!(
                    "iteration_time {:.6e} != max stage time {max_time:.6e}",
                    est.iteration_time
                ),
            ));
        }
        let slow = &est.stages[est.slowest_stage];
        if !close(slow.stage_time + slow.dp_sync, max_time, eps) {
            report.push(mk(
                "PERF-ROLLUP",
                whole.clone(),
                "slowest_stage does not achieve the iteration time".into(),
            ));
        }
        let max_mem = est.stages.iter().map(|s| s.mem_total).max().unwrap_or(0);
        if est.max_memory != max_mem {
            report.push(mk(
                "PERF-ROLLUP",
                whole.clone(),
                format!(
                    "max_memory {} != max stage memory {max_mem}",
                    est.max_memory
                ),
            ));
        }
        if est.stages[est.max_memory_stage].mem_total != max_mem {
            report.push(mk(
                "PERF-ROLLUP",
                whole.clone(),
                "max_memory_stage does not achieve max_memory".into(),
            ));
        }
        if est.num_microbatches * config.microbatch != sample.model.global_batch {
            report.push(mk(
                "PERF-ROLLUP",
                whole.clone(),
                format!(
                    "num_microbatches {} x microbatch {} != global batch {}",
                    est.num_microbatches, config.microbatch, sample.model.global_batch
                ),
            ));
        }
        let score = est.score();
        if !(score.is_finite() && score >= 0.0 && score >= est.iteration_time - eps) {
            report.push(mk(
                "PERF-FINITE",
                whole,
                format!("score {score:.6e} is not a finite OOM-penalised time"),
            ));
        }
    }
}
