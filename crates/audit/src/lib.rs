//! # aceso-audit — static invariant analysis for the Aceso search stack
//!
//! Four analyzers prove, over a deterministic corpus of (model zoo ×
//! cluster preset × configuration) samples, that the moving parts the
//! search relies on are sound:
//!
//! 1. **Signature conformance** ([`signature`]): every primitive's
//!    observed effect on (compute, communication, memory) respects its
//!    declared Table-1 arrows.
//! 2. **Transform validity** ([`transforms`]): every `generate_with`
//!    candidate passes full validation, conserves GPUs, and is a real,
//!    unique move.
//! 3. **Perf-model consistency** ([`perf_check`]): stage-local estimates
//!    reassemble into the full estimate; all Eq. 1/Eq. 2 roll-up
//!    identities hold.
//! 4. **Search-trace replay** ([`trace_replay`]): monotone best score,
//!    hop-depth bounds, no duplicate acceptances, and every accepted
//!    configuration re-validates.
//!
//! The entry point is [`run`], which sweeps the corpus and returns a
//! merged [`AuditReport`]; the `aceso audit` subcommand and the bench
//! `audit` binary are thin wrappers over it.

pub mod corpus;
pub mod perf_check;
pub mod report;
pub mod signature;
pub mod trace_replay;
pub mod transforms;

pub use corpus::{corpus, CorpusSample};
pub use report::{AuditFinding, AuditReport, Severity};

/// Audit configuration.
#[derive(Debug, Clone, Copy)]
pub struct AuditOptions {
    /// Audit only a small custom model (CI smoke mode) instead of the
    /// full model zoo.
    pub smoke: bool,
    /// Relative tolerance for floating-point comparisons.
    pub epsilon: f64,
}

impl Default for AuditOptions {
    fn default() -> Self {
        Self {
            smoke: false,
            epsilon: 1e-9,
        }
    }
}

/// Runs one analyzer pass over one corpus sample.
pub fn audit_sample(sample: &CorpusSample, opts: &AuditOptions, report: &mut AuditReport) {
    report.samples += 1;
    report.configs_checked += sample.configs.len();
    signature::audit_signatures(sample, opts.epsilon, report);
    transforms::audit_transforms(sample, report);
    perf_check::audit_perf_model(sample, opts.epsilon, report);
    trace_replay::audit_search(sample, opts.smoke, opts.epsilon, report);
}

/// Runs all four analyzers over the full corpus and merges the findings.
pub fn run(opts: &AuditOptions) -> AuditReport {
    let mut report = AuditReport::default();
    for sample in corpus(opts.smoke) {
        audit_sample(&sample, opts, &mut report);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_audit_is_clean() {
        let report = run(&AuditOptions {
            smoke: true,
            ..AuditOptions::default()
        });
        assert!(report.samples >= 2);
        assert!(report.configs_checked >= 2);
        assert!(report.checks_run > 0);
        assert!(
            report.clean(),
            "smoke audit found violations:\n{}",
            report.render()
        );
    }
}
