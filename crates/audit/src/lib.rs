//! # aceso-audit — whole-system static verification for the Aceso stack
//!
//! Seven analyzers prove, over a deterministic corpus of (model zoo ×
//! cluster preset × configuration) samples, that the moving parts the
//! search and the serve daemon rely on are sound:
//!
//! 1. **Signature conformance** ([`signature`]): every primitive's
//!    observed effect on (compute, communication, memory) respects its
//!    declared Table-1 arrows.
//! 2. **Transform validity** ([`transforms`]): every `generate_with`
//!    candidate passes full validation, conserves GPUs, and is a real,
//!    unique move.
//! 3. **Perf-model consistency** ([`perf_check`]): stage-local estimates
//!    reassemble into the full estimate; all Eq. 1/Eq. 2 roll-up
//!    identities hold.
//! 4. **Search-trace replay** ([`trace_replay`]): monotone best score,
//!    hop-depth bounds, no duplicate acceptances, and every accepted
//!    configuration re-validates.
//! 5. **Plan safety** ([`plan_safety`]): the closed-form Eq. 1 peak
//!    bound is recomputed independently, proven ≥ the simulator's
//!    measured peak under both schedules, and device assignment plus
//!    stage-boundary resharding are checked for legality.
//! 6. **Protocol state machine** ([`protocol`]): the serve session
//!    protocol is explored exhaustively under a bounded crash/resubmit
//!    adversary — no reachable interleaving emits an out-of-order
//!    frame, double-delivers a result, or leaks a spool on a clean path.
//! 7. **Lock order** ([`lock_check`]): the shadow-lock layer records
//!    the held-before graph while profile-cache scenarios run; the
//!    graph is proven acyclic.
//!
//! Every analyzer carries a **mutation gate** ([`Mutation`]): a seeded
//! bug injection that must be caught, proving the check is live. The
//! entry point is [`run`]; the `aceso audit` subcommand and the bench
//! `audit` binary are thin wrappers over it.

#![deny(missing_docs)]

pub mod corpus;
pub mod lock_check;
pub mod perf_check;
pub mod plan_safety;
pub mod protocol;
pub mod report;
pub mod signature;
pub mod trace_replay;
pub mod transforms;

pub use corpus::{corpus, CorpusSample};
pub use report::{AuditFinding, AuditReport, Severity};

/// Seeded bug injections for the mutation gates: each analyzer family
/// must catch "its" mutation with a non-zero exit and a typed finding,
/// proving the corresponding check is not vacuous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Off-by-one in the plan-safety analyzer's Eq. 1 in-flight count
    /// (caught by `PLAN-EQ1`).
    MemBound,
    /// The protocol model emits the result before the final event
    /// (caught by `PROTO-FRAME`).
    ReorderFrame,
    /// A private lock pair is acquired in both orders (caught by
    /// `LOCK-CYCLE`).
    SwapLockPair,
}

impl Mutation {
    /// Every defined mutation.
    pub const ALL: [Mutation; 3] = [
        Mutation::MemBound,
        Mutation::ReorderFrame,
        Mutation::SwapLockPair,
    ];

    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::MemBound => "mem-bound",
            Mutation::ReorderFrame => "reorder-frame",
            Mutation::SwapLockPair => "swap-lock-pair",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        Mutation::ALL.into_iter().find(|m| m.name() == s)
    }

    /// The finding rule this mutation must trigger.
    pub fn expected_rule(self) -> &'static str {
        match self {
            Mutation::MemBound => "PLAN-EQ1",
            Mutation::ReorderFrame => "PROTO-FRAME",
            Mutation::SwapLockPair => "LOCK-CYCLE",
        }
    }
}

/// Audit configuration.
#[derive(Debug, Clone, Copy)]
pub struct AuditOptions {
    /// Audit only a small custom model (CI smoke mode) instead of the
    /// full model zoo.
    pub smoke: bool,
    /// Relative tolerance for floating-point comparisons.
    pub epsilon: f64,
    /// Run the whole-system analyzers (plan safety, protocol state
    /// machine, lock order) in addition to the original four. Smoke mode
    /// always includes them at reduced depth.
    pub full: bool,
    /// Seeded bug injection for the mutation gates.
    pub mutation: Option<Mutation>,
}

impl Default for AuditOptions {
    fn default() -> Self {
        Self {
            smoke: false,
            epsilon: 1e-9,
            full: false,
            mutation: None,
        }
    }
}

/// Runs one analyzer pass over one corpus sample.
pub fn audit_sample(sample: &CorpusSample, opts: &AuditOptions, report: &mut AuditReport) {
    report.samples += 1;
    report.configs_checked += sample.configs.len();
    signature::audit_signatures(sample, opts.epsilon, report);
    transforms::audit_transforms(sample, report);
    perf_check::audit_perf_model(sample, opts.epsilon, report);
    trace_replay::audit_search(sample, opts.smoke, opts.epsilon, report);
    if opts.full || opts.smoke {
        plan_safety::audit_plan_safety(sample, opts.smoke, opts.mutation, report);
    }
}

/// Runs the analyzers over the full corpus and merges the findings.
///
/// The corpus-independent analyzers (protocol, lock order) run once per
/// invocation, after the corpus sweep; they are part of `--full` and
/// smoke runs only, so the default fast path is unchanged.
pub fn run(opts: &AuditOptions) -> AuditReport {
    let mut report = AuditReport::default();
    for sample in corpus(opts.smoke) {
        audit_sample(&sample, opts, &mut report);
    }
    if opts.full || opts.smoke {
        let params = if opts.smoke {
            protocol::ProtocolParams::smoke()
        } else {
            protocol::ProtocolParams::full()
        };
        protocol::audit_protocol(&params, opts.mutation, &mut report);
        lock_check::audit_lock_order(opts.mutation, &mut report);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_audit_is_clean() {
        let report = run(&AuditOptions {
            smoke: true,
            ..AuditOptions::default()
        });
        assert!(report.samples >= 2);
        assert!(report.configs_checked >= 2);
        assert!(report.checks_run > 0);
        assert!(
            report.clean(),
            "smoke audit found violations:\n{}",
            report.render()
        );
    }

    #[test]
    fn every_mutation_is_caught_by_its_rule() {
        for m in Mutation::ALL {
            let report = run(&AuditOptions {
                smoke: true,
                mutation: Some(m),
                ..AuditOptions::default()
            });
            assert!(!report.clean(), "mutation {} slipped through", m.name());
            assert!(
                report.findings.iter().any(|f| f.rule == m.expected_rule()),
                "mutation {} expected rule {}:\n{}",
                m.name(),
                m.expected_rule(),
                report.render()
            );
        }
    }

    #[test]
    fn mutation_names_round_trip() {
        for m in Mutation::ALL {
            assert_eq!(Mutation::parse(m.name()), Some(m));
        }
        assert_eq!(Mutation::parse("nope"), None);
    }
}
