//! Analyzer 6: serve wire-protocol state-machine checking.
//!
//! The serve daemon's session protocol (`aceso_serve::proto`) promises
//! three things to a client: frames arrive in a legal order (statuses,
//! then a contiguous event stream, then exactly one result), a crash
//! never loses more work than the last spooled checkpoint, and a spool
//! file outlives a session only when a crash interrupted it. This
//! analyzer models the protocol as an explicit state machine — the
//! emission program of `run_spooled` (status → status → spool writes →
//! events → result → spool delete) plus an adversary that may crash the
//! daemon at any frame boundary and resubmit — and exhaustively
//! enumerates every reachable interleaving up to a bounded crash budget.
//!
//! Rules:
//!
//! * `PROTO-FRAME` — some session emission order violates the client's
//!   acceptance automaton (status after an event, a gap in the event
//!   stream, a result before the final event, or any frame after the
//!   result).
//! * `PROTO-RESULT` — a reachable interaction delivers zero results on a
//!   completed path, or more than one result anywhere.
//! * `PROTO-SPOOL` — a spool file survives a *clean* completion, or a
//!   checkpoint regresses (a resumed session restarts behind the
//!   persisted spool slot). Crash-abandoned spools are expected — they
//!   are exactly what the serve daemon's TTL sweeper reclaims.
//!
//! The model is deterministic, so the reachable-state count is a stable
//! fingerprint of the protocol; a golden test pins it and any protocol
//! change that widens or narrows the reachable space shows up as a diff.

use crate::report::{AuditFinding, AuditReport, Severity};
use crate::Mutation;
use std::collections::BTreeSet;

/// Bounds of the protocol exploration.
#[derive(Debug, Clone, Copy)]
pub struct ProtocolParams {
    /// Spool checkpoint slots a full search writes.
    pub spool_slots: u8,
    /// Progress events a full search emits.
    pub events: u8,
    /// Adversarial crash/resubmit budget.
    pub crashes: u8,
}

impl ProtocolParams {
    /// Reduced bounds for the CI smoke run.
    pub fn smoke() -> Self {
        Self {
            spool_slots: 2,
            events: 3,
            crashes: 1,
        }
    }

    /// Full bounds (the golden reachable-state count is pinned here).
    pub fn full() -> Self {
        Self {
            spool_slots: 3,
            events: 4,
            crashes: 2,
        }
    }
}

/// One frame of a session's emission program. `SpoolWrite`/`SpoolDelete`
/// are server-side persistence effects; the rest are client-visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Frame {
    /// A `status` frame (`profiling`, `searching`, ...).
    Status,
    /// Checkpoint slot `s` persisted to the spool directory.
    SpoolWrite(u8),
    /// Progress event with stream index `i`.
    Event(u8),
    /// The final `result` frame.
    Result,
    /// Spool file removed after result delivery.
    SpoolDelete,
}

/// The `run_spooled` emission program for a session resuming from spool
/// progress `s0`. `mutation` seeds the [`Mutation::ReorderFrame`] bug:
/// the result frame is emitted before the final event.
fn build_program(params: &ProtocolParams, s0: u8, mutation: Option<Mutation>) -> Vec<Frame> {
    let mut program = vec![Frame::Status, Frame::Status];
    for s in s0 + 1..=params.spool_slots {
        program.push(Frame::SpoolWrite(s));
    }
    for i in 0..params.events {
        program.push(Frame::Event(i));
    }
    program.push(Frame::Result);
    program.push(Frame::SpoolDelete);
    if mutation == Some(Mutation::ReorderFrame) {
        let result = program
            .iter()
            .position(|f| *f == Frame::Result)
            .expect("program has a result");
        program.swap(result - 1, result);
    }
    program
}

/// How an interaction ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Terminal {
    /// Session still in progress.
    Running,
    /// Program ran to completion.
    Completed,
    /// Crash budget exhausted before a result; client gave up.
    Abandoned,
    /// Crash after the result frame but before the spool delete.
    CrashedAfterResult,
}

/// One explored protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct State {
    /// Highest checkpoint slot persisted in the spool file.
    spool: u8,
    /// Whether a spool file currently exists on disk.
    spool_present: bool,
    /// Position in the current session's emission program.
    pos: u8,
    /// Crashes consumed so far.
    crashes: u8,
    /// Results delivered to the client across the whole interaction.
    results: u8,
    /// Interaction status.
    terminal: Terminal,
}

/// Validates one session program against the client acceptance automaton.
fn check_program(params: &ProtocolParams, s0: u8, program: &[Frame], report: &mut AuditReport) {
    let loc = format!("proto/session(s0={s0})");
    let mk = |message: String| AuditFinding {
        rule: "PROTO-FRAME",
        severity: Severity::Error,
        location: loc.clone(),
        message,
        fingerprint: u64::from(s0),
    };
    let mut next_event = 0u8;
    let mut results = 0u8;
    let mut spool = s0;
    for frame in program {
        report.tick(1);
        if results > 0 && *frame != Frame::SpoolDelete {
            report.push(mk(format!("{frame:?} emitted after the result frame")));
        }
        match frame {
            Frame::Status => {
                if next_event > 0 {
                    report.push(mk("status frame after the event stream began".into()));
                }
            }
            Frame::SpoolWrite(s) => {
                if *s != spool + 1 {
                    report.push(mk(format!("spool write {s} skips past slot {spool}")));
                }
                spool = *s;
            }
            Frame::Event(i) => {
                if *i != next_event {
                    report.push(mk(format!("event {i} arrived, expected {next_event}")));
                }
                next_event = i + 1;
            }
            Frame::Result => {
                if next_event != params.events {
                    report.push(mk(format!(
                        "result after {next_event}/{} events",
                        params.events
                    )));
                }
                results += 1;
            }
            Frame::SpoolDelete => {
                if results == 0 {
                    report.push(mk("spool deleted before the result was delivered".into()));
                }
            }
        }
    }
    report.tick(1);
    if results != 1 {
        report.push(mk(format!("session program delivers {results} results")));
    }
}

/// Exhaustively explores the protocol state machine, pushing findings
/// into `report`, and returns the reachable-state count (the golden
/// fingerprint asserted in tests).
pub fn audit_protocol(
    params: &ProtocolParams,
    mutation: Option<Mutation>,
    report: &mut AuditReport,
) -> usize {
    // Frame-order automaton over every distinct resume point.
    for s0 in 0..=params.spool_slots {
        let program = build_program(params, s0, mutation);
        check_program(params, s0, &program, report);
    }

    // Interleaving exploration: advance vs crash at every frame boundary.
    let mk = |state: &State, rule: &'static str, message: String| AuditFinding {
        rule,
        severity: Severity::Error,
        location: format!(
            "proto/state(spool={}, pos={}, crashes={})",
            state.spool, state.pos, state.crashes
        ),
        message,
        fingerprint: u64::from(state.spool) << 16
            | u64::from(state.pos) << 8
            | u64::from(state.crashes),
    };
    let initial = State {
        spool: 0,
        spool_present: false,
        pos: 0,
        crashes: 0,
        results: 0,
        terminal: Terminal::Running,
    };
    let mut seen: BTreeSet<State> = BTreeSet::new();
    let mut queue = vec![initial];
    seen.insert(initial);
    while let Some(state) = queue.pop() {
        report.tick(1);
        if state.results > 1 {
            report.push(mk(
                &state,
                "PROTO-RESULT",
                format!("{} results delivered on one interaction", state.results),
            ));
            continue;
        }
        match state.terminal {
            Terminal::Completed => {
                if state.results != 1 {
                    report.push(mk(
                        &state,
                        "PROTO-RESULT",
                        format!("clean completion with {} results", state.results),
                    ));
                }
                if state.spool_present {
                    report.push(mk(
                        &state,
                        "PROTO-SPOOL",
                        "spool file survived a clean completion".into(),
                    ));
                }
                continue;
            }
            Terminal::Abandoned => {
                if state.results != 0 {
                    report.push(mk(
                        &state,
                        "PROTO-RESULT",
                        "abandoned interaction delivered a result".into(),
                    ));
                }
                continue;
            }
            Terminal::CrashedAfterResult => {
                // Expected leak window: the TTL sweeper's territory.
                continue;
            }
            Terminal::Running => {}
        }
        let program = build_program(params, state.spool, mutation);
        let mut push = |next: State| {
            if seen.insert(next) {
                queue.push(next);
            }
        };

        // Choice 1: the server emits the next frame.
        if usize::from(state.pos) < program.len() {
            let mut next = state;
            match program[usize::from(state.pos)] {
                Frame::Status | Frame::Event(_) => {}
                Frame::SpoolWrite(s) => {
                    if s <= state.spool && state.spool_present {
                        report.push(mk(
                            &state,
                            "PROTO-SPOOL",
                            format!("checkpoint regressed: write {s} over spool {}", state.spool),
                        ));
                    }
                    next.spool = s;
                    next.spool_present = true;
                }
                Frame::Result => next.results += 1,
                Frame::SpoolDelete => next.spool_present = false,
            }
            next.pos += 1;
            if usize::from(next.pos) == program.len() {
                next.terminal = Terminal::Completed;
                next.pos = 0;
            }
            push(next);
        }

        // Choice 2: the daemon crashes here.
        if state.crashes < params.crashes {
            let mut next = state;
            next.crashes += 1;
            next.pos = 0;
            next.terminal = if state.results > 0 {
                // Client already holds the result; it never resubmits.
                Terminal::CrashedAfterResult
            } else if next.crashes == params.crashes {
                Terminal::Abandoned
            } else {
                Terminal::Running // resubmit: fresh session from the spool
            };
            push(next);
        }
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_exploration_is_clean() {
        let mut report = AuditReport::default();
        audit_protocol(&ProtocolParams::full(), None, &mut report);
        assert!(report.clean(), "protocol violated:\n{}", report.render());
    }

    #[test]
    fn reachable_state_count_is_pinned() {
        // Golden fingerprint of the protocol model: any change to the
        // emission program or the adversary widens or narrows this.
        let mut report = AuditReport::default();
        let full = audit_protocol(&ProtocolParams::full(), None, &mut report);
        let smoke = audit_protocol(&ProtocolParams::smoke(), None, &mut report);
        assert_eq!(full, 39, "full-mode reachable states drifted");
        assert_eq!(smoke, 12, "smoke-mode reachable states drifted");
        assert!(report.clean(), "{}", report.render());
    }

    #[test]
    fn reorder_frame_mutation_is_caught() {
        let mut report = AuditReport::default();
        audit_protocol(
            &ProtocolParams::full(),
            Some(Mutation::ReorderFrame),
            &mut report,
        );
        assert!(!report.clean(), "mutation must be caught");
        assert!(
            report.findings.iter().any(|f| f.rule == "PROTO-FRAME"),
            "expected a PROTO-FRAME finding:\n{}",
            report.render()
        );
    }

    #[test]
    fn exhausted_crash_budget_leaves_a_reclaimable_spool() {
        // Sanity that the model actually reaches the abandoned-spool
        // terminal the TTL sweeper exists for: with a crash budget the
        // exploration must visit at least one Abandoned state with a
        // spool present, and stay clean doing so.
        let mut report = AuditReport::default();
        let states = audit_protocol(&ProtocolParams::full(), None, &mut report);
        assert!(states > 30);
        assert!(report.clean());
    }
}
