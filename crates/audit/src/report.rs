//! Audit findings and reports.
//!
//! Every analyzer emits structured [`AuditFinding`]s into an
//! [`AuditReport`]; the report renders both a human-readable summary and a
//! machine-readable JSON document with per-rule counts.

use aceso_util::json::{arr, obj, Value};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A proven invariant violation — the audit fails.
    Error,
    /// A suspicious observation that needs human judgement.
    Warning,
}

impl Severity {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One invariant violation found by an analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditFinding {
    /// Stable rule identifier, e.g. `SIG-DIR` or `TRACE-MONO`.
    pub rule: &'static str,
    /// Severity of the violation.
    pub severity: Severity,
    /// Where it happened: `model/cluster/config` plus stage or primitive.
    pub location: String,
    /// Human-readable description of the violation.
    pub message: String,
    /// `semantic_hash` of the offending configuration (0 when the finding
    /// is not tied to one configuration).
    pub fingerprint: u64,
}

impl AuditFinding {
    fn to_json(&self) -> Value {
        obj([
            ("rule", Value::Str(self.rule.into())),
            ("severity", Value::Str(self.severity.name().into())),
            ("location", Value::Str(self.location.clone())),
            ("message", Value::Str(self.message.clone())),
            ("fingerprint", Value::UInt(self.fingerprint)),
        ])
    }
}

/// Aggregated result of an audit run.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// All findings, in analyzer order.
    pub findings: Vec<AuditFinding>,
    /// Total individual checks evaluated (a measure of coverage).
    pub checks_run: usize,
    /// Corpus samples swept.
    pub samples: usize,
    /// Configurations examined across all analyzers.
    pub configs_checked: usize,
}

impl AuditReport {
    /// Records one finding.
    pub fn push(&mut self, finding: AuditFinding) {
        self.findings.push(finding);
    }

    /// Counts one evaluated check (call once per assertion, found or not).
    pub fn tick(&mut self, n: usize) {
        self.checks_run += n;
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: AuditReport) {
        self.findings.extend(other.findings);
        self.checks_run += other.checks_run;
        self.samples += other.samples;
        self.configs_checked += other.configs_checked;
    }

    /// Whether the audit passed (no findings at all).
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings per rule id, sorted by rule.
    pub fn rule_counts(&self) -> Vec<(&'static str, usize)> {
        let mut map = std::collections::BTreeMap::new();
        for f in &self.findings {
            *map.entry(f.rule).or_insert(0usize) += 1;
        }
        map.into_iter().collect()
    }

    /// Machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let counts = Value::Object(
            self.rule_counts()
                .into_iter()
                .map(|(rule, n)| (rule.to_string(), Value::UInt(n as u64)))
                .collect(),
        );
        obj([
            ("clean", Value::Bool(self.clean())),
            ("samples", Value::UInt(self.samples as u64)),
            ("configs_checked", Value::UInt(self.configs_checked as u64)),
            ("checks_run", Value::UInt(self.checks_run as u64)),
            ("rule_counts", counts),
            ("findings", arr(self.findings.iter().map(|f| f.to_json()))),
        ])
        .to_string_pretty()
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{:<7} {:<12} {}: {}\n",
                f.severity.name(),
                f.rule,
                f.location,
                f.message
            ));
        }
        out.push_str(&format!(
            "audit: {} sample(s), {} config(s), {} check(s) run — ",
            self.samples, self.configs_checked, self.checks_run
        ));
        if self.clean() {
            out.push_str("no findings\n");
        } else {
            out.push_str(&format!("{} finding(s):\n", self.findings.len()));
            for (rule, n) in self.rule_counts() {
                out.push_str(&format!("  {rule:<12} {n}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str) -> AuditFinding {
        AuditFinding {
            rule,
            severity: Severity::Error,
            location: "gpt3/v100/p2".into(),
            message: "broken".into(),
            fingerprint: 42,
        }
    }

    #[test]
    fn clean_report() {
        let mut r = AuditReport::default();
        r.tick(10);
        r.samples = 2;
        assert!(r.clean());
        assert!(r.render().contains("no findings"));
        assert!(r.to_json().contains("\"clean\": true"));
    }

    #[test]
    fn rule_counts_aggregate() {
        let mut r = AuditReport::default();
        r.push(finding("SIG-DIR"));
        r.push(finding("SIG-DIR"));
        r.push(finding("TRACE-MONO"));
        assert_eq!(r.rule_counts(), vec![("SIG-DIR", 2), ("TRACE-MONO", 1)]);
        assert!(!r.clean());
        let json = r.to_json();
        assert!(json.contains("\"SIG-DIR\": 2"));
        assert!(json.contains("\"fingerprint\": 42"));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = AuditReport::default();
        a.tick(3);
        a.samples = 1;
        let mut b = AuditReport::default();
        b.push(finding("XFORM-VALID"));
        b.tick(2);
        b.samples = 1;
        a.merge(b);
        assert_eq!(a.checks_run, 5);
        assert_eq!(a.samples, 2);
        assert_eq!(a.findings.len(), 1);
    }
}
