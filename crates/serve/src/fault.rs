//! Fault-injection proxy for crash-safety tests.
//!
//! [`FaultProxy`] sits between a serve client and the daemon and cuts
//! the connection at a chosen **frame boundary**: it forwards the
//! client→server byte stream verbatim, parses the server→client stream
//! with the real wire framing (4-byte big-endian length prefixes), and
//! after forwarding the configured number of frames severs both
//! directions at once. The client observes exactly what a daemon crash
//! or network partition mid-response looks like — a clean cut between
//! frames, never a torn one — which is the scenario the checkpoint
//! spool and [`crate::client::submit_with_retries`] exist to survive
//! (`tests/serve.rs` drives the full kill → retry → resume →
//! bit-identical-result loop through this proxy).
//!
//! The proxy is deliberately minimal test infrastructure: one
//! connection at a time, threads detach, and the listener lives until
//! the process exits. It is compiled into the library (not
//! `#[cfg(test)]`) so integration tests and external harnesses can use
//! it, but nothing in the serve path depends on it.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// The adversarial behaviour a [`FaultProxy`] injects into each
/// forwarded connection.
#[derive(Debug, Clone, Copy)]
pub enum FaultMode {
    /// Sever both directions after forwarding this many server→client
    /// frames — a crash or partition landing exactly on a frame
    /// boundary (`0` cuts before the first response frame).
    CutAfterFrames(usize),
    /// Forward the client→server stream one byte at a time with this
    /// delay between bytes — a slow-loris peer that keeps a frame torn
    /// open indefinitely. Drives the server's mid-frame stall deadline
    /// (the reactor's INV-NONBLOCK timeout, `docs/SERVER.md`).
    SlowLoris {
        /// Pause inserted before each forwarded client→server byte.
        byte_delay: Duration,
    },
    /// Forward this many client→server frames, then shut down only the
    /// write side toward the server (the server reads EOF — a
    /// half-closed socket) while continuing to relay server→client
    /// bytes. A well-behaved server answers everything it admitted
    /// before the EOF, then closes.
    HalfCloseAfter(usize),
}

/// A TCP proxy that injects one configured [`FaultMode`] into every
/// forwarded connection.
pub struct FaultProxy {
    addr: SocketAddr,
}

impl FaultProxy {
    /// Starts a proxy on an ephemeral local port, forwarding every
    /// accepted connection to `upstream` and cutting it after
    /// `cut_after_frames` server→client frames have been relayed.
    /// `cut_after_frames` of 0 severs before the first response frame —
    /// the request may still have been delivered and run to completion
    /// server-side, exactly like a crash right after submission.
    /// Shorthand for [`FaultProxy::start_with`] and
    /// [`FaultMode::CutAfterFrames`].
    pub fn start(upstream: &str, cut_after_frames: usize) -> std::io::Result<Self> {
        Self::start_with(upstream, FaultMode::CutAfterFrames(cut_after_frames))
    }

    /// Starts a proxy on an ephemeral local port, injecting `mode` into
    /// every accepted connection.
    pub fn start_with(upstream: &str, mode: FaultMode) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let upstream = upstream.to_string();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(client) = conn else { continue };
                let Ok(server) = TcpStream::connect(&upstream) else {
                    // Upstream gone (daemon killed): drop the client
                    // immediately, which reads as connection-refused-ish.
                    continue;
                };
                let _ = match mode {
                    FaultMode::CutAfterFrames(n) => pump(client, server, n),
                    FaultMode::SlowLoris { byte_delay } => {
                        pump_slow_loris(client, server, byte_delay)
                    }
                    FaultMode::HalfCloseAfter(n) => pump_half_close(client, server, n),
                };
            }
        });
        Ok(Self { addr })
    }

    /// The proxy's listen address — point the client here.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }
}

/// Relays one connection pair until the frame budget is exhausted, then
/// severs both sockets in both directions.
fn pump(client: TcpStream, server: TcpStream, cut_after_frames: usize) -> std::io::Result<()> {
    // Client → server: a verbatim byte pump on its own thread; it dies
    // when either socket is shut down below.
    let mut c2s_read = client.try_clone()?;
    let mut c2s_write = server.try_clone()?;
    std::thread::spawn(move || {
        let _ = std::io::copy(&mut c2s_read, &mut c2s_write);
        let _ = c2s_write.shutdown(Shutdown::Write);
    });

    // Server → client: frame-aware so the cut lands exactly on a frame
    // boundary.
    let mut from_server = server.try_clone()?;
    let mut to_client = client.try_clone()?;
    let mut forwarded = 0usize;
    while forwarded < cut_after_frames {
        let mut prefix = [0u8; 4];
        if from_server.read_exact(&mut prefix).is_err() {
            break; // upstream closed first — nothing left to cut
        }
        let len = u32::from_be_bytes(prefix) as usize;
        let mut payload = vec![0u8; len];
        from_server.read_exact(&mut payload)?;
        to_client.write_all(&prefix)?;
        to_client.write_all(&payload)?;
        to_client.flush()?;
        forwarded += 1;
    }
    let _ = client.shutdown(Shutdown::Both);
    let _ = server.shutdown(Shutdown::Both);
    Ok(())
}

/// Relays a connection pair with the client→server direction throttled
/// to one byte per `byte_delay` — the frames still arrive intact, just
/// adversarially slowly. Server→client flows verbatim on its own
/// thread.
fn pump_slow_loris(
    client: TcpStream,
    server: TcpStream,
    byte_delay: Duration,
) -> std::io::Result<()> {
    let mut s2c_read = server.try_clone()?;
    let mut s2c_write = client.try_clone()?;
    std::thread::spawn(move || {
        let _ = std::io::copy(&mut s2c_read, &mut s2c_write);
        let _ = s2c_write.shutdown(Shutdown::Write);
    });

    let mut from_client = client.try_clone()?;
    let mut to_server = server.try_clone()?;
    let mut byte = [0u8; 1];
    loop {
        match from_client.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                std::thread::sleep(byte_delay);
                if to_server.write_all(&byte).is_err() || to_server.flush().is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    let _ = client.shutdown(Shutdown::Both);
    let _ = server.shutdown(Shutdown::Both);
    Ok(())
}

/// Relays `frames` client→server frames intact, then half-closes the
/// server-facing socket (the server reads EOF) while continuing to
/// relay server→client bytes until the server itself closes.
fn pump_half_close(client: TcpStream, server: TcpStream, frames: usize) -> std::io::Result<()> {
    let mut from_client = client.try_clone()?;
    let mut to_server = server.try_clone()?;
    let mut forwarded = 0usize;
    while forwarded < frames {
        let mut prefix = [0u8; 4];
        if from_client.read_exact(&mut prefix).is_err() {
            break; // the client sent fewer frames than the budget
        }
        let len = u32::from_be_bytes(prefix) as usize;
        let mut payload = vec![0u8; len];
        from_client.read_exact(&mut payload)?;
        to_server.write_all(&prefix)?;
        to_server.write_all(&payload)?;
        to_server.flush()?;
        forwarded += 1;
    }
    // Half-close: the server sees EOF on its read side but its write
    // side — and the relay back to the client — stays open.
    let _ = to_server.shutdown(Shutdown::Write);
    let mut from_server = server.try_clone()?;
    let mut to_client = client.try_clone()?;
    let _ = std::io::copy(&mut from_server, &mut to_client);
    let _ = client.shutdown(Shutdown::Both);
    let _ = server.shutdown(Shutdown::Both);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{read_frame, write_frame, WireError};
    use aceso_util::json::Value;

    /// An echo "daemon" that reads frames and answers each with three
    /// reply frames, so tests can count exactly where the cut lands.
    fn echo_server(replies_per_frame: usize) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut stream) = conn else { continue };
                while let Ok(v) = read_frame(&mut stream) {
                    for _ in 0..replies_per_frame {
                        if write_frame(&mut stream, &v).is_err() {
                            return;
                        }
                    }
                }
            }
        });
        addr
    }

    #[test]
    fn cuts_exactly_at_the_requested_frame_boundary() {
        let upstream = echo_server(3);
        let proxy = FaultProxy::start(&upstream, 2).expect("proxy starts");
        let mut stream = TcpStream::connect(proxy.addr()).expect("connect");
        write_frame(&mut stream, &Value::UInt(7)).expect("request goes through");
        // Exactly two of the three replies arrive intact…
        for _ in 0..2 {
            assert_eq!(read_frame(&mut stream).unwrap().as_u64().unwrap(), 7);
        }
        // …then the connection is severed at the boundary: a clean
        // close, never a torn frame.
        assert!(matches!(
            read_frame(&mut stream),
            Err(WireError::Closed | WireError::Io(_))
        ));
    }

    #[test]
    fn zero_frame_budget_cuts_before_any_response() {
        let upstream = echo_server(1);
        let proxy = FaultProxy::start(&upstream, 0).expect("proxy starts");
        let mut stream = TcpStream::connect(proxy.addr()).expect("connect");
        let _ = write_frame(&mut stream, &Value::UInt(1));
        assert!(read_frame(&mut stream).is_err(), "no frame may arrive");
    }

    /// Slow loris still delivers intact frames — just slowly. The
    /// timeout consequences are asserted against the real daemon in
    /// `tests/serve.rs`; here the proxy itself must not corrupt frames.
    #[test]
    fn slow_loris_delivers_intact_frames_byte_by_byte() {
        let upstream = echo_server(1);
        let proxy = FaultProxy::start_with(
            &upstream,
            FaultMode::SlowLoris {
                byte_delay: Duration::from_millis(1),
            },
        )
        .expect("proxy starts");
        let mut stream = TcpStream::connect(proxy.addr()).expect("connect");
        write_frame(&mut stream, &Value::UInt(42)).expect("request trickles through");
        assert_eq!(read_frame(&mut stream).unwrap().as_u64().unwrap(), 42);
    }

    /// Half-close after one frame: the server reads EOF, but the reply
    /// to the admitted frame still flows back; a second client frame
    /// never reaches the server.
    #[test]
    fn half_close_keeps_the_response_path_open() {
        let upstream = echo_server(1);
        let proxy =
            FaultProxy::start_with(&upstream, FaultMode::HalfCloseAfter(1)).expect("proxy starts");
        let mut stream = TcpStream::connect(proxy.addr()).expect("connect");
        write_frame(&mut stream, &Value::UInt(9)).expect("first frame forwarded");
        // The second frame is swallowed by the half-close, not an error
        // for the client's write side.
        let _ = write_frame(&mut stream, &Value::UInt(10));
        assert_eq!(
            read_frame(&mut stream).unwrap().as_u64().unwrap(),
            9,
            "the admitted frame's reply survives the half-close"
        );
        // After the echo server closes (EOF on its reads), the stream ends.
        assert!(matches!(
            read_frame(&mut stream),
            Err(WireError::Closed | WireError::Io(_))
        ));
    }
}
