//! Fault-injection proxy for crash-safety tests.
//!
//! [`FaultProxy`] sits between a serve client and the daemon and cuts
//! the connection at a chosen **frame boundary**: it forwards the
//! client→server byte stream verbatim, parses the server→client stream
//! with the real wire framing (4-byte big-endian length prefixes), and
//! after forwarding the configured number of frames severs both
//! directions at once. The client observes exactly what a daemon crash
//! or network partition mid-response looks like — a clean cut between
//! frames, never a torn one — which is the scenario the checkpoint
//! spool and [`crate::client::submit_with_retries`] exist to survive
//! (`tests/serve.rs` drives the full kill → retry → resume →
//! bit-identical-result loop through this proxy).
//!
//! The proxy is deliberately minimal test infrastructure: one
//! connection at a time, threads detach, and the listener lives until
//! the process exits. It is compiled into the library (not
//! `#[cfg(test)]`) so integration tests and external harnesses can use
//! it, but nothing in the serve path depends on it.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};

/// A TCP proxy that severs the connection after forwarding a fixed
/// number of server→client frames.
pub struct FaultProxy {
    addr: SocketAddr,
}

impl FaultProxy {
    /// Starts a proxy on an ephemeral local port, forwarding every
    /// accepted connection to `upstream` and cutting it after
    /// `cut_after_frames` server→client frames have been relayed.
    /// `cut_after_frames` of 0 severs before the first response frame —
    /// the request may still have been delivered and run to completion
    /// server-side, exactly like a crash right after submission.
    pub fn start(upstream: &str, cut_after_frames: usize) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let upstream = upstream.to_string();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(client) = conn else { continue };
                let Ok(server) = TcpStream::connect(&upstream) else {
                    // Upstream gone (daemon killed): drop the client
                    // immediately, which reads as connection-refused-ish.
                    continue;
                };
                let _ = pump(client, server, cut_after_frames);
            }
        });
        Ok(Self { addr })
    }

    /// The proxy's listen address — point the client here.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }
}

/// Relays one connection pair until the frame budget is exhausted, then
/// severs both sockets in both directions.
fn pump(client: TcpStream, server: TcpStream, cut_after_frames: usize) -> std::io::Result<()> {
    // Client → server: a verbatim byte pump on its own thread; it dies
    // when either socket is shut down below.
    let mut c2s_read = client.try_clone()?;
    let mut c2s_write = server.try_clone()?;
    std::thread::spawn(move || {
        let _ = std::io::copy(&mut c2s_read, &mut c2s_write);
        let _ = c2s_write.shutdown(Shutdown::Write);
    });

    // Server → client: frame-aware so the cut lands exactly on a frame
    // boundary.
    let mut from_server = server.try_clone()?;
    let mut to_client = client.try_clone()?;
    let mut forwarded = 0usize;
    while forwarded < cut_after_frames {
        let mut prefix = [0u8; 4];
        if from_server.read_exact(&mut prefix).is_err() {
            break; // upstream closed first — nothing left to cut
        }
        let len = u32::from_be_bytes(prefix) as usize;
        let mut payload = vec![0u8; len];
        from_server.read_exact(&mut payload)?;
        to_client.write_all(&prefix)?;
        to_client.write_all(&payload)?;
        to_client.flush()?;
        forwarded += 1;
    }
    let _ = client.shutdown(Shutdown::Both);
    let _ = server.shutdown(Shutdown::Both);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{read_frame, write_frame, WireError};
    use aceso_util::json::Value;

    /// An echo "daemon" that reads frames and answers each with three
    /// reply frames, so tests can count exactly where the cut lands.
    fn echo_server(replies_per_frame: usize) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut stream) = conn else { continue };
                while let Ok(v) = read_frame(&mut stream) {
                    for _ in 0..replies_per_frame {
                        if write_frame(&mut stream, &v).is_err() {
                            return;
                        }
                    }
                }
            }
        });
        addr
    }

    #[test]
    fn cuts_exactly_at_the_requested_frame_boundary() {
        let upstream = echo_server(3);
        let proxy = FaultProxy::start(&upstream, 2).expect("proxy starts");
        let mut stream = TcpStream::connect(proxy.addr()).expect("connect");
        write_frame(&mut stream, &Value::UInt(7)).expect("request goes through");
        // Exactly two of the three replies arrive intact…
        for _ in 0..2 {
            assert_eq!(read_frame(&mut stream).unwrap().as_u64().unwrap(), 7);
        }
        // …then the connection is severed at the boundary: a clean
        // close, never a torn frame.
        assert!(matches!(
            read_frame(&mut stream),
            Err(WireError::Closed | WireError::Io(_))
        ));
    }

    #[test]
    fn zero_frame_budget_cuts_before_any_response() {
        let upstream = echo_server(1);
        let proxy = FaultProxy::start(&upstream, 0).expect("proxy starts");
        let mut stream = TcpStream::connect(proxy.addr()).expect("connect");
        let _ = write_frame(&mut stream, &Value::UInt(1));
        assert!(read_frame(&mut stream).is_err(), "no frame may arrive");
    }
}
