//! The TCP search daemon.
//!
//! One [`Server`] owns a listener, a [`ProfileCache`], and a bounded
//! worker pool. Connections are handled on spawned threads; each
//! well-formed request runs an `AcesoSearch` and streams back status
//! frames, the structured event feed, and a final result frame (see
//! `docs/SERVER.md` for the wire contract).
//!
//! Determinism note: per-request responses carry the *same* metric
//! snapshot a direct `AcesoSearch::run_observed` produces — the server's
//! own counters (`serve_requests`, `serve_rejected`,
//! `profile_cache_hits`, `profile_cache_misses`) are recorded at server
//! level only, exposed via `stats` frames and the final drain report,
//! never mixed into a request's snapshot.

use crate::cache::ProfileCache;
use crate::proto::{error_frame, event_frame, status_frame, Request};
use crate::wire::{read_frame, write_frame, WireError, PROTOCOL_VERSION};
use aceso_cluster::ClusterSpec;
use aceso_core::AcesoSearch;
use aceso_model::zoo;
use aceso_obs::{Counter, ObsReport, Recorder};
use aceso_runtime::ExecutionPlan;
use aceso_util::json::{obj, FromJson, Value};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Daemon configuration knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Maximum concurrently running search requests; further requests
    /// are rejected with `rejected-busy` (no queueing). `0` rejects
    /// every search — useful for drills and tests.
    pub workers: usize,
    /// LRU byte budget of the profile cache.
    pub cache_bytes: u64,
    /// Reject requests whose `budget_secs` exceeds this bound.
    pub max_budget_secs: Option<u64>,
    /// Reject requests whose `gpus` exceeds this bound.
    pub max_gpus: Option<usize>,
    /// Reject requests whose `max_iterations` exceeds this bound — a
    /// request with no wall-clock budget occupies a worker slot for its
    /// whole iteration budget, so this caps how long one client can hold
    /// a slot.
    pub max_iterations: Option<usize>,
    /// Reject `deepnet-<N>l` models deeper than this bound. Deepnet is
    /// the one zoo family with a client-chosen size; the cap is checked
    /// *before* the operator graph is built, so an absurd depth cannot
    /// make the server allocate.
    pub max_deepnet_layers: Option<usize>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: 4,
            cache_bytes: 256 << 20,
            max_budget_secs: Some(600),
            max_gpus: Some(256),
            max_iterations: Some(10_000),
            max_deepnet_layers: Some(1024),
        }
    }
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    opts: ServeOptions,
    cache: ProfileCache,
    addr: SocketAddr,
    draining: AtomicBool,
    in_flight: Mutex<usize>,
    idle: Condvar,
    requests: AtomicU64,
    rejected: AtomicU64,
}

impl Shared {
    /// Snapshot of the server-level counters as an [`ObsReport`] (the
    /// serve quartet of `docs/OBSERVABILITY.md`, schema v3).
    fn report(&self) -> ObsReport {
        let rec = Recorder::new(true);
        rec.add(Counter::ProfileCacheHits, self.cache.hits());
        rec.add(Counter::ProfileCacheMisses, self.cache.misses());
        rec.add(
            Counter::ServeRequests,
            self.requests.load(Ordering::Relaxed),
        );
        rec.add(
            Counter::ServeRejected,
            self.rejected.load(Ordering::Relaxed),
        );
        let mut report = ObsReport::new();
        report.absorb(rec);
        report
    }

    fn reject(&self, stream: &mut TcpStream, code: &str, message: &str) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        let _ = write_frame(stream, &error_frame(code, message));
    }
}

/// Releases one worker slot on drop, whatever path the request took.
struct SlotGuard<'a>(&'a Shared);

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        let mut n = self.0.in_flight.lock().expect("slot lock");
        *n -= 1;
        self.0.idle.notify_all();
    }
}

/// The bound-but-not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds to `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind(addr: &str, opts: ServeOptions) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: ProfileCache::new(opts.cache_bytes),
            opts,
            addr,
            draining: AtomicBool::new(false),
            in_flight: Mutex::new(0),
            idle: Condvar::new(),
            requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });
        Ok(Self { listener, shared })
    }

    /// The bound address (read this after binding to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Runs the accept loop until a `shutdown` frame arrives, then
    /// drains in-flight requests and returns the server-level
    /// observability report (the serve counter quartet).
    pub fn run(self) -> ObsReport {
        for conn in self.listener.incoming() {
            if self.shared.draining.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || handle_connection(&shared, stream));
        }
        // Graceful drain: wait for every in-flight search to finish.
        let mut n = self.shared.in_flight.lock().expect("slot lock");
        while *n > 0 {
            n = self.shared.idle.wait(n).expect("slot lock");
        }
        drop(n);
        self.shared.report()
    }
}

/// Serves one connection: a sequence of frames until the peer closes.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(v) => v,
            Err(WireError::Closed) => return,
            Err(WireError::Oversize(n)) => {
                // The unread payload leaves the stream unframed; reject
                // and drop the connection.
                shared.reject(
                    &mut stream,
                    "oversize-frame",
                    &WireError::Oversize(n).to_string(),
                );
                return;
            }
            Err(WireError::BadJson(e)) => {
                // Framing stayed aligned (the payload was consumed), so
                // the connection can continue after the typed error.
                shared.reject(&mut stream, "bad-frame", &e);
                continue;
            }
            Err(WireError::Io(_)) => return,
        };
        match frame.get("type").and_then(|t| t.as_str().ok()) {
            Some("request") => handle_request(shared, &mut stream, &frame),
            Some("stats") => {
                let report = shared.report();
                let metrics = Value::parse(&report.metrics_json()).expect("own snapshot parses");
                let _ = write_frame(
                    &mut stream,
                    &obj([("type", Value::Str("stats".into())), ("metrics", metrics)]),
                );
            }
            Some("shutdown") => {
                shared.draining.store(true, Ordering::SeqCst);
                let _ = write_frame(&mut stream, &obj([("type", Value::Str("ok".into()))]));
                // Wake the blocking accept loop so it observes the flag.
                let _ = TcpStream::connect(shared.addr);
            }
            other => {
                shared.reject(
                    &mut stream,
                    "unknown-frame-type",
                    &format!("unknown frame type {other:?}"),
                );
            }
        }
    }
}

/// Layer count of a `deepnet-<N>l` model name, parsed without building
/// the graph (mirrors `zoo::by_name`'s vocabulary).
fn deepnet_layers(model: &str) -> Option<usize> {
    model
        .strip_prefix("deepnet-")?
        .strip_suffix('l')?
        .parse()
        .ok()
}

/// Validates, admits, runs, and streams one search request.
fn handle_request(shared: &Shared, stream: &mut TcpStream, frame: &Value) {
    match frame.get("protocol_version").and_then(|v| v.as_u64().ok()) {
        Some(PROTOCOL_VERSION) => {}
        got => {
            shared.reject(
                stream,
                "bad-protocol-version",
                &format!("server speaks protocol {PROTOCOL_VERSION}, request carried {got:?}"),
            );
            return;
        }
    }
    let req = match Request::from_json_value(frame) {
        Ok(r) => r,
        Err(e) => {
            shared.reject(stream, "bad-request", &e.to_string());
            return;
        }
    };
    if shared.draining.load(Ordering::SeqCst) {
        shared.reject(stream, "shutting-down", "server is draining");
        return;
    }
    if req.gpus == 0 {
        shared.reject(stream, "bad-request", "gpus must be at least 1");
        return;
    }
    // Resource caps guard the worker pool and the allocator: gpus and
    // iterations bound how long a request can occupy a slot, and the
    // deepnet depth cap runs before `zoo::by_name` builds the graph so a
    // hostile depth cannot make the server allocate billions of ops.
    if let Some(max) = shared.opts.max_gpus {
        if req.gpus > max {
            shared.reject(
                stream,
                "bad-request",
                &format!("gpus {} exceeds the server limit of {max}", req.gpus),
            );
            return;
        }
    }
    if let Some(max) = shared.opts.max_iterations {
        if req.max_iterations > max {
            shared.reject(
                stream,
                "bad-request",
                &format!(
                    "max_iterations {} exceeds the server limit of {max}",
                    req.max_iterations
                ),
            );
            return;
        }
    }
    if let (Some(max), Some(layers)) = (shared.opts.max_deepnet_layers, deepnet_layers(&req.model))
    {
        if layers > max {
            shared.reject(
                stream,
                "bad-request",
                &format!("deepnet depth {layers} exceeds the server limit of {max}"),
            );
            return;
        }
    }
    if let (Some(max), Some(b)) = (shared.opts.max_budget_secs, req.budget_secs) {
        if b > max {
            shared.reject(
                stream,
                "budget-too-large",
                &format!("budget_secs {b} exceeds the server limit of {max}"),
            );
            return;
        }
    }
    let Some(model) = zoo::by_name(&req.model) else {
        shared.reject(
            stream,
            "unknown-model",
            &format!("unknown model `{}`", req.model),
        );
        return;
    };
    // Backpressure: try-acquire a worker slot, never queue.
    let _slot = {
        let mut n = shared.in_flight.lock().expect("slot lock");
        if *n >= shared.opts.workers {
            drop(n);
            shared.reject(
                stream,
                "rejected-busy",
                &format!("{} requests already in flight", shared.opts.workers),
            );
            return;
        }
        *n += 1;
        SlotGuard(shared)
    };
    shared.requests.fetch_add(1, Ordering::Relaxed);

    let _ = write_frame(stream, &status_frame("profiling", None));
    let cluster = ClusterSpec::v100_gpus(req.gpus);
    let profile_start = std::time::Instant::now();
    let (db, hit) = shared.cache.get_or_build(&model, &cluster);
    let profile_micros = profile_start.elapsed().as_micros() as u64;
    let cache_tag = if hit { "hit" } else { "miss" };
    let _ = write_frame(stream, &status_frame("searching", Some(cache_tag)));

    let (result, report) =
        match AcesoSearch::new(&model, &cluster, &db, req.search_options()).run_observed(true) {
            Ok(r) => r,
            Err(e) => {
                let _ = write_frame(stream, &error_frame("search-failed", &e.to_string()));
                return;
            }
        };

    // The event feed streams after the per-thread recorders merged —
    // that ordering is what makes it deterministic (docs/SERVER.md).
    for (seq, event) in report.events().iter().enumerate() {
        if write_frame(stream, &event_frame(seq, event.to_json_value())).is_err() {
            return;
        }
    }

    let plan = if req.plan && !result.best_oom {
        ExecutionPlan::build(&model, &cluster, &result.best_config)
            .ok()
            .map(|p| Value::parse(&p.to_json()).expect("own plan parses"))
    } else {
        None
    };
    let metrics = Value::parse(&report.metrics_json()).expect("own snapshot parses");
    let final_frame = obj([
        ("type", Value::Str("result".into())),
        ("protocol_version", Value::UInt(PROTOCOL_VERSION)),
        ("cache", Value::Str(cache_tag.into())),
        // Wall-clock cost of the profiling phase — the one nondeterministic
        // result field; a cache hit collapses it from a full build to a
        // map probe (the integration tests assert exactly that).
        ("profile_micros", Value::UInt(profile_micros)),
        ("model", Value::Str(req.model.clone())),
        ("best_time", Value::Float(result.best_time)),
        ("best_time_bits", Value::UInt(result.best_time.to_bits())),
        (
            "best_fingerprint",
            Value::UInt(result.best_config.semantic_hash()),
        ),
        ("best_oom", Value::Bool(result.best_oom)),
        ("explored", Value::UInt(result.explored as u64)),
        (
            "stages",
            Value::UInt(result.best_config.num_stages() as u64),
        ),
        (
            "best_config",
            aceso_util::json::ToJson::to_json_value(&result.best_config),
        ),
        ("metrics", metrics),
        ("plan", plan.unwrap_or(Value::Null)),
    ]);
    let _ = write_frame(stream, &final_frame);
}
