//! The TCP search daemon.
//!
//! One [`Server`] owns a listener, a [`ProfileCache`], and a bounded
//! worker pool. Connections are handled on spawned threads; each
//! well-formed request runs an `AcesoSearch` and streams back status
//! frames, the structured event feed, and a final result frame (see
//! `docs/SERVER.md` for the wire contract).
//!
//! Determinism note: per-request responses carry the *same* metric
//! snapshot a direct `AcesoSearch::run_observed` produces — the server's
//! own counters (`serve_requests`, `serve_rejected`,
//! `profile_cache_hits`, `profile_cache_misses`) are recorded at server
//! level only, exposed via `stats` frames and the final drain report,
//! never mixed into a request's snapshot.

use crate::cache::ProfileCache;
use crate::proto::{error_frame, event_frame, status_frame, Request};
use crate::wire::{read_frame, write_frame, WireError, PROTOCOL_VERSION};
use aceso_cluster::ClusterSpec;
use aceso_core::{AcesoSearch, ResumeError, SearchCheckpoint, SearchResult, SearchStep};
use aceso_model::zoo;
use aceso_obs::{Counter, Event, Metrics, ObsReport, Recorder};
use aceso_runtime::ExecutionPlan;
use aceso_util::fnv1a;
use aceso_util::fsio::{self, Fs, RealFs};
use aceso_util::json::{obj, FromJson, Value};
use aceso_util::retention::SweepOutcome;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Daemon configuration knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Maximum concurrently running search requests; further requests
    /// are rejected with `rejected-busy` (no queueing). `0` rejects
    /// every search — useful for drills and tests.
    pub workers: usize,
    /// LRU byte budget of the profile cache.
    pub cache_bytes: u64,
    /// Reject requests whose `budget_secs` exceeds this bound.
    pub max_budget_secs: Option<u64>,
    /// Reject requests whose `gpus` exceeds this bound.
    pub max_gpus: Option<usize>,
    /// Reject requests whose `max_iterations` exceeds this bound — a
    /// request with no wall-clock budget occupies a worker slot for its
    /// whole iteration budget, so this caps how long one client can hold
    /// a slot.
    pub max_iterations: Option<usize>,
    /// Reject `deepnet-<N>l` models deeper than this bound. Deepnet is
    /// the one zoo family with a client-chosen size; the cap is checked
    /// *before* the operator graph is built, so an absurd depth cannot
    /// make the server allocate.
    pub max_deepnet_layers: Option<usize>,
    /// Read/write deadline on accepted connections. A peer that stalls
    /// mid-frame (or connects and sends nothing) is cut loose with a
    /// typed `timeout` error instead of pinning a connection thread
    /// forever. `None` disables the deadlines. The deadline applies per
    /// socket operation, so a long search between frames never trips it.
    pub io_timeout: Option<Duration>,
    /// Directory for crash-recovery checkpoint spools. When set,
    /// searches submitted with a `request_id` write a [`SearchCheckpoint`]
    /// here every [`ServeOptions::checkpoint_every`] iterations;
    /// resubmitting the same id resumes from the last spooled state —
    /// across dropped connections *and* daemon restarts. `None` (the
    /// default) disables spooling entirely.
    pub spool_dir: Option<PathBuf>,
    /// Per-stage iteration interval between checkpoint spools; only
    /// meaningful with [`ServeOptions::spool_dir`]. Clamped to ≥ 1.
    pub checkpoint_every: usize,
    /// Age (seconds) past which an abandoned spool file is pruned. The
    /// sweep runs once at daemon start and then periodically while the
    /// daemon is up. Spools exist precisely so clients can come back
    /// later, so the TTL should comfortably exceed any plausible retry
    /// horizon. `None` (the default) never prunes.
    pub spool_ttl_secs: Option<u64>,
    /// Serve connections through the readiness-driven reactor
    /// (`crates/serve/src/reactor.rs`, `--reactor`) instead of a thread
    /// per connection. The reactor holds thousands of idle clients on
    /// one thread, supports request pipelining (responses tagged by
    /// `request_id`), and dispatches round-robin into the bounded worker
    /// pool; see the reactor section of `docs/SERVER.md`.
    pub reactor: bool,
    /// Reactor-only cap on simultaneously open connections; a connection
    /// accepted past the cap receives a typed `connection-limit` error
    /// and is closed. `0` (the default) means unlimited. The blocking
    /// front-end ignores this knob — its natural cap is thread count.
    pub max_connections: usize,
    /// Directory of the persistent profile store — the disk tier under
    /// the [`ProfileCache`]. When set, cache misses consult the store
    /// before building and fresh builds are written back, so profile
    /// databases survive daemon restarts (see `docs/STORE.md`). `None`
    /// (the default) keeps the cache memory-only.
    pub store_dir: Option<PathBuf>,
    /// LRU byte budget of the on-disk store; least-recently-used
    /// entries are evicted past it. Only meaningful with
    /// [`ServeOptions::store_dir`].
    pub store_budget_bytes: u64,
    /// Filesystem all the daemon's durable writes go through (store
    /// entries, checkpoint spools, retention sweeps). Production keeps
    /// the default [`RealFs`] — byte-identical to direct `std::fs`
    /// calls; the chaos engine substitutes a seeded
    /// [`aceso_util::fsio::ChaosFs`] (INV-CHAOS-REALFS,
    /// `docs/RELIABILITY.md`).
    pub fs: Arc<dyn Fs>,
    /// Mutation-gate hook (`aceso chaos run --mutate store-direct-write`):
    /// makes the daemon's store skip its temp+rename discipline
    /// ([`aceso_store::Store::set_direct_writes`]), deliberately
    /// breaking the store's atomic-publish invariant (`docs/STORE.md`)
    /// so the chaos oracles can prove they catch torn entries. Never
    /// set in production paths.
    pub store_direct_writes: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: 4,
            cache_bytes: 256 << 20,
            max_budget_secs: Some(600),
            max_gpus: Some(256),
            max_iterations: Some(10_000),
            max_deepnet_layers: Some(1024),
            io_timeout: Some(Duration::from_secs(30)),
            spool_dir: None,
            checkpoint_every: 8,
            spool_ttl_secs: None,
            reactor: false,
            max_connections: 0,
            store_dir: None,
            store_budget_bytes: 256 << 20,
            fs: Arc::new(RealFs),
            store_direct_writes: false,
        }
    }
}

/// State shared by the accept loop (or reactor) and every worker.
pub(crate) struct Shared {
    pub(crate) opts: ServeOptions,
    pub(crate) cache: ProfileCache,
    pub(crate) addr: SocketAddr,
    pub(crate) draining: AtomicBool,
    pub(crate) in_flight: Mutex<usize>,
    pub(crate) idle: Condvar,
    pub(crate) requests: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) checkpoints_written: AtomicU64,
    pub(crate) searches_resumed: AtomicU64,
    pub(crate) client_retries: AtomicU64,
    /// Open-connection gauge maintained by the reactor (accepted minus
    /// closed); stays zero under the blocking front-end.
    pub(crate) connections_open: AtomicU64,
    /// Requests that arrived on a connection already carrying queued or
    /// in-flight work (reactor pipelining).
    pub(crate) pipelined_requests: AtomicU64,
    /// Round-robin dispatches that preferred a connection with nothing
    /// in flight while another connection's pipelined request waited.
    pub(crate) fairness_deferrals: AtomicU64,
    /// Server-level resume/restart events (`search_resumed`,
    /// `search_restarted`). Like the serve counters they never enter a
    /// request's own event stream — that stream must stay bit-identical
    /// to an uninterrupted direct run — so they surface only through the
    /// drain report.
    pub(crate) server_events: Mutex<Vec<Event>>,
    /// Retention-sweep removals that failed (spool TTL sweeps; the
    /// store tier's eviction errors are drained from the cache at
    /// snapshot time). Feeds `retention_sweep_errors` (INV-CHAOS-SWEEP).
    pub(crate) sweep_errors: AtomicU64,
}

impl Shared {
    /// Snapshot of the server-level counters and resume/restart/degrade
    /// events as an [`ObsReport`] (the serve counter group of
    /// `docs/OBSERVABILITY.md`, schema v8).
    pub(crate) fn report(&self) -> ObsReport {
        // Fold the store tier's eviction-sweep errors into the daemon
        // total (with a typed event) before snapshotting, so the counter
        // is monotone across snapshots.
        let store_sweep_errors = self.cache.take_store_sweep_errors();
        if store_sweep_errors > 0 {
            self.note_sweep_errors(
                &self
                    .opts
                    .store_dir
                    .as_deref()
                    .map(|d| d.display().to_string())
                    .unwrap_or_default(),
                store_sweep_errors,
            );
        }
        let events = {
            // Absorb store degradations queued since the last snapshot
            // into the durable server-event log first, so every later
            // snapshot still carries them.
            let mut events = self.server_events.lock().expect("event lock");
            for (file, reason) in self.cache.drain_degraded() {
                events.push(Event::StoreDegraded { file, reason });
            }
            events.clone()
        };
        let rec = Recorder::from_parts(events, Metrics::default());
        rec.add(Counter::ProfileCacheHits, self.cache.hits());
        rec.add(Counter::ProfileCacheMisses, self.cache.misses());
        rec.add(
            Counter::ServeRequests,
            self.requests.load(Ordering::Relaxed),
        );
        rec.add(
            Counter::ServeRejected,
            self.rejected.load(Ordering::Relaxed),
        );
        rec.add(
            Counter::CheckpointsWritten,
            self.checkpoints_written.load(Ordering::Relaxed),
        );
        rec.add(
            Counter::SearchResumed,
            self.searches_resumed.load(Ordering::Relaxed),
        );
        rec.add(
            Counter::ClientRetries,
            self.client_retries.load(Ordering::Relaxed),
        );
        rec.add(
            Counter::ServeConnectionsOpen,
            self.connections_open.load(Ordering::Relaxed),
        );
        rec.add(
            Counter::ServePipelinedRequests,
            self.pipelined_requests.load(Ordering::Relaxed),
        );
        rec.add(
            Counter::ServeFairnessDeferrals,
            self.fairness_deferrals.load(Ordering::Relaxed),
        );
        rec.add(Counter::StoreHits, self.cache.store_hits());
        rec.add(Counter::StoreMisses, self.cache.store_misses());
        rec.add(Counter::StoreWrites, self.cache.store_writes());
        rec.add(Counter::StoreEvictions, self.cache.store_evictions());
        rec.add(Counter::StoreRejected, self.cache.store_rejected());
        rec.add(
            Counter::RetentionSweepErrors,
            self.sweep_errors.load(Ordering::Relaxed),
        );
        let mut report = ObsReport::new();
        report.absorb(rec);
        report
    }

    fn reject(&self, stream: &mut TcpStream, code: &str, message: &str) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        let _ = write_frame(stream, &error_frame(code, message));
    }

    /// Records `errors` failed removals from a retention sweep over
    /// `dir`: counts them into `retention_sweep_errors` and surfaces a
    /// typed `sweep_degraded` event instead of dropping the failures on
    /// the floor (INV-CHAOS-SWEEP).
    pub(crate) fn note_sweep_errors(&self, dir: &str, errors: u64) {
        if errors == 0 {
            return;
        }
        self.sweep_errors.fetch_add(errors, Ordering::Relaxed);
        self.server_events
            .lock()
            .expect("event lock")
            .push(Event::SweepDegraded {
                dir: dir.to_string(),
                errors,
            });
    }

    /// Records that a spooled checkpoint could not be used and the
    /// search restarted fresh — graceful degradation, never an error.
    pub(crate) fn record_restart(&self, request_id: &str, reason: String) {
        self.server_events
            .lock()
            .expect("event lock")
            .push(Event::SearchRestarted {
                request_id: request_id.to_string(),
                reason,
            });
    }
}

/// Releases one worker slot on drop, whatever path the request took.
struct SlotGuard<'a>(&'a Shared);

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        let mut n = self.0.in_flight.lock().expect("slot lock");
        *n -= 1;
        self.0.idle.notify_all();
    }
}

/// The bound-but-not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds to `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind(addr: &str, opts: ServeOptions) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let cache = match &opts.store_dir {
            Some(dir) => {
                let mut store = aceso_store::Store::open_with(
                    dir,
                    opts.store_budget_bytes,
                    Arc::clone(&opts.fs),
                )?;
                if opts.store_direct_writes {
                    store.set_direct_writes(true);
                }
                ProfileCache::with_store(opts.cache_bytes, store)
            }
            None => ProfileCache::new(opts.cache_bytes),
        };
        let shared = Arc::new(Shared {
            cache,
            opts,
            addr,
            draining: AtomicBool::new(false),
            in_flight: Mutex::new(0),
            idle: Condvar::new(),
            requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            checkpoints_written: AtomicU64::new(0),
            searches_resumed: AtomicU64::new(0),
            client_retries: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            pipelined_requests: AtomicU64::new(0),
            fairness_deferrals: AtomicU64::new(0),
            sweep_errors: AtomicU64::new(0),
            server_events: Mutex::new(Vec::new()),
        });
        Ok(Self { listener, shared })
    }

    /// The bound address (read this after binding to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Runs the accept loop until a `shutdown` frame arrives, then
    /// drains in-flight requests and returns the server-level
    /// observability report (the serve counter quartet).
    ///
    /// With [`ServeOptions::reactor`] set, connections are served by the
    /// readiness-driven reactor ([`crate::reactor`]) instead of a thread
    /// per connection; the drain-and-report contract is identical.
    pub fn run(self) -> ObsReport {
        if self.shared.opts.reactor {
            // The reactor sweeps spools from its own event loop (no
            // dedicated thread): one sweep at startup, then one per TTL.
            return crate::reactor::run(&self.listener, &self.shared);
        }
        let sweeper = self.spawn_spool_sweeper();
        for conn in self.listener.incoming() {
            if self.shared.draining.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || handle_connection(&shared, stream));
        }
        // Release any request coalesced on a profile build before
        // blocking on the drain: a stranded cache waiter would hold its
        // worker slot and the drain below would never finish.
        self.shared.cache.shutdown();
        // Graceful drain: wait for every in-flight search to finish.
        let mut n = self.shared.in_flight.lock().expect("slot lock");
        while *n > 0 {
            n = self.shared.idle.wait(n).expect("slot lock");
        }
        drop(n);
        if let Some(handle) = sweeper {
            let _ = handle.join();
        }
        self.shared.report()
    }

    /// Starts the background spool sweeper when both a spool directory
    /// and a TTL are configured: one sweep immediately (reclaiming spools
    /// abandoned across daemon restarts), then one per TTL interval,
    /// polling the drain flag often enough to exit promptly.
    fn spawn_spool_sweeper(&self) -> Option<std::thread::JoinHandle<()>> {
        let ttl = Duration::from_secs(self.shared.opts.spool_ttl_secs.filter(|t| *t > 0)?);
        let dir = self.shared.opts.spool_dir.clone()?;
        let shared = Arc::clone(&self.shared);
        Some(std::thread::spawn(move || {
            let sweep = |shared: &Shared| {
                let outcome = sweep_spools_with(shared.opts.fs.as_ref(), &dir, ttl);
                shared.note_sweep_errors(&dir.display().to_string(), outcome.errors as u64);
            };
            sweep(&shared);
            let mut since_sweep = Duration::ZERO;
            loop {
                let tick = ttl.min(Duration::from_millis(200));
                std::thread::sleep(tick);
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                since_sweep += tick;
                if since_sweep >= ttl {
                    sweep(&shared);
                    since_sweep = Duration::ZERO;
                }
            }
        }))
    }
}

/// Removes every spool artifact in `dir` (`.ckpt` checkpoints and
/// `.ckpt.tmp` write leftovers) whose last modification is older than
/// `ttl`, returning how many files were pruned. Built on the shared
/// retention policies in [`aceso_util::retention`] — the same scan +
/// TTL machinery the profile store's eviction uses — and best-effort
/// throughout: the sweep is hygiene, never load-bearing.
pub fn sweep_spools(dir: &Path, ttl: Duration) -> usize {
    sweep_spools_with(&RealFs, dir, ttl).removed
}

/// [`sweep_spools`] against an explicit filesystem handle, reporting
/// failed removals alongside successful ones so callers can surface
/// them as `retention_sweep_errors` + `sweep_degraded` instead of
/// silently swallowing the fault (INV-CHAOS-SWEEP).
pub fn sweep_spools_with(fs: &dyn Fs, dir: &Path, ttl: Duration) -> SweepOutcome {
    let files = aceso_util::retention::scan_dir_with(fs, dir, &[".ckpt", ".ckpt.tmp"]);
    let expired = aceso_util::retention::expired(&files, ttl, std::time::SystemTime::now());
    aceso_util::retention::remove_all_with(fs, &expired)
}

/// True when an i/o error is a socket deadline expiring. Both kinds
/// appear in the wild: Unix reports `WouldBlock`, Windows `TimedOut`.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Serves one connection: a sequence of frames until the peer closes.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    if let Some(deadline) = shared.opts.io_timeout {
        // Best-effort: a socket that cannot take a deadline still works,
        // it just falls back to the pre-deadline behaviour.
        let _ = stream.set_read_timeout(Some(deadline));
        let _ = stream.set_write_timeout(Some(deadline));
    }
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(v) => v,
            Err(WireError::Closed) => return,
            Err(WireError::Oversize(n)) => {
                // The unread payload leaves the stream unframed; reject
                // and drop the connection.
                shared.reject(
                    &mut stream,
                    "oversize-frame",
                    &WireError::Oversize(n).to_string(),
                );
                return;
            }
            Err(WireError::BadJson(e)) => {
                // Framing stayed aligned (the payload was consumed), so
                // the connection can continue after the typed error.
                shared.reject(&mut stream, "bad-frame", &e);
                continue;
            }
            Err(WireError::Io(e)) if is_timeout(&e) => {
                // The peer stalled past --io-timeout (mid-frame or just
                // idle). Tell it why, then drop the connection: a stalled
                // read may have consumed part of a frame, so the stream
                // is no longer trustworthy.
                shared.reject(
                    &mut stream,
                    "timeout",
                    "connection idled past the server's i/o deadline",
                );
                return;
            }
            Err(WireError::Io(_)) => return,
        };
        match frame.get("type").and_then(|t| t.as_str().ok()) {
            Some("request") => handle_request(shared, &mut stream, &frame),
            Some("stats") => {
                let report = shared.report();
                let metrics = Value::parse(&report.metrics_json()).expect("own snapshot parses");
                let _ = write_frame(
                    &mut stream,
                    &obj([("type", Value::Str("stats".into())), ("metrics", metrics)]),
                );
            }
            Some("shutdown") => {
                shared.draining.store(true, Ordering::SeqCst);
                let _ = write_frame(&mut stream, &obj([("type", Value::Str("ok".into()))]));
                // Wake the blocking accept loop so it observes the flag.
                let _ = TcpStream::connect(shared.addr);
            }
            other => {
                shared.reject(
                    &mut stream,
                    "unknown-frame-type",
                    &format!("unknown frame type {other:?}"),
                );
            }
        }
    }
}

/// Layer count of a `deepnet-<N>l` model name, parsed without building
/// the graph (mirrors `zoo::by_name`'s vocabulary).
fn deepnet_layers(model: &str) -> Option<usize> {
    model
        .strip_prefix("deepnet-")?
        .strip_suffix('l')?
        .parse()
        .ok()
}

/// Where a request's response frames go: straight down the socket in
/// blocking mode ([`StreamSink`]), or into the reactor's tagged
/// outbound queue. The abstraction keeps [`execute_request`] — and
/// therefore the bytes of every response frame — identical across both
/// front-ends.
pub(crate) trait FrameSink {
    /// Sends one frame. An error means the client is unreachable and
    /// the request should stop streaming.
    fn send(&mut self, frame: &Value) -> Result<(), WireError>;

    /// Sends the final result frame and, once it has actually reached
    /// the peer, removes the request's spool file. The spool outlives
    /// the request until the client has the result in hand, so a
    /// connection lost at the last moment still resumes on resubmit.
    fn send_final(&mut self, frame: &Value, spool: Option<&Path>) -> Result<(), WireError>;
}

/// Blocking sink: frames go straight down the connection's socket.
/// Carries the daemon's filesystem handle so the final-frame spool
/// removal goes through the same injectable [`Fs`] as every other
/// spool side-effect.
struct StreamSink<'a>(&'a mut TcpStream, &'a dyn Fs);

impl FrameSink for StreamSink<'_> {
    fn send(&mut self, frame: &Value) -> Result<(), WireError> {
        write_frame(self.0, frame)
    }

    fn send_final(&mut self, frame: &Value, spool: Option<&Path>) -> Result<(), WireError> {
        write_frame(self.0, frame)?;
        // The write reached the kernel; the saved work is now redundant.
        if let Some(path) = spool {
            let _ = self.1.remove_file(path);
        }
        Ok(())
    }
}

/// The cheap admission checks every request passes before it is allowed
/// anywhere near a worker: protocol version, frame shape, drain state,
/// and the resource caps. Returns the parsed request or a typed
/// `(code, message)` rejection. Deliberately excludes `zoo::by_name` —
/// the one validation that builds a graph — so the reactor can run this
/// on its event-loop thread without stalling other connections
/// (INV-NONBLOCK, `docs/SERVER.md`).
pub(crate) fn validate_request(
    shared: &Shared,
    frame: &Value,
) -> Result<Request, (&'static str, String)> {
    match frame.get("protocol_version").and_then(|v| v.as_u64().ok()) {
        Some(PROTOCOL_VERSION) => {}
        got => {
            return Err((
                "bad-protocol-version",
                format!("server speaks protocol {PROTOCOL_VERSION}, request carried {got:?}"),
            ));
        }
    }
    let req = Request::from_json_value(frame).map_err(|e| ("bad-request", e.to_string()))?;
    if shared.draining.load(Ordering::SeqCst) {
        return Err(("shutting-down", "server is draining".to_string()));
    }
    if req.gpus == 0 {
        return Err(("bad-request", "gpus must be at least 1".to_string()));
    }
    // Resource caps guard the worker pool and the allocator: gpus and
    // iterations bound how long a request can occupy a slot, and the
    // deepnet depth cap runs before `zoo::by_name` builds the graph so a
    // hostile depth cannot make the server allocate billions of ops.
    if let Some(max) = shared.opts.max_gpus {
        if req.gpus > max {
            return Err((
                "bad-request",
                format!("gpus {} exceeds the server limit of {max}", req.gpus),
            ));
        }
    }
    if let Some(max) = shared.opts.max_iterations {
        if req.max_iterations > max {
            return Err((
                "bad-request",
                format!(
                    "max_iterations {} exceeds the server limit of {max}",
                    req.max_iterations
                ),
            ));
        }
    }
    if let (Some(max), Some(layers)) = (shared.opts.max_deepnet_layers, deepnet_layers(&req.model))
    {
        if layers > max {
            return Err((
                "bad-request",
                format!("deepnet depth {layers} exceeds the server limit of {max}"),
            ));
        }
    }
    if let (Some(max), Some(b)) = (shared.opts.max_budget_secs, req.budget_secs) {
        if b > max {
            return Err((
                "budget-too-large",
                format!("budget_secs {b} exceeds the server limit of {max}"),
            ));
        }
    }
    Ok(req)
}

/// Validates, admits, runs, and streams one search request (blocking
/// front-end).
fn handle_request(shared: &Shared, stream: &mut TcpStream, frame: &Value) {
    let req = match validate_request(shared, frame) {
        Ok(r) => r,
        Err((code, message)) => {
            shared.reject(stream, code, &message);
            return;
        }
    };
    let Some(model) = zoo::by_name(&req.model) else {
        shared.reject(
            stream,
            "unknown-model",
            &format!("unknown model `{}`", req.model),
        );
        return;
    };
    // Backpressure: try-acquire a worker slot, never queue.
    let _slot = {
        let mut n = shared.in_flight.lock().expect("slot lock");
        if *n >= shared.opts.workers {
            drop(n);
            shared.reject(
                stream,
                "rejected-busy",
                &format!("{} requests already in flight", shared.opts.workers),
            );
            return;
        }
        *n += 1;
        SlotGuard(shared)
    };
    execute_request(
        shared,
        &req,
        &model,
        &mut StreamSink(stream, shared.opts.fs.as_ref()),
    );
}

/// Runs one admitted request and streams its response frames into
/// `sink`. Both front-ends funnel through here, which is what keeps a
/// reactor-served response bit-identical to a blocking one (and both
/// identical to a direct `run_observed` run): the frames are built
/// once, in one place, in one order.
pub(crate) fn execute_request(
    shared: &Shared,
    req: &Request,
    model: &aceso_model::ModelGraph,
    sink: &mut dyn FrameSink,
) {
    shared.requests.fetch_add(1, Ordering::Relaxed);

    let _ = sink.send(&status_frame("profiling", None));
    let cluster = ClusterSpec::v100_gpus(req.gpus);
    let profile_start = std::time::Instant::now();
    let (db, hit) = shared.cache.get_or_build(model, &cluster);
    let profile_micros = profile_start.elapsed().as_micros() as u64;
    let cache_tag = if hit { "hit" } else { "miss" };
    let _ = sink.send(&status_frame("searching", Some(cache_tag)));

    let search = AcesoSearch::new(model, &cluster, &db, req.search_options());
    let spool = match (&shared.opts.spool_dir, &req.request_id) {
        (Some(dir), Some(id)) if !id.is_empty() => Some(spool_path(dir, id)),
        _ => None,
    };
    let searched = match &spool {
        Some(path) => run_spooled(
            shared,
            &search,
            path,
            req.request_id.as_deref().unwrap_or(""),
        ),
        None => search.run_observed(true).map_err(|e| e.to_string()),
    };
    let (result, report) = match searched {
        Ok(r) => r,
        Err(msg) => {
            let _ = sink.send(&error_frame("search-failed", &msg));
            return;
        }
    };

    // The event feed streams after the per-thread recorders merged —
    // that ordering is what makes it deterministic (docs/SERVER.md).
    for (seq, event) in report.events().iter().enumerate() {
        if sink.send(&event_frame(seq, event.to_json_value())).is_err() {
            return;
        }
    }

    let plan = if req.plan && !result.best_oom {
        ExecutionPlan::build(model, &cluster, &result.best_config)
            .ok()
            .map(|p| Value::parse(&p.to_json()).expect("own plan parses"))
    } else {
        None
    };
    let metrics = Value::parse(&report.metrics_json()).expect("own snapshot parses");
    let final_frame = obj([
        ("type", Value::Str("result".into())),
        ("protocol_version", Value::UInt(PROTOCOL_VERSION)),
        ("cache", Value::Str(cache_tag.into())),
        // Wall-clock cost of the profiling phase — the one nondeterministic
        // result field; a cache hit collapses it from a full build to a
        // map probe (the integration tests assert exactly that).
        ("profile_micros", Value::UInt(profile_micros)),
        ("model", Value::Str(req.model.clone())),
        ("best_time", Value::Float(result.best_time)),
        ("best_time_bits", Value::UInt(result.best_time.to_bits())),
        (
            "best_fingerprint",
            Value::UInt(result.best_config.semantic_hash()),
        ),
        ("best_oom", Value::Bool(result.best_oom)),
        ("explored", Value::UInt(result.explored as u64)),
        (
            "stages",
            Value::UInt(result.best_config.num_stages() as u64),
        ),
        (
            "best_config",
            aceso_util::json::ToJson::to_json_value(&result.best_config),
        ),
        ("metrics", metrics),
        ("plan", plan.unwrap_or(Value::Null)),
    ]);
    let _ = sink.send_final(&final_frame, spool.as_deref());
}

/// Spool file for one request id: the id is sanitised for the
/// filesystem, and a hash of the *original* id is appended so two ids
/// that sanitise identically can never collide on one spool.
pub fn spool_path(dir: &Path, request_id: &str) -> PathBuf {
    let sanitised: String = request_id
        .chars()
        .take(64)
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect();
    dir.join(format!(
        "{sanitised}-{:016x}.ckpt",
        fnv1a(request_id.as_bytes())
    ))
}

/// Atomically replaces the spool file: write to a sibling temp path,
/// then rename over the target. A crash between the two leaves either
/// the previous complete checkpoint or the new one, never a torn file.
fn write_spool(fs: &dyn Fs, path: &Path, ckpt: &SearchCheckpoint) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs.create_dir_all(parent)?;
    }
    let tmp = path.with_extension("ckpt.tmp");
    fsio::write_atomic(fs, path, &tmp, ckpt.to_json_string().as_bytes())
}

/// Loads and validates a spooled checkpoint. Returns `None` — fresh
/// search — when no spool exists, and *also* when the spool is
/// unreadable, corrupt, from an unknown schema version, or incompatible
/// with this request (graceful degradation: a bad checkpoint costs the
/// saved work, never the request). Any spool presence at all means this
/// id was submitted before, i.e. the client is retrying.
fn load_spool(
    shared: &Shared,
    search: &AcesoSearch<'_>,
    path: &Path,
    request_id: &str,
) -> Option<SearchCheckpoint> {
    let text = match shared
        .opts
        .fs
        .read(path)
        .map(|b| String::from_utf8_lossy(&b).into_owned())
    {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
        Err(e) => {
            shared.client_retries.fetch_add(1, Ordering::Relaxed);
            shared.record_restart(request_id, format!("unreadable spool: {e}"));
            return None;
        }
    };
    shared.client_retries.fetch_add(1, Ordering::Relaxed);
    let ckpt = match SearchCheckpoint::from_json_str(&text) {
        Ok(c) => c,
        Err(e) => {
            shared.record_restart(request_id, e.to_string());
            return None;
        }
    };
    if let Err(e) = search.checkpoint_compatible(&ckpt, true) {
        shared.record_restart(request_id, e.to_string());
        return None;
    }
    shared.searches_resumed.fetch_add(1, Ordering::Relaxed);
    shared
        .server_events
        .lock()
        .expect("event lock")
        .push(Event::SearchResumed {
            request_id: request_id.to_string(),
            iterations_done: ckpt.iterations_done(),
        });
    Some(ckpt)
}

/// Runs one search in checkpointed slices, spooling a [`SearchCheckpoint`]
/// to `path` at every pause and resuming any compatible spool that is
/// already there. The result is bit-identical to an uninterrupted
/// `run_observed` — that is the core contract `tests/checkpoint_resume.rs`
/// enforces — so spooling is invisible to the response.
fn run_spooled(
    shared: &Shared,
    search: &AcesoSearch<'_>,
    path: &Path,
    request_id: &str,
) -> Result<(SearchResult, ObsReport), String> {
    let every = shared.opts.checkpoint_every.max(1);
    let mut bound;
    let mut step = match load_spool(shared, search, path, request_id) {
        Some(ckpt) => {
            bound = ckpt.resume_bound() + every;
            match search.resume_partial(true, &ckpt, Some(bound)) {
                Ok(s) => s,
                // `load_spool` already validated compatibility, so only
                // genuine search errors can surface here.
                Err(ResumeError::Incompatible(e)) => return Err(e.to_string()),
                Err(ResumeError::Search(e)) => return Err(e.to_string()),
            }
        }
        None => {
            bound = every;
            search.run_partial(true, bound).map_err(|e| e.to_string())?
        }
    };
    loop {
        match step {
            SearchStep::Done(result, report) => return Ok((result, report)),
            SearchStep::Paused(ckpt) => {
                if write_spool(shared.opts.fs.as_ref(), path, &ckpt).is_ok() {
                    shared.checkpoints_written.fetch_add(1, Ordering::Relaxed);
                } else {
                    // The spool directory went bad (full disk, perms…).
                    // Checkpointing is an availability feature, not a
                    // correctness one: finish the search in one go.
                    let (result, report) = match search.resume_from(true, &ckpt) {
                        Ok(r) => r,
                        Err(e) => return Err(e.to_string()),
                    };
                    return Ok((result, report));
                }
                bound += every;
                step = match search.resume_partial(true, &ckpt, Some(bound)) {
                    Ok(s) => s,
                    Err(e) => return Err(e.to_string()),
                };
            }
        }
    }
}
