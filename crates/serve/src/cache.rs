//! The cross-request profile cache.
//!
//! Building a [`ProfileDb`] is the daemon's dominant cold-start cost —
//! exactly the artifact the paper's §3.3 reuse property says should be
//! shared ("the profiled database can be reused by the search for models
//! that contain the same operators"). [`ProfileCache`] keys built
//! databases by *(model fingerprint, cluster fingerprint)* and shares
//! them across concurrent requests:
//!
//! * an exact-key hit returns the existing `Arc<ProfileDb>` without any
//!   profiling work;
//! * concurrent requests for the same key share one build — later
//!   arrivals block on a condvar until the first finishes, then count as
//!   hits;
//! * a miss that shares a cluster *and precision* with resident entries
//!   folds their entries in via [`ProfileDb::merge`] (partial-overlap
//!   reuse: shared operator shapes are not re-measured conceptually, and
//!   lookups stay bit-identical because every entry is a pure function
//!   of its key; mixed-precision databases are never merged — timings
//!   depend on the precision but entry keys do not encode it);
//! * total resident size is bounded by an LRU byte budget over
//!   [`ProfileDb::approx_bytes`];
//! * optionally, a persistent second tier ([`aceso_store::Store`]): a
//!   miss consults the on-disk store before building (a loaded entry is
//!   bit-identical to a built one), a fresh build is written back, and
//!   unusable files degrade to a rebuild plus a typed drainable event —
//!   the cache is merely the store's client, the format contract lives
//!   in `docs/STORE.md`.
//!
//! Sharing can never change a search result: `ProfileDb` lookups return
//! identical values on hit and miss, so a cached, merged, or freshly
//! built database scores every configuration bit-identically.

use aceso_cluster::ClusterSpec;
use aceso_model::ModelGraph;
use aceso_profile::ProfileDb;
use aceso_store::Store;
use aceso_util::lockorder::{TrackedCondvar, TrackedGuard, TrackedMutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError};

// The cache keys on the same fingerprints that bind search checkpoints
// to their inputs; both live in `aceso_core::checkpoint` so a daemon's
// spooled checkpoint and its profile-cache entry can never disagree on
// what "the same model" means.
pub use aceso_core::checkpoint::{cluster_fingerprint, model_fingerprint};

/// One resident cache entry.
struct Entry {
    db: Arc<ProfileDb>,
    cluster_fp: u64,
    bytes: u64,
    /// Monotone LRU clock value of the last lookup.
    last_use: u64,
}

/// Slot state: either being built by some request, or resident.
enum Slot {
    Building,
    Ready(Entry),
}

#[derive(Default)]
struct State {
    slots: HashMap<(u64, u64), Slot>,
    tick: u64,
}

/// Shared, byte-budgeted LRU cache of built [`ProfileDb`]s.
pub struct ProfileCache {
    budget_bytes: u64,
    state: TrackedMutex<State>,
    built: TrackedCondvar,
    /// Set by [`ProfileCache::shutdown`]. Waiters coalesced on a
    /// concurrent build re-check this after every wakeup so a drain can
    /// never strand them on a build that may not finish.
    shutdown: AtomicBool,
    /// Threads currently blocked waiting out another request's build.
    /// Observability for tests and the deterministic-scheduler harness.
    waiters: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Optional persistent second tier, consulted on a miss before
    /// building and written back after a fresh build.
    store: Option<Store>,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    store_writes: AtomicU64,
    store_evictions: AtomicU64,
    store_rejected: AtomicU64,
    /// Degraded store files as `(file, reason)` pairs, drained by the
    /// daemon into its `store_degraded` event stream. Never locked
    /// while `state` is held.
    degraded: TrackedMutex<Vec<(String, String)>>,
}

/// Clears a `Building` slot and wakes waiters if the build unwinds.
///
/// Between inserting `Slot::Building` and inserting the finished entry
/// the cache is in a transient state; if `ProfileDb::build` or the merge
/// panics in between, waiters on the condvar would otherwise block
/// forever on a slot nobody is building. Disarmed on success.
struct BuildGuard<'a> {
    cache: &'a ProfileCache,
    key: (u64, u64),
    armed: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut state = self.cache.lock_state();
            state.slots.remove(&self.key);
            self.cache.built.notify_all();
        }
    }
}

impl ProfileCache {
    /// Creates a cache evicting least-recently-used entries once resident
    /// databases exceed `budget_bytes` (the entry being inserted is never
    /// evicted, so a single oversized database still serves its request).
    pub fn new(budget_bytes: u64) -> Self {
        Self {
            budget_bytes,
            state: TrackedMutex::new("profile-cache.state", State::default()),
            built: TrackedCondvar::new(),
            shutdown: AtomicBool::new(false),
            waiters: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            store: None,
            store_hits: AtomicU64::new(0),
            store_misses: AtomicU64::new(0),
            store_writes: AtomicU64::new(0),
            store_evictions: AtomicU64::new(0),
            store_rejected: AtomicU64::new(0),
            degraded: TrackedMutex::new("profile-cache.degraded", Vec::new()),
        }
    }

    /// [`ProfileCache::new`] with a persistent on-disk second tier. The
    /// store is consulted lazily on misses only, so opening it costs
    /// O(1) regardless of how many entries it holds — daemon startup
    /// never scans the store directory.
    pub fn with_store(budget_bytes: u64, store: Store) -> Self {
        Self {
            store: Some(store),
            ..Self::new(budget_bytes)
        }
    }

    /// Locks the cache state, recovering from poisoning: a panic in one
    /// request's build must not wedge every later cache call. The state
    /// stays consistent under poisoning because mutations are either
    /// single `insert`/`remove` calls or are rolled back by
    /// [`BuildGuard`].
    fn lock_state(&self) -> TrackedGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Marks the cache as shutting down and wakes every coalesced
    /// waiter. Waiters blocked on a concurrent build fall back to a
    /// private uncached build instead of waiting on a build that may
    /// never finish — liveness over deduplication during a drain. The
    /// daemon calls this when it starts draining.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Take the state lock before notifying so a waiter that checked
        // the flag just before we set it is already parked in `wait`
        // (it held the lock while checking) and cannot miss the wakeup.
        let _state = self.lock_state();
        self.built.notify_all();
    }

    /// Whether [`ProfileCache::shutdown`] has been called.
    pub fn is_shut_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Number of threads currently blocked waiting out another
    /// request's build of the same key.
    pub fn waiting(&self) -> u64 {
        self.waiters.load(Ordering::SeqCst)
    }

    /// Returns the database for `(model, cluster)`, building it on first
    /// use. The boolean is `true` on a cache hit (including waiting out a
    /// concurrent build of the same key) and `false` when this call did
    /// the build.
    pub fn get_or_build(
        &self,
        model: &ModelGraph,
        cluster: &ClusterSpec,
    ) -> (Arc<ProfileDb>, bool) {
        self.get_or_build_with(model, cluster, ProfileDb::build)
    }

    /// [`ProfileCache::get_or_build`] with the build function injected.
    ///
    /// The deterministic-scheduler harness passes closures that park on
    /// barriers, so tests can hold the cache at any point of the
    /// coalescing protocol and drive adversarial interleavings; the
    /// production path passes `ProfileDb::build`.
    pub fn get_or_build_with(
        &self,
        model: &ModelGraph,
        cluster: &ClusterSpec,
        build: impl FnOnce(&ModelGraph, &ClusterSpec) -> ProfileDb,
    ) -> (Arc<ProfileDb>, bool) {
        let key = (model_fingerprint(model), cluster_fingerprint(cluster));
        {
            let mut state = self.lock_state();
            loop {
                match state.slots.get_mut(&key) {
                    Some(Slot::Ready(_)) => {
                        state.tick += 1;
                        let tick = state.tick;
                        let Some(Slot::Ready(entry)) = state.slots.get_mut(&key) else {
                            unreachable!("slot vanished under the lock")
                        };
                        entry.last_use = tick;
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return (Arc::clone(&entry.db), true);
                    }
                    Some(Slot::Building) => {
                        // Re-checked on every wakeup: a drain that
                        // arrives while we are coalesced on someone
                        // else's build must not strand us if that build
                        // never completes. Fall back to a private,
                        // uncached build (a miss).
                        if self.shutdown.load(Ordering::SeqCst) {
                            drop(state);
                            self.misses.fetch_add(1, Ordering::Relaxed);
                            return (Arc::new(build(model, cluster)), false);
                        }
                        self.waiters.fetch_add(1, Ordering::SeqCst);
                        let waited = self.built.wait(state);
                        self.waiters.fetch_sub(1, Ordering::SeqCst);
                        state = waited.unwrap_or_else(PoisonError::into_inner);
                    }
                    None => {
                        state.slots.insert(key, Slot::Building);
                        break;
                    }
                }
            }
        }
        let mut guard = BuildGuard {
            cache: self,
            key,
            armed: true,
        };

        // Disk tier first, then a real build — both outside the lock:
        // profiling and store I/O are the expensive parts and other keys
        // must stay servable meanwhile. A fresh build is written back
        // pre-merge, so the entry on disk is exactly what a cold build
        // produces and a later load stays bit-identical to building.
        let mut db = match self.load_from_store(key, model.precision) {
            Some(db) => db,
            None => {
                let db = build(model, cluster);
                self.write_back(key, &db);
                db
            }
        };
        // The entry's accounted cost is its own build size: entries
        // folded in below are shared with (and already accounted by)
        // their resident owners.
        let bytes = db.approx_bytes();

        let mut state = self.lock_state();
        // Partial-overlap reuse: fold in every resident database built on
        // the same cluster at the same precision. Entries are pure
        // functions of their keys, so the merge is conflict-free and
        // cannot change any lookup. Precision must match exactly: the
        // zoo mixes Fp16 and Fp32 models, and their timings are not
        // interchangeable.
        for slot in state.slots.values() {
            if let Slot::Ready(entry) = slot {
                if entry.cluster_fp == key.1 && entry.db.precision() == db.precision() {
                    db.merge(&entry.db)
                        .expect("precision checked before merging");
                }
            }
        }
        let db = Arc::new(db);
        state.tick += 1;
        let tick = state.tick;
        state.slots.insert(
            key,
            Slot::Ready(Entry {
                db: Arc::clone(&db),
                cluster_fp: key.1,
                bytes,
                last_use: tick,
            }),
        );
        guard.armed = false;
        Self::evict_over_budget(&mut state, self.budget_bytes, key);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.built.notify_all();
        (db, false)
    }

    /// Evicts least-recently-used `Ready` entries until resident bytes
    /// fit the budget, never evicting `keep` (the entry just inserted).
    fn evict_over_budget(state: &mut State, budget: u64, keep: (u64, u64)) {
        loop {
            let resident: u64 = state
                .slots
                .values()
                .filter_map(|s| match s {
                    Slot::Ready(e) => Some(e.bytes),
                    Slot::Building => None,
                })
                .sum();
            if resident <= budget {
                return;
            }
            let victim = state
                .slots
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready(e) if *k != keep => Some((e.last_use, *k)),
                    _ => None,
                })
                .min()
                .map(|(_, k)| k);
            match victim {
                Some(k) => {
                    state.slots.remove(&k);
                }
                None => return,
            }
        }
    }

    /// Consults the persistent tier for `key`. Exactly one of the store
    /// counters advances per consultation; a degraded file is queued for
    /// the daemon's event stream. `None` means "build it fresh".
    fn load_from_store(
        &self,
        key: (u64, u64),
        precision: aceso_model::Precision,
    ) -> Option<ProfileDb> {
        let store = self.store.as_ref()?;
        match store.load(key.0, key.1) {
            Ok(Some(db)) => {
                if db.precision() == precision {
                    self.store_hits.fetch_add(1, Ordering::Relaxed);
                    Some(db)
                } else {
                    // The in-memory merge path's precision-filter rule,
                    // applied to the disk tier: mixed-precision timings
                    // are never interchangeable, so the entry is skipped
                    // and the request builds fresh.
                    self.store_rejected.fetch_add(1, Ordering::Relaxed);
                    None
                }
            }
            Ok(None) => {
                self.store_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(degraded) => {
                self.store_misses.fetch_add(1, Ordering::Relaxed);
                self.degraded
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push((degraded.file, degraded.reason.to_string()));
                None
            }
        }
    }

    /// Writes a freshly built database back to the persistent tier.
    /// Best-effort: a full or read-only disk must not fail the request.
    fn write_back(&self, key: (u64, u64), db: &ProfileDb) {
        let Some(store) = self.store.as_ref() else {
            return;
        };
        if let Ok(evicted) = store.save(key.0, key.1, db) {
            self.store_writes.fetch_add(1, Ordering::Relaxed);
            self.store_evictions
                .fetch_add(evicted as u64, Ordering::Relaxed);
        }
    }

    /// Lifetime cache hits (exact-key or shared-build).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime cache misses (builds performed).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of resident databases.
    pub fn len(&self) -> usize {
        self.lock_state()
            .slots
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// Whether no database is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime misses resolved from the persistent store.
    pub fn store_hits(&self) -> u64 {
        self.store_hits.load(Ordering::Relaxed)
    }

    /// Lifetime store consultations that found no usable entry.
    pub fn store_misses(&self) -> u64 {
        self.store_misses.load(Ordering::Relaxed)
    }

    /// Lifetime databases written back to the persistent store.
    pub fn store_writes(&self) -> u64 {
        self.store_writes.load(Ordering::Relaxed)
    }

    /// Lifetime store entries evicted from disk by the byte budget.
    pub fn store_evictions(&self) -> u64 {
        self.store_evictions.load(Ordering::Relaxed)
    }

    /// Lifetime store entries skipped for precision mismatch.
    pub fn store_rejected(&self) -> u64 {
        self.store_rejected.load(Ordering::Relaxed)
    }

    /// Drains queued `(file, reason)` store degradations for the
    /// daemon's event stream.
    pub fn drain_degraded(&self) -> Vec<(String, String)> {
        std::mem::take(&mut *self.degraded.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Drains the store tier's count of failed eviction-sweep removals
    /// (zero without a store). The daemon folds the drained count into
    /// its monotone `retention_sweep_errors` total and emits a
    /// `sweep_degraded` event (INV-CHAOS-SWEEP).
    pub fn take_store_sweep_errors(&self) -> u64 {
        self.store.as_ref().map_or(0, Store::take_sweep_errors)
    }

    /// Total approximate bytes of resident databases.
    pub fn resident_bytes(&self) -> u64 {
        self.lock_state()
            .slots
            .values()
            .filter_map(|s| match s {
                Slot::Ready(e) => Some(e.bytes),
                Slot::Building => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_model::zoo::gpt3_custom;
    use aceso_model::Precision;
    use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};

    fn small(name: &str, layers: usize) -> ModelGraph {
        gpt3_custom(name, layers, 256, 4, 128, 1000, 16)
    }

    #[test]
    fn repeat_lookup_is_a_hit() {
        let cache = ProfileCache::new(u64::MAX);
        let m = small("a", 2);
        let c = ClusterSpec::v100(1, 2);
        let (db1, hit1) = cache.get_or_build(&m, &c);
        let (db2, hit2) = cache.get_or_build(&m, &c);
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&db1, &db2));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn distinct_models_are_distinct_keys() {
        let cache = ProfileCache::new(u64::MAX);
        let c = ClusterSpec::v100(1, 2);
        cache.get_or_build(&small("a", 2), &c);
        cache.get_or_build(&small("b", 4), &c);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn distinct_clusters_are_distinct_keys() {
        let cache = ProfileCache::new(u64::MAX);
        let m = small("a", 2);
        cache.get_or_build(&m, &ClusterSpec::v100(1, 2));
        cache.get_or_build(&m, &ClusterSpec::v100(1, 4));
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn same_cluster_miss_merges_resident_entries() {
        let cache = ProfileCache::new(u64::MAX);
        let c = ClusterSpec::v100(1, 2);
        let (db_a, _) = cache.get_or_build(&small("a", 2), &c);
        // A deeper variant with identical layer shapes: its own build
        // would have the same unique entries, and after the merge it must
        // contain at least everything `a` has.
        let (db_b, _) = cache.get_or_build(&small("b", 4), &c);
        assert!(db_b.len() >= db_a.len());
    }

    #[test]
    fn mixed_precision_same_cluster_entries_do_not_merge() {
        let cache = ProfileCache::new(u64::MAX);
        let c = ClusterSpec::v100(1, 2);
        // Disjoint operator shapes at different precisions on one
        // cluster: without the precision filter the second build would
        // fold the first database's Fp16 timings in (and, before that,
        // trip `ProfileDb::merge`'s precision check).
        let fp16 = small("a", 2);
        let mut fp32 = gpt3_custom("b", 2, 512, 8, 128, 1000, 16);
        fp32.precision = Precision::Fp32;
        cache.get_or_build(&fp16, &c);
        let (db32, _) = cache.get_or_build(&fp32, &c);
        let direct = ProfileDb::build(&fp32, &c);
        assert_eq!(db32.precision(), Precision::Fp32);
        assert_eq!(db32.len(), direct.len(), "no Fp16 entries folded in");
    }

    #[test]
    fn merged_entries_are_not_double_counted() {
        let cache = ProfileCache::new(u64::MAX);
        let c = ClusterSpec::v100(1, 2);
        // Two models with disjoint shapes: the second build folds the
        // first database in, but its accounted bytes stay its own build
        // size — the folded entries are already accounted by their
        // resident owner.
        let a = small("a", 2);
        let b = gpt3_custom("b", 2, 512, 8, 128, 1000, 16);
        let own_a = ProfileDb::build(&a, &c).approx_bytes();
        let own_b = ProfileDb::build(&b, &c).approx_bytes();
        cache.get_or_build(&a, &c);
        let (db_b, _) = cache.get_or_build(&b, &c);
        assert!(db_b.approx_bytes() > own_b, "merge did fold entries in");
        assert_eq!(cache.resident_bytes(), own_a + own_b);
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let m1 = small("a", 2);
        let m2 = small("b", 4);
        let c = ClusterSpec::v100(1, 2);
        // Budget fits exactly one database: inserting the second must
        // evict the first (the LRU).
        let one_db_bytes = ProfileDb::build(&m1, &c).approx_bytes();
        let cache = ProfileCache::new(one_db_bytes + one_db_bytes / 2);
        cache.get_or_build(&m1, &c);
        cache.get_or_build(&m2, &c);
        assert_eq!(cache.len(), 1, "LRU entry must have been evicted");
        // The evicted model now misses again.
        let (_, hit) = cache.get_or_build(&m1, &c);
        assert!(!hit);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn recently_used_entry_survives_eviction() {
        let m1 = small("a", 2);
        let m2 = small("b", 4);
        let c = ClusterSpec::v100(1, 2);
        let one = ProfileDb::build(&m1, &c).approx_bytes();
        // Room for two entries (the merged second entry is the same size
        // as the first: identical unique shapes), not three.
        let cache = ProfileCache::new(2 * one + one / 2);
        cache.get_or_build(&m1, &c);
        cache.get_or_build(&m2, &c);
        assert_eq!(cache.len(), 2);
        // Touch m1 so m2 becomes the LRU, then overflow with a third.
        cache.get_or_build(&m1, &c);
        cache.get_or_build(&small("c", 6), &c);
        let (_, hit_m1) = cache.get_or_build(&m1, &c);
        assert!(hit_m1, "recently-used entry must survive");
    }

    #[test]
    fn concurrent_same_key_requests_share_one_build() {
        let cache = ProfileCache::new(u64::MAX);
        let m = small("a", 2);
        let c = ClusterSpec::v100(1, 2);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| cache.get_or_build(&m, &c));
            }
        });
        assert_eq!(cache.misses(), 1, "only one thread builds");
        assert_eq!(cache.hits(), 3, "the others share the build");
    }

    /// Regression: a drain arriving while waiters are coalesced on a
    /// concurrent build must release them. Before the shutdown re-check
    /// in the wait loop, the waiter below blocked forever on a build
    /// that (here, deliberately) never finishes until released.
    #[test]
    fn shutdown_during_coalesced_build_releases_waiters() {
        let cache = ProfileCache::new(u64::MAX);
        let m = small("a", 2);
        let c = ClusterSpec::v100(1, 2);
        let gate = std::sync::Barrier::new(2);
        // Set inside the gated closure: once true, the builder provably
        // holds the `Building` slot, so a waiter spawned after this
        // point *must* coalesce. (Without the handshake, the waiter can
        // win the race, build everything itself, and leave `waiting()`
        // at zero forever — spinning the main thread.)
        let started = AtomicBool::new(false);
        std::thread::scope(|s| {
            // Builder: parks inside the build until the main thread
            // releases it, holding the slot in `Building`.
            s.spawn(|| {
                cache.get_or_build_with(&m, &c, |m, c| {
                    started.store(true, AtomicOrdering::SeqCst);
                    gate.wait();
                    ProfileDb::build(m, c)
                })
            });
            while !started.load(AtomicOrdering::SeqCst) {
                std::thread::yield_now();
            }
            // Waiter: coalesces on the builder's slot and blocks.
            let waiter = s.spawn(|| cache.get_or_build(&m, &c));
            while cache.waiting() == 0 {
                std::thread::yield_now();
            }
            // Drain. The waiter must come back with a private build —
            // not hang until the builder is released.
            cache.shutdown();
            let (_db, hit) = waiter.join().expect("waiter returns");
            assert!(!hit, "a shutdown fallback build is a miss");
            // Release the builder; its entry still lands in the cache.
            gate.wait();
        });
        assert_eq!(cache.misses(), 2, "builder + waiter fallback");
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 1);
    }

    /// Deterministic-scheduler harness: drives the coalescing protocol
    /// through adversarial interleavings by parking the build closure on
    /// a barrier, so each ordering below is exact, not probabilistic.
    #[test]
    fn coalescing_protocol_survives_adversarial_interleavings() {
        let m = small("a", 2);
        let c = ClusterSpec::v100(1, 2);

        // Interleaving 1: waiter blocks, builder released, waiter hits.
        // (`started` handshake: the waiter may only be spawned once the
        // builder holds the slot, else the waiter can build first and
        // the `waiting()` spin below never terminates.)
        let cache = ProfileCache::new(u64::MAX);
        let gate = std::sync::Barrier::new(2);
        let started = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                cache.get_or_build_with(&m, &c, |m, c| {
                    started.store(true, AtomicOrdering::SeqCst);
                    gate.wait();
                    ProfileDb::build(m, c)
                })
            });
            while !started.load(AtomicOrdering::SeqCst) {
                std::thread::yield_now();
            }
            let waiter = s.spawn(|| cache.get_or_build(&m, &c));
            while cache.waiting() == 0 {
                std::thread::yield_now();
            }
            gate.wait();
            let (_db, hit) = waiter.join().expect("waiter returns");
            assert!(hit, "released build is shared: the waiter hits");
        });
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        // Interleaving 2: shutdown lands before any request. Requests
        // still complete (drain must finish in-flight work).
        let cache = ProfileCache::new(u64::MAX);
        cache.shutdown();
        let (_db, hit) = cache.get_or_build(&m, &c);
        assert!(!hit);
        let (_db, hit) = cache.get_or_build(&m, &c);
        assert!(hit, "resident entries still hit after shutdown");

        // Interleaving 3: two waiters coalesced, shutdown releases both,
        // then the builder completes. No waiter is stranded and every
        // call returns a usable database.
        let cache = ProfileCache::new(u64::MAX);
        let gate = std::sync::Barrier::new(2);
        let started = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                cache.get_or_build_with(&m, &c, |m, c| {
                    started.store(true, AtomicOrdering::SeqCst);
                    gate.wait();
                    ProfileDb::build(m, c)
                })
            });
            while !started.load(AtomicOrdering::SeqCst) {
                std::thread::yield_now();
            }
            let w1 = s.spawn(|| cache.get_or_build(&m, &c));
            let w2 = s.spawn(|| cache.get_or_build(&m, &c));
            while cache.waiting() < 2 {
                std::thread::yield_now();
            }
            cache.shutdown();
            assert!(!w1.join().expect("w1 returns").1);
            assert!(!w2.join().expect("w2 returns").1);
            gate.wait();
        });
        assert_eq!(cache.misses(), 3, "builder + two fallback builds");
    }

    fn store_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("aceso-cache-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A "restart": a second cache sharing the first one's store
    /// directory resolves its cold miss from disk, bit-identically.
    #[test]
    fn store_tier_survives_cache_restart_bit_identically() {
        let dir = store_dir("restart");
        let m = small("a", 2);
        let c = ClusterSpec::v100(1, 2);
        let first = ProfileCache::with_store(u64::MAX, Store::open(&dir, u64::MAX).expect("open"));
        let (built, hit) = first.get_or_build(&m, &c);
        assert!(!hit);
        assert_eq!(first.store_misses(), 1, "cold store");
        assert_eq!(first.store_writes(), 1, "fresh build written back");
        drop(first);
        let second = ProfileCache::with_store(u64::MAX, Store::open(&dir, u64::MAX).expect("open"));
        let (loaded, hit) = second.get_or_build(&m, &c);
        assert!(!hit, "a store load is not a memory hit");
        assert_eq!(second.store_hits(), 1);
        assert_eq!(second.store_writes(), 0, "loads are not re-written");
        assert_eq!(
            loaded.canonical_entries(),
            built.canonical_entries(),
            "loaded entries return the same f64 bit patterns"
        );
        // Next lookup on the second cache is a plain memory hit.
        let (_db, hit) = second.get_or_build(&m, &c);
        assert!(hit);
        assert_eq!(second.store_hits(), 1, "store consulted on misses only");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The write-back precision-filter rule: a decodable store entry
    /// whose precision mismatches the request's build is skipped and
    /// counted, never merged. (An honest writer cannot produce one —
    /// the model fingerprint hashes the precision — so this plants a
    /// mismatched entry through the store API directly.)
    #[test]
    fn store_precision_mismatch_is_rejected_not_merged() {
        let dir = store_dir("precision");
        let m = small("a", 2);
        let c = ClusterSpec::v100(1, 2);
        let mut fp32 = small("a", 2);
        fp32.precision = Precision::Fp32;
        let key = (model_fingerprint(&m), cluster_fingerprint(&c));
        let store = Store::open(&dir, u64::MAX).expect("open");
        store
            .save(key.0, key.1, &ProfileDb::build(&fp32, &c))
            .expect("plant mismatched entry");
        let cache = ProfileCache::with_store(u64::MAX, store);
        let (db, hit) = cache.get_or_build(&m, &c);
        assert!(!hit);
        assert_eq!(cache.store_rejected(), 1);
        assert_eq!(cache.store_hits(), 0);
        assert_eq!(db.precision(), Precision::Fp16, "built fresh");
        // The fresh build's write-back healed the planted entry.
        let again = ProfileCache::with_store(u64::MAX, Store::open(&dir, u64::MAX).expect("open"));
        let (_db, _) = again.get_or_build(&m, &c);
        assert_eq!(again.store_hits(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A corrupt store file degrades to a fresh build plus a drainable
    /// typed event — never an error.
    #[test]
    fn corrupt_store_entry_degrades_with_typed_reason() {
        let dir = store_dir("degrade");
        let m = small("a", 2);
        let c = ClusterSpec::v100(1, 2);
        let key = (model_fingerprint(&m), cluster_fingerprint(&c));
        let store = Store::open(&dir, u64::MAX).expect("open");
        let file = aceso_store::entry_name(key.0, key.1);
        std::fs::write(dir.join(&file), "not a store file\n").expect("corrupt");
        let cache = ProfileCache::with_store(u64::MAX, store);
        let (_db, hit) = cache.get_or_build(&m, &c);
        assert!(!hit);
        assert_eq!(cache.store_misses(), 1, "degrade counts as a miss");
        let drained = cache.drain_degraded();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].0, file);
        assert!(!drained[0].1.is_empty(), "reason is typed and non-empty");
        assert!(cache.drain_degraded().is_empty(), "drain empties the queue");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprints_are_stable_and_discriminating() {
        let m = small("a", 2);
        assert_eq!(model_fingerprint(&m), model_fingerprint(&m));
        assert_ne!(model_fingerprint(&m), model_fingerprint(&small("b", 4)));
        let c2 = ClusterSpec::v100(1, 2);
        let c4 = ClusterSpec::v100(1, 4);
        assert_eq!(cluster_fingerprint(&c2), cluster_fingerprint(&c2));
        assert_ne!(cluster_fingerprint(&c2), cluster_fingerprint(&c4));
    }
}
