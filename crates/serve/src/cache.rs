//! The cross-request profile cache.
//!
//! Building a [`ProfileDb`] is the daemon's dominant cold-start cost —
//! exactly the artifact the paper's §3.3 reuse property says should be
//! shared ("the profiled database can be reused by the search for models
//! that contain the same operators"). [`ProfileCache`] keys built
//! databases by *(model fingerprint, cluster fingerprint)* and shares
//! them across concurrent requests:
//!
//! * an exact-key hit returns the existing `Arc<ProfileDb>` without any
//!   profiling work;
//! * concurrent requests for the same key share one build — later
//!   arrivals block on a condvar until the first finishes, then count as
//!   hits;
//! * a miss that shares a cluster with resident entries folds their
//!   entries in via [`ProfileDb::merge`] (partial-overlap reuse: shared
//!   operator shapes are not re-measured conceptually, and lookups stay
//!   bit-identical because every entry is a pure function of its key);
//! * total resident size is bounded by an LRU byte budget over
//!   [`ProfileDb::approx_bytes`].
//!
//! Sharing can never change a search result: `ProfileDb` lookups return
//! identical values on hit and miss, so a cached, merged, or freshly
//! built database scores every configuration bit-identically.

use aceso_cluster::ClusterSpec;
use aceso_model::ModelGraph;
use aceso_profile::ProfileDb;
use aceso_util::json::ToJson;
use aceso_util::FnvHasher;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Stable fingerprint of a model's profile-relevant content: the
/// multiset of operator signatures (order-sensitively hashed — op order
/// is part of the model), precision, and global batch.
pub fn model_fingerprint(model: &ModelGraph) -> u64 {
    let mut h = FnvHasher::new();
    for op in &model.ops {
        h.write_u64(ProfileDb::op_signature(op));
    }
    h.write_bytes(
        model
            .precision
            .to_json_value()
            .to_string_compact()
            .as_bytes(),
    );
    h.write_usize(model.global_batch);
    h.finish()
}

/// Stable fingerprint of a cluster topology (its canonical JSON form).
pub fn cluster_fingerprint(cluster: &ClusterSpec) -> u64 {
    let mut h = FnvHasher::new();
    h.write_bytes(cluster.to_json_value().to_string_compact().as_bytes());
    h.finish()
}

/// One resident cache entry.
struct Entry {
    db: Arc<ProfileDb>,
    cluster_fp: u64,
    bytes: u64,
    /// Monotone LRU clock value of the last lookup.
    last_use: u64,
}

/// Slot state: either being built by some request, or resident.
enum Slot {
    Building,
    Ready(Entry),
}

#[derive(Default)]
struct State {
    slots: HashMap<(u64, u64), Slot>,
    tick: u64,
}

/// Shared, byte-budgeted LRU cache of built [`ProfileDb`]s.
pub struct ProfileCache {
    budget_bytes: u64,
    state: Mutex<State>,
    built: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProfileCache {
    /// Creates a cache evicting least-recently-used entries once resident
    /// databases exceed `budget_bytes` (the entry being inserted is never
    /// evicted, so a single oversized database still serves its request).
    pub fn new(budget_bytes: u64) -> Self {
        Self {
            budget_bytes,
            state: Mutex::new(State::default()),
            built: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the database for `(model, cluster)`, building it on first
    /// use. The boolean is `true` on a cache hit (including waiting out a
    /// concurrent build of the same key) and `false` when this call did
    /// the build.
    pub fn get_or_build(
        &self,
        model: &ModelGraph,
        cluster: &ClusterSpec,
    ) -> (Arc<ProfileDb>, bool) {
        let key = (model_fingerprint(model), cluster_fingerprint(cluster));
        {
            let mut state = self.state.lock().expect("cache lock");
            loop {
                match state.slots.get_mut(&key) {
                    Some(Slot::Ready(_)) => {
                        state.tick += 1;
                        let tick = state.tick;
                        let Some(Slot::Ready(entry)) = state.slots.get_mut(&key) else {
                            unreachable!("slot vanished under the lock")
                        };
                        entry.last_use = tick;
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return (Arc::clone(&entry.db), true);
                    }
                    Some(Slot::Building) => {
                        state = self.built.wait(state).expect("cache lock");
                    }
                    None => {
                        state.slots.insert(key, Slot::Building);
                        break;
                    }
                }
            }
        }

        // Build outside the lock: profiling is the expensive part and
        // other keys must stay servable meanwhile.
        let mut db = ProfileDb::build(model, cluster);

        let mut state = self.state.lock().expect("cache lock");
        // Partial-overlap reuse: fold in every resident database built on
        // the same cluster. Entries are pure functions of their keys, so
        // the merge is conflict-free and cannot change any lookup.
        for slot in state.slots.values() {
            if let Slot::Ready(entry) = slot {
                if entry.cluster_fp == key.1 {
                    db.merge(&entry.db);
                }
            }
        }
        let db = Arc::new(db);
        let bytes = db.approx_bytes();
        state.tick += 1;
        let tick = state.tick;
        state.slots.insert(
            key,
            Slot::Ready(Entry {
                db: Arc::clone(&db),
                cluster_fp: key.1,
                bytes,
                last_use: tick,
            }),
        );
        Self::evict_over_budget(&mut state, self.budget_bytes, key);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.built.notify_all();
        (db, false)
    }

    /// Evicts least-recently-used `Ready` entries until resident bytes
    /// fit the budget, never evicting `keep` (the entry just inserted).
    fn evict_over_budget(state: &mut State, budget: u64, keep: (u64, u64)) {
        loop {
            let resident: u64 = state
                .slots
                .values()
                .filter_map(|s| match s {
                    Slot::Ready(e) => Some(e.bytes),
                    Slot::Building => None,
                })
                .sum();
            if resident <= budget {
                return;
            }
            let victim = state
                .slots
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready(e) if *k != keep => Some((e.last_use, *k)),
                    _ => None,
                })
                .min()
                .map(|(_, k)| k);
            match victim {
                Some(k) => {
                    state.slots.remove(&k);
                }
                None => return,
            }
        }
    }

    /// Lifetime cache hits (exact-key or shared-build).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime cache misses (builds performed).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of resident databases.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("cache lock")
            .slots
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// Whether no database is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total approximate bytes of resident databases.
    pub fn resident_bytes(&self) -> u64 {
        self.state
            .lock()
            .expect("cache lock")
            .slots
            .values()
            .filter_map(|s| match s {
                Slot::Ready(e) => Some(e.bytes),
                Slot::Building => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_model::zoo::gpt3_custom;

    fn small(name: &str, layers: usize) -> ModelGraph {
        gpt3_custom(name, layers, 256, 4, 128, 1000, 16)
    }

    #[test]
    fn repeat_lookup_is_a_hit() {
        let cache = ProfileCache::new(u64::MAX);
        let m = small("a", 2);
        let c = ClusterSpec::v100(1, 2);
        let (db1, hit1) = cache.get_or_build(&m, &c);
        let (db2, hit2) = cache.get_or_build(&m, &c);
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&db1, &db2));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn distinct_models_are_distinct_keys() {
        let cache = ProfileCache::new(u64::MAX);
        let c = ClusterSpec::v100(1, 2);
        cache.get_or_build(&small("a", 2), &c);
        cache.get_or_build(&small("b", 4), &c);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn distinct_clusters_are_distinct_keys() {
        let cache = ProfileCache::new(u64::MAX);
        let m = small("a", 2);
        cache.get_or_build(&m, &ClusterSpec::v100(1, 2));
        cache.get_or_build(&m, &ClusterSpec::v100(1, 4));
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn same_cluster_miss_merges_resident_entries() {
        let cache = ProfileCache::new(u64::MAX);
        let c = ClusterSpec::v100(1, 2);
        let (db_a, _) = cache.get_or_build(&small("a", 2), &c);
        // A deeper variant with identical layer shapes: its own build
        // would have the same unique entries, and after the merge it must
        // contain at least everything `a` has.
        let (db_b, _) = cache.get_or_build(&small("b", 4), &c);
        assert!(db_b.len() >= db_a.len());
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let m1 = small("a", 2);
        let m2 = small("b", 4);
        let c = ClusterSpec::v100(1, 2);
        // Budget fits exactly one database: inserting the second must
        // evict the first (the LRU).
        let one_db_bytes = ProfileDb::build(&m1, &c).approx_bytes();
        let cache = ProfileCache::new(one_db_bytes + one_db_bytes / 2);
        cache.get_or_build(&m1, &c);
        cache.get_or_build(&m2, &c);
        assert_eq!(cache.len(), 1, "LRU entry must have been evicted");
        // The evicted model now misses again.
        let (_, hit) = cache.get_or_build(&m1, &c);
        assert!(!hit);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn recently_used_entry_survives_eviction() {
        let m1 = small("a", 2);
        let m2 = small("b", 4);
        let c = ClusterSpec::v100(1, 2);
        let one = ProfileDb::build(&m1, &c).approx_bytes();
        // Room for two entries (the merged second entry is the same size
        // as the first: identical unique shapes), not three.
        let cache = ProfileCache::new(2 * one + one / 2);
        cache.get_or_build(&m1, &c);
        cache.get_or_build(&m2, &c);
        assert_eq!(cache.len(), 2);
        // Touch m1 so m2 becomes the LRU, then overflow with a third.
        cache.get_or_build(&m1, &c);
        cache.get_or_build(&small("c", 6), &c);
        let (_, hit_m1) = cache.get_or_build(&m1, &c);
        assert!(hit_m1, "recently-used entry must survive");
    }

    #[test]
    fn concurrent_same_key_requests_share_one_build() {
        let cache = ProfileCache::new(u64::MAX);
        let m = small("a", 2);
        let c = ClusterSpec::v100(1, 2);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| cache.get_or_build(&m, &c));
            }
        });
        assert_eq!(cache.misses(), 1, "only one thread builds");
        assert_eq!(cache.hits(), 3, "the others share the build");
    }

    #[test]
    fn fingerprints_are_stable_and_discriminating() {
        let m = small("a", 2);
        assert_eq!(model_fingerprint(&m), model_fingerprint(&m));
        assert_ne!(model_fingerprint(&m), model_fingerprint(&small("b", 4)));
        let c2 = ClusterSpec::v100(1, 2);
        let c4 = ClusterSpec::v100(1, 4);
        assert_eq!(cluster_fingerprint(&c2), cluster_fingerprint(&c2));
        assert_ne!(cluster_fingerprint(&c2), cluster_fingerprint(&c4));
    }
}
