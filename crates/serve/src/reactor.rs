//! Readiness-driven connection front-end (`--reactor`).
//!
//! The blocking front-end spawns one thread per connection, which caps
//! fan-in at whatever the OS will give us in stacks — it cannot hold
//! thousands of idle or slow clients. The reactor holds *every*
//! connection on one event-loop thread: sockets are nonblocking
//! (`TcpStream::set_nonblocking` — the workspace forbids `unsafe`, so
//! there is no `poll(2)` FFI; readiness is discovered by a timed sweep
//! with an adaptive tick), frames are assembled incrementally by
//! [`FrameDecoder`], and admitted requests are dispatched round-robin
//! into the bounded worker pool. The architecture contract lives in the
//! reactor section of `docs/SERVER.md`; the `INV-` anchors cited below
//! are defined there and cross-checked by `tests/serve_doc.rs`.
//!
//! Invariants (`docs/SERVER.md`):
//!
//! * **INV-NONBLOCK** — the event-loop thread never blocks on a peer:
//!   no blocking reads, writes, or graph builds happen on it, and the
//!   i/o deadline applies only to peers stalled *mid-frame* or with
//!   unflushed output — a fully idle connection is held indefinitely.
//! * **INV-PIPELINE-ORDER** — a single request's response frames are
//!   delivered in order; concurrent requests' frames may interleave on
//!   the connection but each carries its `request_id` tag.
//! * **INV-FAIRNESS** — dispatch prefers connections with nothing in
//!   flight before granting any connection a second concurrent slot, so
//!   one chatty pipeliner cannot starve other clients.

use crate::proto::{error_frame, tag_request_id, Request};
use crate::server::{execute_request, validate_request, FrameSink, Shared};
use crate::wire::{write_frame, FrameDecoder, WireError};
use aceso_model::zoo;
use aceso_obs::ObsReport;
use aceso_util::json::{obj, Value};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Maximum requests one connection may hold queued plus in flight;
/// the excess gets a typed `rejected-busy` error (the connection
/// survives). Bounds the memory one pipelining client can pin.
pub const PIPELINE_DEPTH: usize = 64;

/// Sweep tick while traffic is flowing.
const TICK_BUSY: Duration = Duration::from_millis(1);
/// Sweep tick after several consecutive idle sweeps.
const TICK_IDLE: Duration = Duration::from_millis(5);
/// Read buffer per sweep per connection.
const READ_CHUNK: usize = 16 * 1024;
/// Per-syscall write bound. A dead peer surfaces as an error only on
/// the write *after* the one whose bytes triggered its RST; bounded
/// chunks guarantee a multi-kilobyte response spans several syscalls,
/// so a severed connection fails before its final result frame is
/// accounted as delivered — which is what keeps the spool-deletion
/// markers honest (crash-recovery contract, `docs/SERVER.md`).
const WRITE_CHUNK: usize = 2 * 1024;
/// Compact the outbox once this many bytes are dead at its front.
const COMPACT_AT: usize = 64 * 1024;

/// One unit of worker-pool work.
enum Job {
    /// Run a validated request and stream its frames into the sink.
    Run(Box<(Request, QueueSink)>),
    /// Drain sentinel: the worker exits.
    Stop,
}

/// Messages flowing from workers back to the event loop.
enum OutMsg {
    /// Encoded frame bytes for a connection (by slot and generation).
    /// `spool` carries the request's spool file when this is the final
    /// result frame: the event loop deletes it only after these bytes
    /// have actually been written to the socket, preserving the
    /// crash-recovery contract of the blocking front-end.
    Frame {
        conn: usize,
        gen: u64,
        bytes: Vec<u8>,
        spool: Option<PathBuf>,
    },
    /// The worker finished a job (success or rejection) — frees one
    /// global slot and the connection's in-flight credit.
    Done { conn: usize, gen: u64 },
}

/// Worker-side frame sink: encodes frames (tagged with the request's
/// `request_id` when it has one — INV-PIPELINE-ORDER) and hands the
/// bytes to the event loop, which owns the socket.
struct QueueSink {
    out: Arc<Mutex<Vec<OutMsg>>>,
    conn: usize,
    gen: u64,
    tag: Option<String>,
    closed: Arc<AtomicBool>,
}

impl QueueSink {
    fn encode(&self, frame: &Value) -> Result<Vec<u8>, WireError> {
        let framed = match &self.tag {
            Some(id) => tag_request_id(frame.clone(), id),
            None => frame.clone(),
        };
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &framed)?;
        Ok(bytes)
    }

    fn push(&self, msg: OutMsg) {
        self.out.lock().expect("out queue").push(msg);
    }

    fn done(&self) {
        self.push(OutMsg::Done {
            conn: self.conn,
            gen: self.gen,
        });
    }
}

impl FrameSink for QueueSink {
    fn send(&mut self, frame: &Value) -> Result<(), WireError> {
        // A closed connection stops the stream early, like a broken
        // socket does in blocking mode; frames racing the close are
        // dropped by the event loop's generation check.
        if self.closed.load(Ordering::Relaxed) {
            return Err(WireError::Closed);
        }
        let bytes = self.encode(frame)?;
        self.push(OutMsg::Frame {
            conn: self.conn,
            gen: self.gen,
            bytes,
            spool: None,
        });
        Ok(())
    }

    fn send_final(
        &mut self,
        frame: &Value,
        spool: Option<&std::path::Path>,
    ) -> Result<(), WireError> {
        if self.closed.load(Ordering::Relaxed) {
            return Err(WireError::Closed);
        }
        let bytes = self.encode(frame)?;
        self.push(OutMsg::Frame {
            conn: self.conn,
            gen: self.gen,
            bytes,
            spool: spool.map(std::path::Path::to_path_buf),
        });
        Ok(())
    }
}

/// Per-connection state machine on the event-loop thread.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Encoded-but-unwritten response bytes; `cursor` marks how far the
    /// socket has consumed them.
    outbox: Vec<u8>,
    cursor: usize,
    /// Total bytes ever written to the socket / enqueued to the outbox.
    written_total: u64,
    queued_total: u64,
    /// Spool files to delete once `written_total` passes the marker —
    /// i.e. once the final result frame left for the peer.
    spool_deletes: VecDeque<(u64, PathBuf)>,
    /// Admitted requests not yet dispatched to a worker.
    pending: VecDeque<Request>,
    /// Requests currently running on workers for this connection.
    in_flight: usize,
    /// Slot generation: stale worker output is dropped on mismatch.
    gen: u64,
    /// Set on close so in-flight sinks stop streaming (INV-NONBLOCK:
    /// workers never learn about sockets, only about this flag).
    closed: Arc<AtomicBool>,
    /// Peer half-closed its write side (read EOF): finish queued and
    /// in-flight work, flush, then close.
    read_closed: bool,
    /// Fatal framing error: stop reading, flush the typed error, close.
    close_after_flush: bool,
    /// Last moment bytes moved on this socket (either direction).
    last_progress: Instant,
}

impl Conn {
    fn flushed(&self) -> bool {
        self.cursor == self.outbox.len()
    }

    fn enqueue(&mut self, bytes: &[u8], spool: Option<PathBuf>) {
        if self.flushed() {
            // The write-stall clock starts when output appears, not at
            // whatever ancient moment the conn last spoke.
            self.last_progress = Instant::now();
        }
        if let Some(path) = spool {
            self.spool_deletes
                .push_back((self.queued_total + bytes.len() as u64, path));
        }
        self.outbox.extend_from_slice(bytes);
        self.queued_total += bytes.len() as u64;
    }

    fn enqueue_frame(&mut self, frame: &Value) {
        let mut bytes = Vec::new();
        if write_frame(&mut bytes, frame).is_ok() {
            self.enqueue(&bytes, None);
        }
    }
}

/// Runs the reactor until a `shutdown` frame arrives, drains pending
/// and in-flight requests, joins the workers, and returns the
/// server-level report. Called by [`crate::server::Server::run`] when
/// [`crate::server::ServeOptions::reactor`] is set.
pub(crate) fn run(listener: &TcpListener, shared: &Arc<Shared>) -> ObsReport {
    listener
        .set_nonblocking(true)
        .expect("listener supports nonblocking mode");
    let out: Arc<Mutex<Vec<OutMsg>>> = Arc::new(Mutex::new(Vec::new()));
    let jobs: Arc<(Mutex<VecDeque<Job>>, Condvar)> =
        Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));

    // The reactor always runs at least one worker: with zero workers
    // nothing could ever drain the pending queues (the blocking
    // front-end's `workers = 0` reject-everything drill stays available
    // without `--reactor`).
    let workers = shared.opts.workers.max(1);
    let mut worker_handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let jobs = Arc::clone(&jobs);
        let shared = Arc::clone(shared);
        worker_handles.push(std::thread::spawn(move || loop {
            let job = {
                let (queue, ready) = &*jobs;
                let mut q = queue.lock().expect("job queue");
                loop {
                    match q.pop_front() {
                        Some(job) => break job,
                        None => q = ready.wait(q).expect("job queue"),
                    }
                }
            };
            match job {
                Job::Stop => return,
                Job::Run(boxed) => {
                    let (req, mut sink) = *boxed;
                    match zoo::by_name(&req.model) {
                        None => {
                            shared.rejected.fetch_add(1, Ordering::Relaxed);
                            let _ = sink.send(&error_frame(
                                "unknown-model",
                                &format!("unknown model `{}`", req.model),
                            ));
                        }
                        Some(model) => execute_request(&shared, &req, &model, &mut sink),
                    }
                    sink.done();
                }
            }
        }));
    }

    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut next_gen: u64 = 0;
    let mut global_in_flight: usize = 0;
    let mut rr: usize = 0;
    let mut idle_sweeps: u32 = 0;
    let mut cache_released = false;
    let mut read_buf = vec![0u8; READ_CHUNK];

    // Spool hygiene runs inline from the event loop instead of a
    // dedicated sweeper thread: one sweep at startup, then one whenever
    // a TTL has elapsed since the last. The sweep is O(dir entries) and
    // best-effort, so stealing one loop iteration for it is cheap.
    let spool_ttl = match (&shared.opts.spool_dir, shared.opts.spool_ttl_secs) {
        (Some(dir), Some(ttl)) if ttl > 0 => (dir.clone(), Duration::from_secs(ttl)).into(),
        _ => None,
    };
    let sweep = |dir: &std::path::PathBuf, ttl: &Duration| {
        let outcome = crate::server::sweep_spools_with(shared.opts.fs.as_ref(), dir, *ttl);
        shared.note_sweep_errors(&dir.display().to_string(), outcome.errors as u64);
    };
    if let Some((dir, ttl)) = &spool_ttl {
        sweep(dir, ttl);
    }
    let mut last_sweep = Instant::now();

    loop {
        let mut progress = false;
        if let Some((dir, ttl)) = &spool_ttl {
            if last_sweep.elapsed() >= *ttl {
                sweep(dir, ttl);
                last_sweep = Instant::now();
            }
        }
        let draining = shared.draining.load(Ordering::SeqCst);
        if draining && !cache_released {
            // Same order as the blocking drain: release coalesced cache
            // waiters before waiting out in-flight work, so a stranded
            // waiter cannot wedge the drain.
            shared.cache.shutdown();
            cache_released = true;
        }

        // --- Accept. New connections are refused during a drain.
        // (`loop`, not `while !draining`: the flag cannot change inside
        // one accept burst, only between sweeps.)
        if !draining {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        progress = true;
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let open = conns.iter().flatten().count();
                        if shared.opts.max_connections > 0 && open >= shared.opts.max_connections {
                            // Typed refusal. The socket buffer of a fresh
                            // connection always has room for one small
                            // frame, so this best-effort write lands.
                            shared.rejected.fetch_add(1, Ordering::Relaxed);
                            let mut s = stream;
                            let _ = write_frame(
                                &mut s,
                                &error_frame(
                                    "connection-limit",
                                    &format!(
                                        "server holds {} connections already",
                                        shared.opts.max_connections
                                    ),
                                ),
                            );
                            let _ = s.shutdown(std::net::Shutdown::Both);
                            continue;
                        }
                        let conn = Conn {
                            stream,
                            decoder: FrameDecoder::new(),
                            outbox: Vec::new(),
                            cursor: 0,
                            written_total: 0,
                            queued_total: 0,
                            spool_deletes: VecDeque::new(),
                            pending: VecDeque::new(),
                            in_flight: 0,
                            gen: next_gen,
                            closed: Arc::new(AtomicBool::new(false)),
                            read_closed: false,
                            close_after_flush: false,
                            last_progress: Instant::now(),
                        };
                        next_gen += 1;
                        match conns.iter().position(Option::is_none) {
                            Some(slot) => conns[slot] = Some(conn),
                            None => conns.push(Some(conn)),
                        }
                        shared
                            .connections_open
                            .store((open + 1) as u64, Ordering::Relaxed);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }

        // --- Route worker output into per-connection outboxes.
        let msgs: Vec<OutMsg> = std::mem::take(&mut *out.lock().expect("out queue"));
        for msg in msgs {
            progress = true;
            match msg {
                OutMsg::Frame {
                    conn,
                    gen,
                    bytes,
                    spool,
                } => {
                    match conns.get_mut(conn).and_then(Option::as_mut) {
                        Some(c) if c.gen == gen => c.enqueue(&bytes, spool),
                        // Connection is gone: the bytes are undeliverable
                        // and any spool file stays on disk so a retry of
                        // the request id resumes the saved work.
                        _ => {}
                    }
                }
                OutMsg::Done { conn, gen } => {
                    global_in_flight -= 1;
                    if let Some(c) = conns.get_mut(conn).and_then(Option::as_mut) {
                        if c.gen == gen {
                            c.in_flight -= 1;
                        }
                    }
                }
            }
        }

        // --- Per-connection i/o sweep.
        for slot in 0..conns.len() {
            let Some(c) = conns[slot].as_mut() else {
                continue;
            };
            let mut close_now = false;

            // Write side first: drain whatever the socket will take.
            while c.cursor < c.outbox.len() {
                let end = (c.cursor + WRITE_CHUNK).min(c.outbox.len());
                match c.stream.write(&c.outbox[c.cursor..end]) {
                    Ok(0) => {
                        close_now = true;
                        break;
                    }
                    Ok(n) => {
                        c.cursor += n;
                        c.written_total += n as u64;
                        c.last_progress = Instant::now();
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        close_now = true;
                        break;
                    }
                }
            }
            if c.flushed() {
                c.outbox.clear();
                c.cursor = 0;
            } else if c.cursor >= COMPACT_AT {
                c.outbox.drain(..c.cursor);
                c.cursor = 0;
            }
            // A result frame's bytes reached the kernel: the spool is
            // now redundant (crash-recovery contract, `docs/SERVER.md`).
            while let Some((target, _)) = c.spool_deletes.front() {
                if *target <= c.written_total {
                    let (_, path) = c.spool_deletes.pop_front().expect("front exists");
                    let _ = shared.opts.fs.remove_file(&path);
                } else {
                    break;
                }
            }

            // Read side: pull every available byte, assemble frames.
            if !close_now && !c.close_after_flush && !c.read_closed {
                loop {
                    match c.stream.read(&mut read_buf) {
                        Ok(0) => {
                            // Half-close: the peer finished sending but
                            // may still be reading; answer everything
                            // already admitted, then close.
                            c.read_closed = true;
                            break;
                        }
                        Ok(n) => {
                            c.decoder.extend(&read_buf[..n]);
                            c.last_progress = Instant::now();
                            progress = true;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            close_now = true;
                            break;
                        }
                    }
                }
            }
            if !close_now && !c.close_after_flush {
                loop {
                    match c.decoder.next_frame() {
                        Ok(None) => break,
                        Ok(Some(frame)) => {
                            progress = true;
                            handle_frame(shared, c, &frame);
                        }
                        Err(WireError::Oversize(n)) => {
                            // The unread payload leaves the stream
                            // unframed; reject and close once the typed
                            // error has flushed.
                            shared.rejected.fetch_add(1, Ordering::Relaxed);
                            c.enqueue_frame(&error_frame(
                                "oversize-frame",
                                &WireError::Oversize(n).to_string(),
                            ));
                            c.close_after_flush = true;
                            break;
                        }
                        Err(e) => {
                            // Framing stayed aligned (the payload was
                            // consumed): typed error, keep the stream.
                            shared.rejected.fetch_add(1, Ordering::Relaxed);
                            c.enqueue_frame(&error_frame("bad-frame", &e.to_string()));
                        }
                    }
                }
            }

            // INV-NONBLOCK timeouts: only peers stalled mid-frame or
            // with unflushed output are on the clock; idle connections
            // are held indefinitely — that is the point of the reactor.
            if let Some(deadline) = shared.opts.io_timeout {
                if !close_now && c.last_progress.elapsed() > deadline {
                    if !c.flushed() {
                        // Write stall: the peer stopped reading; the
                        // typed error could not be delivered anyway.
                        close_now = true;
                    } else if c.decoder.mid_frame() {
                        // Read stall mid-frame (slow loris): typed
                        // timeout, then close. Counts as a rejection,
                        // same as the blocking front-end's deadline.
                        shared.rejected.fetch_add(1, Ordering::Relaxed);
                        c.enqueue_frame(&error_frame(
                            "timeout",
                            "connection stalled mid-frame past the server's i/o deadline",
                        ));
                        c.close_after_flush = true;
                    }
                }
            }

            let drained_out = c.flushed();
            let work_done = c.pending.is_empty() && c.in_flight == 0;
            if c.close_after_flush && drained_out {
                close_now = true;
            }
            if c.read_closed && work_done && drained_out {
                close_now = true;
            }
            if close_now {
                c.closed.store(true, Ordering::Relaxed);
                conns[slot] = None;
                progress = true;
                shared
                    .connections_open
                    .store(conns.iter().flatten().count() as u64, Ordering::Relaxed);
            }
        }

        // --- Dispatch (INV-FAIRNESS): round-robin, fresh-first. Pass 1
        // serves connections with nothing in flight; pass 2 grants
        // second (pipelined) slots only from what remains. Every pass-1
        // dispatch made while some other connection's pipelined request
        // waited is recorded as a fairness deferral.
        let mut slots = workers.saturating_sub(global_in_flight);
        if slots > 0 && !conns.is_empty() {
            let n = conns.len();
            let deferred_exists = conns
                .iter()
                .flatten()
                .any(|c| !c.pending.is_empty() && c.in_flight > 0 && !c.close_after_flush);
            for pass in 0..2u8 {
                for step in 0..n {
                    if slots == 0 {
                        break;
                    }
                    let idx = (rr + step) % n;
                    let Some(c) = conns[idx].as_mut() else {
                        continue;
                    };
                    if c.close_after_flush || c.pending.is_empty() {
                        continue;
                    }
                    let fresh = c.in_flight == 0;
                    if (pass == 0) != fresh {
                        continue;
                    }
                    let req = c.pending.pop_front().expect("pending non-empty");
                    if pass == 0 && deferred_exists {
                        shared.fairness_deferrals.fetch_add(1, Ordering::Relaxed);
                    }
                    let sink = QueueSink {
                        out: Arc::clone(&out),
                        conn: idx,
                        gen: c.gen,
                        tag: req.request_id.clone(),
                        closed: Arc::clone(&c.closed),
                    };
                    c.in_flight += 1;
                    global_in_flight += 1;
                    slots -= 1;
                    progress = true;
                    let (queue, ready) = &*jobs;
                    queue
                        .lock()
                        .expect("job queue")
                        .push_back(Job::Run(Box::new((req, sink))));
                    ready.notify_one();
                }
            }
            rr = (rr + 1) % n.max(1);
        }

        // --- Drain completion: everything admitted has been answered
        // and flushed (stragglers close via the stall deadline).
        if draining
            && global_in_flight == 0
            && conns
                .iter()
                .flatten()
                .all(|c| c.pending.is_empty() && c.flushed())
        {
            break;
        }

        if progress {
            idle_sweeps = 0;
        } else {
            idle_sweeps = idle_sweeps.saturating_add(1);
            let tick = if idle_sweeps > 8 {
                TICK_IDLE
            } else {
                TICK_BUSY
            };
            std::thread::sleep(tick);
        }
    }

    // Close every surviving connection, stop the workers, report.
    for slot in conns.iter_mut() {
        if let Some(c) = slot.take() {
            c.closed.store(true, Ordering::Relaxed);
        }
    }
    shared.connections_open.store(0, Ordering::Relaxed);
    {
        let (queue, ready) = &*jobs;
        let mut q = queue.lock().expect("job queue");
        for _ in 0..workers {
            q.push_back(Job::Stop);
        }
        ready.notify_all();
    }
    for handle in worker_handles {
        let _ = handle.join();
    }
    shared.report()
}

/// Handles one complete inbound frame on the event-loop thread. Only
/// cheap work happens here (INV-NONBLOCK): request validation without
/// the graph build, stats snapshots, and the shutdown flag.
fn handle_frame(shared: &Arc<Shared>, c: &mut Conn, frame: &Value) {
    // Error replies echo the request's id (when it sent one) so a
    // pipelining client can route the rejection (INV-PIPELINE-ORDER).
    let tag = frame
        .get("request_id")
        .and_then(|v| v.as_str().ok())
        .map(str::to_string);
    let reject = |c: &mut Conn, code: &str, msg: &str| {
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        let mut err = error_frame(code, msg);
        if let Some(id) = &tag {
            err = tag_request_id(err, id);
        }
        c.enqueue_frame(&err);
    };
    match frame.get("type").and_then(|t| t.as_str().ok()) {
        Some("request") => match validate_request(shared, frame) {
            Err((code, message)) => reject(c, code, &message),
            Ok(req) => {
                if c.pending.len() + c.in_flight >= PIPELINE_DEPTH {
                    reject(
                        c,
                        "rejected-busy",
                        &format!("connection pipeline depth {PIPELINE_DEPTH} exceeded"),
                    );
                    return;
                }
                if c.pending.len() + c.in_flight > 0 {
                    shared.pipelined_requests.fetch_add(1, Ordering::Relaxed);
                }
                c.pending.push_back(req);
            }
        },
        Some("stats") => {
            let report = shared.report();
            let metrics = Value::parse(&report.metrics_json()).expect("own snapshot parses");
            c.enqueue_frame(&obj([
                ("type", Value::Str("stats".into())),
                ("metrics", metrics),
            ]));
        }
        Some("shutdown") => {
            shared.draining.store(true, Ordering::SeqCst);
            c.enqueue_frame(&obj([("type", Value::Str("ok".into()))]));
        }
        other => reject(
            c,
            "unknown-frame-type",
            &format!("unknown frame type {other:?}"),
        ),
    }
}
