//! A blocking TCP client for the serve protocol.
//!
//! [`submit`] sends one [`Request`] and collects the streamed response
//! into a [`Response`]; [`shutdown`] and [`server_stats`] speak the
//! admin frames. The client reconstructs the exact artifact bytes a
//! direct `AcesoSearch::run_observed` run would have written —
//! [`Response::events_jsonl`] and [`Response::metrics_json`] are
//! byte-identical to `ObsReport::events_jsonl`/`metrics_json` because
//! the in-tree JSON printer roundtrips numbers exactly and objects
//! preserve field order.

use crate::proto::Request;
use crate::wire::{read_frame, write_frame, WireError};
use aceso_util::json::{obj, ToJson, Value};
use aceso_util::SplitMix64;
use std::net::TcpStream;
use std::time::Duration;

/// Why a submission failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Wire(WireError),
    /// The server replied with a typed error frame.
    Server {
        /// Machine-readable error code (see `docs/SERVER.md`).
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// The server sent a frame the protocol does not allow here.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server rejected the request ({code}): {message}")
            }
            ClientError::Protocol(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// Everything one served search returned.
#[derive(Debug)]
pub struct Response {
    /// `"hit"` or `"miss"` — the profile-cache outcome.
    pub cache: String,
    /// Status phases observed, in order (e.g. `profiling`, `searching`).
    pub statuses: Vec<String>,
    /// The streamed event payloads, in sequence order (without the
    /// transport `seq` wrapper).
    pub events: Vec<Value>,
    /// The final result frame (type, timings, best config, …).
    pub result: Value,
    /// The per-request metric snapshot (parsed `metrics_json`).
    pub metrics: Value,
    /// The execution plan, when the request asked for one and the best
    /// configuration fits memory.
    pub plan: Option<Value>,
}

impl Response {
    /// Re-renders the streamed events as JSONL, byte-identical to
    /// `ObsReport::events_jsonl` of the equivalent direct run: each line
    /// is the event object with `seq` inserted first, compact-printed.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for (i, event) in self.events.iter().enumerate() {
            let Value::Object(fields) = event else {
                continue;
            };
            let mut fields = fields.clone();
            fields.insert(0, ("seq".to_string(), Value::UInt(i as u64)));
            out.push_str(&Value::Object(fields).to_string_compact());
            out.push('\n');
        }
        out
    }

    /// Re-renders the metric snapshot, byte-identical to
    /// `ObsReport::metrics_json` of the equivalent direct run.
    pub fn metrics_json(&self) -> String {
        let mut s = self.metrics.to_string_pretty();
        s.push('\n');
        s
    }
}

/// Submits one search request and blocks until the result frame.
pub fn submit(addr: &str, req: &Request) -> Result<Response, ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, &req.to_json_value())?;
    let mut statuses = Vec::new();
    let mut events = Vec::new();
    loop {
        let frame = read_frame(&mut stream)?;
        match frame.get("type").and_then(|t| t.as_str().ok()) {
            Some("status") => {
                let phase = frame
                    .get("phase")
                    .and_then(|p| p.as_str().ok())
                    .unwrap_or("?");
                statuses.push(phase.to_string());
            }
            Some("event") => {
                let seq = frame
                    .get("seq")
                    .and_then(|s| s.as_u64().ok())
                    .ok_or_else(|| ClientError::Protocol("event frame without seq".into()))?;
                if seq as usize != events.len() {
                    return Err(ClientError::Protocol(format!(
                        "event seq {seq} arrived out of order (expected {})",
                        events.len()
                    )));
                }
                let event = frame
                    .get("event")
                    .cloned()
                    .ok_or_else(|| ClientError::Protocol("event frame without payload".into()))?;
                events.push(event);
            }
            Some("result") => {
                let cache = frame
                    .get("cache")
                    .and_then(|c| c.as_str().ok())
                    .unwrap_or("?")
                    .to_string();
                let metrics = frame
                    .get("metrics")
                    .cloned()
                    .ok_or_else(|| ClientError::Protocol("result frame without metrics".into()))?;
                let plan = match frame.get("plan") {
                    None | Some(Value::Null) => None,
                    Some(p) => Some(p.clone()),
                };
                return Ok(Response {
                    cache,
                    statuses,
                    events,
                    result: frame,
                    metrics,
                    plan,
                });
            }
            Some("error") => return Err(server_error(&frame)),
            other => {
                return Err(ClientError::Protocol(format!(
                    "unexpected frame type {other:?} while awaiting a result"
                )))
            }
        }
    }
}

/// Whether a failed submission is worth retrying: transport failures
/// (connection refused, reset, or dropped mid-response — the daemon may
/// be restarting) and the server's transient rejections (`rejected-busy`
/// backpressure, a `timeout` idle cut). Typed rejections of the request
/// itself (`bad-request`, `unknown-model`, …) will fail identically on
/// every attempt, so they are surfaced immediately.
fn retryable(e: &ClientError) -> bool {
    match e {
        ClientError::Wire(_) => true,
        ClientError::Server { code, .. } => matches!(code.as_str(), "rejected-busy" | "timeout"),
        ClientError::Protocol(_) => false,
    }
}

/// First retry delay; doubles per attempt up to [`RETRY_DELAY_CAP`].
const RETRY_DELAY_BASE: Duration = Duration::from_millis(50);
/// Ceiling on the exponential backoff delay.
const RETRY_DELAY_CAP: Duration = Duration::from_secs(2);

/// [`submit`] with bounded exponential backoff: up to `retries` extra
/// attempts after the first, retrying transport errors and transient
/// server rejections (wire errors, `rejected-busy`, `timeout`). Each
/// delay doubles from 50 ms
/// (capped at 2 s) plus up to 50 % jitter drawn from a [`SplitMix64`]
/// seeded by the request's own search seed — deterministic for a given
/// request, so a stampede of distinct clients still decorrelates while
/// tests stay reproducible.
///
/// Combined with a `request_id` and a `--spool-dir` daemon this is the
/// crash-recovery loop: a retry after a dropped connection or daemon
/// restart resumes the search from the last spooled checkpoint and
/// returns the same bit-identical response the first attempt would have.
pub fn submit_with_retries(
    addr: &str,
    req: &Request,
    retries: usize,
) -> Result<Response, ClientError> {
    let mut rng = SplitMix64::new(req.seed ^ 0x5EED_BACC_0FF5);
    let mut delay = RETRY_DELAY_BASE;
    let mut attempt = 0usize;
    loop {
        match submit(addr, req) {
            Ok(resp) => return Ok(resp),
            Err(e) if attempt < retries && retryable(&e) => {
                attempt += 1;
                let jitter_ms = rng.next_u64() % (delay.as_millis() as u64 / 2 + 1);
                std::thread::sleep(delay + Duration::from_millis(jitter_ms));
                delay = (delay * 2).min(RETRY_DELAY_CAP);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Asks the daemon to drain and exit. Returns once the server
/// acknowledges; in-flight requests still finish before it exits.
pub fn shutdown(addr: &str) -> Result<(), ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, &obj([("type", Value::Str("shutdown".into()))]))?;
    let reply = read_frame(&mut stream)?;
    match reply.get("type").and_then(|t| t.as_str().ok()) {
        Some("ok") => Ok(()),
        Some("error") => Err(server_error(&reply)),
        other => Err(ClientError::Protocol(format!(
            "unexpected shutdown reply {other:?}"
        ))),
    }
}

/// Fetches the server-level metric snapshot (the serve counter quartet).
pub fn server_stats(addr: &str) -> Result<Value, ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, &obj([("type", Value::Str("stats".into()))]))?;
    let reply = read_frame(&mut stream)?;
    match reply.get("type").and_then(|t| t.as_str().ok()) {
        Some("stats") => reply
            .get("metrics")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("stats frame without metrics".into())),
        Some("error") => Err(server_error(&reply)),
        other => Err(ClientError::Protocol(format!(
            "unexpected stats reply {other:?}"
        ))),
    }
}

fn server_error(frame: &Value) -> ClientError {
    let code = frame
        .get("code")
        .and_then(|c| c.as_str().ok())
        .unwrap_or("?")
        .to_string();
    let message = frame
        .get("message")
        .and_then(|m| m.as_str().ok())
        .unwrap_or_default()
        .to_string();
    ClientError::Server { code, message }
}
