//! A blocking TCP client for the serve protocol.
//!
//! [`submit`] sends one [`Request`] and collects the streamed response
//! into a [`Response`]; [`shutdown`] and [`server_stats`] speak the
//! admin frames. The client reconstructs the exact artifact bytes a
//! direct `AcesoSearch::run_observed` run would have written —
//! [`Response::events_jsonl`] and [`Response::metrics_json`] are
//! byte-identical to `ObsReport::events_jsonl`/`metrics_json` because
//! the in-tree JSON printer roundtrips numbers exactly and objects
//! preserve field order.

use crate::proto::Request;
use crate::wire::{read_frame, write_frame, WireError};
use aceso_util::json::{obj, ToJson, Value};
use std::net::TcpStream;

/// Why a submission failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Wire(WireError),
    /// The server replied with a typed error frame.
    Server {
        /// Machine-readable error code (see `docs/SERVER.md`).
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// The server sent a frame the protocol does not allow here.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server rejected the request ({code}): {message}")
            }
            ClientError::Protocol(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// Everything one served search returned.
#[derive(Debug)]
pub struct Response {
    /// `"hit"` or `"miss"` — the profile-cache outcome.
    pub cache: String,
    /// Status phases observed, in order (e.g. `profiling`, `searching`).
    pub statuses: Vec<String>,
    /// The streamed event payloads, in sequence order (without the
    /// transport `seq` wrapper).
    pub events: Vec<Value>,
    /// The final result frame (type, timings, best config, …).
    pub result: Value,
    /// The per-request metric snapshot (parsed `metrics_json`).
    pub metrics: Value,
    /// The execution plan, when the request asked for one and the best
    /// configuration fits memory.
    pub plan: Option<Value>,
}

impl Response {
    /// Re-renders the streamed events as JSONL, byte-identical to
    /// `ObsReport::events_jsonl` of the equivalent direct run: each line
    /// is the event object with `seq` inserted first, compact-printed.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for (i, event) in self.events.iter().enumerate() {
            let Value::Object(fields) = event else {
                continue;
            };
            let mut fields = fields.clone();
            fields.insert(0, ("seq".to_string(), Value::UInt(i as u64)));
            out.push_str(&Value::Object(fields).to_string_compact());
            out.push('\n');
        }
        out
    }

    /// Re-renders the metric snapshot, byte-identical to
    /// `ObsReport::metrics_json` of the equivalent direct run.
    pub fn metrics_json(&self) -> String {
        let mut s = self.metrics.to_string_pretty();
        s.push('\n');
        s
    }
}

/// Submits one search request and blocks until the result frame.
pub fn submit(addr: &str, req: &Request) -> Result<Response, ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, &req.to_json_value())?;
    let mut statuses = Vec::new();
    let mut events = Vec::new();
    loop {
        let frame = read_frame(&mut stream)?;
        match frame.get("type").and_then(|t| t.as_str().ok()) {
            Some("status") => {
                let phase = frame
                    .get("phase")
                    .and_then(|p| p.as_str().ok())
                    .unwrap_or("?");
                statuses.push(phase.to_string());
            }
            Some("event") => {
                let seq = frame
                    .get("seq")
                    .and_then(|s| s.as_u64().ok())
                    .ok_or_else(|| ClientError::Protocol("event frame without seq".into()))?;
                if seq as usize != events.len() {
                    return Err(ClientError::Protocol(format!(
                        "event seq {seq} arrived out of order (expected {})",
                        events.len()
                    )));
                }
                let event = frame
                    .get("event")
                    .cloned()
                    .ok_or_else(|| ClientError::Protocol("event frame without payload".into()))?;
                events.push(event);
            }
            Some("result") => {
                let cache = frame
                    .get("cache")
                    .and_then(|c| c.as_str().ok())
                    .unwrap_or("?")
                    .to_string();
                let metrics = frame
                    .get("metrics")
                    .cloned()
                    .ok_or_else(|| ClientError::Protocol("result frame without metrics".into()))?;
                let plan = match frame.get("plan") {
                    None | Some(Value::Null) => None,
                    Some(p) => Some(p.clone()),
                };
                return Ok(Response {
                    cache,
                    statuses,
                    events,
                    result: frame,
                    metrics,
                    plan,
                });
            }
            Some("error") => return Err(server_error(&frame)),
            other => {
                return Err(ClientError::Protocol(format!(
                    "unexpected frame type {other:?} while awaiting a result"
                )))
            }
        }
    }
}

/// Asks the daemon to drain and exit. Returns once the server
/// acknowledges; in-flight requests still finish before it exits.
pub fn shutdown(addr: &str) -> Result<(), ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, &obj([("type", Value::Str("shutdown".into()))]))?;
    let reply = read_frame(&mut stream)?;
    match reply.get("type").and_then(|t| t.as_str().ok()) {
        Some("ok") => Ok(()),
        Some("error") => Err(server_error(&reply)),
        other => Err(ClientError::Protocol(format!(
            "unexpected shutdown reply {other:?}"
        ))),
    }
}

/// Fetches the server-level metric snapshot (the serve counter quartet).
pub fn server_stats(addr: &str) -> Result<Value, ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, &obj([("type", Value::Str("stats".into()))]))?;
    let reply = read_frame(&mut stream)?;
    match reply.get("type").and_then(|t| t.as_str().ok()) {
        Some("stats") => reply
            .get("metrics")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("stats frame without metrics".into())),
        Some("error") => Err(server_error(&reply)),
        other => Err(ClientError::Protocol(format!(
            "unexpected stats reply {other:?}"
        ))),
    }
}

fn server_error(frame: &Value) -> ClientError {
    let code = frame
        .get("code")
        .and_then(|c| c.as_str().ok())
        .unwrap_or("?")
        .to_string();
    let message = frame
        .get("message")
        .and_then(|m| m.as_str().ok())
        .unwrap_or_default()
        .to_string();
    ClientError::Server { code, message }
}
