//! A blocking TCP client for the serve protocol.
//!
//! [`submit`] sends one [`Request`] and collects the streamed response
//! into a [`Response`]; [`shutdown`] and [`server_stats`] speak the
//! admin frames. The client reconstructs the exact artifact bytes a
//! direct `AcesoSearch::run_observed` run would have written —
//! [`Response::events_jsonl`] and [`Response::metrics_json`] are
//! byte-identical to `ObsReport::events_jsonl`/`metrics_json` because
//! the in-tree JSON printer roundtrips numbers exactly and objects
//! preserve field order.

use crate::proto::Request;
use crate::wire::{read_frame, write_frame, WireError};
use aceso_util::json::{obj, ToJson, Value};
use aceso_util::SplitMix64;
use std::net::TcpStream;
use std::time::Duration;

/// Why a submission failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Wire(WireError),
    /// The server replied with a typed error frame.
    Server {
        /// Machine-readable error code (see `docs/SERVER.md`).
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// The server sent a frame the protocol does not allow here.
    Protocol(String),
    /// The total wall-clock retry deadline expired before any attempt
    /// succeeded (`--retry-deadline-secs`). Distinct from exhausting
    /// the attempt *count*: the deadline bounds elapsed time across
    /// both backoff clocks, whatever mix of failures was seen.
    RetryDeadline {
        /// The configured wall-clock budget.
        deadline: Duration,
        /// Attempts actually made before the deadline cut retries off.
        attempts: usize,
        /// The failure of the final attempt.
        last: Box<ClientError>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server rejected the request ({code}): {message}")
            }
            ClientError::Protocol(e) => write!(f, "protocol violation: {e}"),
            ClientError::RetryDeadline {
                deadline,
                attempts,
                last,
            } => write!(
                f,
                "retry-deadline: gave up after {attempts} attempt(s); \
                 wall-clock deadline of {:.1}s exceeded; last error: {last}",
                deadline.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// Everything one served search returned.
#[derive(Debug)]
pub struct Response {
    /// `"hit"` or `"miss"` — the profile-cache outcome.
    pub cache: String,
    /// Status phases observed, in order (e.g. `profiling`, `searching`).
    pub statuses: Vec<String>,
    /// The streamed event payloads, in sequence order (without the
    /// transport `seq` wrapper).
    pub events: Vec<Value>,
    /// The final result frame (type, timings, best config, …).
    pub result: Value,
    /// The per-request metric snapshot (parsed `metrics_json`).
    pub metrics: Value,
    /// The execution plan, when the request asked for one and the best
    /// configuration fits memory.
    pub plan: Option<Value>,
}

impl Response {
    /// Re-renders the streamed events as JSONL, byte-identical to
    /// `ObsReport::events_jsonl` of the equivalent direct run: each line
    /// is the event object with `seq` inserted first, compact-printed.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for (i, event) in self.events.iter().enumerate() {
            let Value::Object(fields) = event else {
                continue;
            };
            let mut fields = fields.clone();
            fields.insert(0, ("seq".to_string(), Value::UInt(i as u64)));
            out.push_str(&Value::Object(fields).to_string_compact());
            out.push('\n');
        }
        out
    }

    /// Re-renders the metric snapshot, byte-identical to
    /// `ObsReport::metrics_json` of the equivalent direct run.
    pub fn metrics_json(&self) -> String {
        let mut s = self.metrics.to_string_pretty();
        s.push('\n');
        s
    }
}

/// Builds a [`Response`] from a result frame plus the statuses and
/// events collected before it arrived.
fn response_from_result(
    frame: Value,
    statuses: Vec<String>,
    events: Vec<Value>,
) -> Result<Response, ClientError> {
    let cache = frame
        .get("cache")
        .and_then(|c| c.as_str().ok())
        .unwrap_or("?")
        .to_string();
    let metrics = frame
        .get("metrics")
        .cloned()
        .ok_or_else(|| ClientError::Protocol("result frame without metrics".into()))?;
    let plan = match frame.get("plan") {
        None | Some(Value::Null) => None,
        Some(p) => Some(p.clone()),
    };
    Ok(Response {
        cache,
        statuses,
        events,
        result: frame,
        metrics,
        plan,
    })
}

/// Submits one search request and blocks until the result frame.
pub fn submit(addr: &str, req: &Request) -> Result<Response, ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, &req.to_json_value())?;
    let mut statuses = Vec::new();
    let mut events = Vec::new();
    loop {
        let frame = read_frame(&mut stream)?;
        match frame.get("type").and_then(|t| t.as_str().ok()) {
            Some("status") => {
                let phase = frame
                    .get("phase")
                    .and_then(|p| p.as_str().ok())
                    .unwrap_or("?");
                statuses.push(phase.to_string());
            }
            Some("event") => {
                let seq = frame
                    .get("seq")
                    .and_then(|s| s.as_u64().ok())
                    .ok_or_else(|| ClientError::Protocol("event frame without seq".into()))?;
                if seq as usize != events.len() {
                    return Err(ClientError::Protocol(format!(
                        "event seq {seq} arrived out of order (expected {})",
                        events.len()
                    )));
                }
                let event = frame
                    .get("event")
                    .cloned()
                    .ok_or_else(|| ClientError::Protocol("event frame without payload".into()))?;
                events.push(event);
            }
            Some("result") => return response_from_result(frame, statuses, events),
            Some("error") => return Err(server_error(&frame)),
            other => {
                return Err(ClientError::Protocol(format!(
                    "unexpected frame type {other:?} while awaiting a result"
                )))
            }
        }
    }
}

/// One request's accumulating state inside a [`PipelineCollector`].
struct PipelineSlot {
    id: String,
    statuses: Vec<String>,
    events: Vec<Value>,
    outcome: Option<Result<Response, ClientError>>,
}

/// Routes the interleaved response frames of pipelined requests back to
/// their owners by `request_id` tag.
///
/// A reactor daemon may interleave the frames of concurrently running
/// requests on one connection, tagging every frame with its request's
/// id (INV-PIPELINE-ORDER, `docs/SERVER.md`); the blocking daemon
/// serves pipelined requests sequentially and untagged. The collector
/// handles both: tagged frames route by id, untagged frames route to
/// the earliest unfinished request. Per-request frame order is
/// enforced the same way [`submit`] enforces it (contiguous event
/// `seq`); cross-request order is deliberately unconstrained.
pub struct PipelineCollector {
    slots: Vec<PipelineSlot>,
}

impl PipelineCollector {
    /// A collector expecting one response per id, in submission order.
    /// Ids must be non-empty and pairwise distinct — they are the only
    /// routing key a tagged stream offers.
    pub fn new<I>(ids: I) -> Result<Self, ClientError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut slots: Vec<PipelineSlot> = Vec::new();
        for id in ids {
            if id.is_empty() {
                return Err(ClientError::Protocol(
                    "pipelined requests need non-empty request ids".into(),
                ));
            }
            if slots.iter().any(|s| s.id == id) {
                return Err(ClientError::Protocol(format!(
                    "duplicate request id `{id}` cannot be routed"
                )));
            }
            slots.push(PipelineSlot {
                id,
                statuses: Vec::new(),
                events: Vec::new(),
                outcome: None,
            });
        }
        if slots.is_empty() {
            return Err(ClientError::Protocol(
                "a pipeline needs at least one request".into(),
            ));
        }
        Ok(Self { slots })
    }

    /// True once every request has a result or a typed server error.
    pub fn is_complete(&self) -> bool {
        self.slots.iter().all(|s| s.outcome.is_some())
    }

    /// Accepts one inbound frame, routing it to its request. Errors are
    /// protocol violations (unroutable frame, out-of-order event `seq`,
    /// unknown frame type); a typed server `error` frame is *not* an
    /// error here — it completes its own request's outcome.
    pub fn accept(&mut self, frame: &Value) -> Result<(), ClientError> {
        let slot = match frame.get("request_id").and_then(|v| v.as_str().ok()) {
            Some(id) => self
                .slots
                .iter_mut()
                .find(|s| s.id == id && s.outcome.is_none())
                .ok_or_else(|| {
                    ClientError::Protocol(format!(
                        "frame tagged for unknown or already-finished request id `{id}`"
                    ))
                })?,
            None => self
                .slots
                .iter_mut()
                .find(|s| s.outcome.is_none())
                .ok_or_else(|| {
                    ClientError::Protocol("frame arrived after every request finished".into())
                })?,
        };
        match frame.get("type").and_then(|t| t.as_str().ok()) {
            Some("status") => {
                let phase = frame
                    .get("phase")
                    .and_then(|p| p.as_str().ok())
                    .unwrap_or("?");
                slot.statuses.push(phase.to_string());
            }
            Some("event") => {
                let seq = frame
                    .get("seq")
                    .and_then(|s| s.as_u64().ok())
                    .ok_or_else(|| ClientError::Protocol("event frame without seq".into()))?;
                if seq as usize != slot.events.len() {
                    return Err(ClientError::Protocol(format!(
                        "request `{}`: event seq {seq} out of order (expected {})",
                        slot.id,
                        slot.events.len()
                    )));
                }
                let event = frame
                    .get("event")
                    .cloned()
                    .ok_or_else(|| ClientError::Protocol("event frame without payload".into()))?;
                slot.events.push(event);
            }
            Some("result") => {
                let statuses = std::mem::take(&mut slot.statuses);
                let events = std::mem::take(&mut slot.events);
                slot.outcome = Some(response_from_result(frame.clone(), statuses, events));
            }
            Some("error") => slot.outcome = Some(Err(server_error(frame))),
            other => {
                return Err(ClientError::Protocol(format!(
                    "unexpected frame type {other:?} in a pipelined stream"
                )))
            }
        }
        Ok(())
    }

    /// The per-request outcomes, in submission order. Call after
    /// [`PipelineCollector::is_complete`]; unfinished requests yield a
    /// `Protocol` error describing the truncation.
    pub fn into_outcomes(self) -> Vec<(String, Result<Response, ClientError>)> {
        self.slots
            .into_iter()
            .map(|s| {
                let outcome = s.outcome.unwrap_or_else(|| {
                    Err(ClientError::Protocol(format!(
                        "stream ended before request `{}` finished",
                        s.id
                    )))
                });
                (s.id, outcome)
            })
            .collect()
    }
}

/// Per-request outcomes of a pipelined batch, in submission order:
/// `(request_id, result)` pairs.
pub type PipelineOutcomes = Vec<(String, Result<Response, ClientError>)>;

/// Submits several requests on **one** connection without waiting for
/// responses in between (pipelining), then collects every response.
/// Requires each request to carry a distinct non-empty `request_id` —
/// that tag is how a reactor daemon's interleaved responses route back.
/// Returns per-request outcomes in submission order: a typed server
/// rejection of one request does not disturb the others (the
/// fault-injection tests rely on exactly that isolation).
pub fn submit_pipelined(addr: &str, reqs: &[Request]) -> Result<PipelineOutcomes, ClientError> {
    let ids: Vec<String> = reqs
        .iter()
        .map(|r| {
            r.request_id
                .clone()
                .ok_or_else(|| ClientError::Protocol("pipelined requests need request ids".into()))
        })
        .collect::<Result<_, _>>()?;
    let mut collector = PipelineCollector::new(ids)?;
    let mut stream = TcpStream::connect(addr)?;
    for req in reqs {
        write_frame(&mut stream, &req.to_json_value())?;
    }
    while !collector.is_complete() {
        let frame = read_frame(&mut stream)?;
        collector.accept(&frame)?;
    }
    Ok(collector.into_outcomes())
}

/// How a failed submission should be retried. The two retryable classes
/// back off on different clocks because they mean different things: a
/// **busy** server answered — it is up, admitting, and merely deferring
/// this request, so hammering it again quickly is cheap and correct; a
/// **down** server (connection refused, reset, dropped mid-response)
/// may be restarting, and patience is what lets it come back.
/// Collapsing the two — the pre-reactor behaviour — made a client of an
/// accepts-then-defers reactor wait seconds for a slot that frees in
/// milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RetryClass {
    /// The server answered with a transient rejection (`rejected-busy`,
    /// a `timeout` idle cut): short backoff.
    Busy,
    /// The transport failed — the daemon may be down or restarting:
    /// long backoff.
    Down,
    /// Typed rejections of the request itself (`bad-request`,
    /// `unknown-model`, …) fail identically on every attempt: surface
    /// immediately.
    Fatal,
}

fn retry_class(e: &ClientError) -> RetryClass {
    match e {
        ClientError::Wire(_) => RetryClass::Down,
        ClientError::Server { code, .. }
            if matches!(code.as_str(), "rejected-busy" | "timeout") =>
        {
            RetryClass::Busy
        }
        ClientError::Server { .. }
        | ClientError::Protocol(_)
        | ClientError::RetryDeadline { .. } => RetryClass::Fatal,
    }
}

/// First retry delay after a busy rejection; doubles up to
/// [`RETRY_BUSY_CAP`].
const RETRY_BUSY_BASE: Duration = Duration::from_millis(10);
/// Ceiling on the busy-rejection backoff delay.
const RETRY_BUSY_CAP: Duration = Duration::from_millis(250);
/// First retry delay after a transport failure; doubles per attempt up
/// to [`RETRY_DELAY_CAP`].
const RETRY_DELAY_BASE: Duration = Duration::from_millis(50);
/// Ceiling on the transport-failure backoff delay.
const RETRY_DELAY_CAP: Duration = Duration::from_secs(2);

/// [`submit`] with bounded, class-aware exponential backoff: up to
/// `retries` extra attempts after the first. A `rejected-busy` or
/// `timeout` answer backs off on the short clock (10 ms doubling to a
/// 250 ms cap — the server is up and will free a slot soon); a
/// transport failure backs off on the long clock (50 ms doubling to a
/// 2 s cap — the daemon may be restarting). The two clocks advance
/// independently, so alternating failures cannot inflate each other.
/// Every delay gains up to 50 % jitter drawn from a [`SplitMix64`]
/// seeded by the request's own search seed — deterministic for a given
/// request, so a stampede of distinct clients still decorrelates while
/// tests stay reproducible.
///
/// Combined with a `request_id` and a `--spool-dir` daemon this is the
/// crash-recovery loop: a retry after a dropped connection or daemon
/// restart resumes the search from the last spooled checkpoint and
/// returns the same bit-identical response the first attempt would have.
pub fn submit_with_retries(
    addr: &str,
    req: &Request,
    retries: usize,
) -> Result<Response, ClientError> {
    submit_with_retries_deadline(addr, req, retries, None)
}

/// [`submit_with_retries`] with an additional total wall-clock budget:
/// once `deadline` has elapsed since the first attempt started, no
/// further attempt is made and the typed
/// [`ClientError::RetryDeadline`] surfaces (wrapping the last failure).
/// The deadline spans *both* backoff clocks — a client alternating
/// between busy rejections and transport failures is still bounded —
/// and is checked before each sleep, so the client never parks past its
/// own budget waiting to discover it expired.
pub fn submit_with_retries_deadline(
    addr: &str,
    req: &Request,
    retries: usize,
    deadline: Option<Duration>,
) -> Result<Response, ClientError> {
    let start = std::time::Instant::now();
    let mut rng = SplitMix64::new(req.seed ^ 0x5EED_BACC_0FF5);
    let mut busy_delay = RETRY_BUSY_BASE;
    let mut down_delay = RETRY_DELAY_BASE;
    let mut attempt = 0usize;
    loop {
        match submit(addr, req) {
            Ok(resp) => return Ok(resp),
            Err(e) if attempt < retries && retry_class(&e) != RetryClass::Fatal => {
                attempt += 1;
                let delay = match retry_class(&e) {
                    RetryClass::Busy => {
                        let d = busy_delay;
                        busy_delay = (busy_delay * 2).min(RETRY_BUSY_CAP);
                        d
                    }
                    RetryClass::Down => {
                        let d = down_delay;
                        down_delay = (down_delay * 2).min(RETRY_DELAY_CAP);
                        d
                    }
                    RetryClass::Fatal => unreachable!("guarded above"),
                };
                let jitter_ms = rng.next_u64() % (delay.as_millis() as u64 / 2 + 1);
                let delay = delay + Duration::from_millis(jitter_ms);
                if let Some(limit) = deadline {
                    if start.elapsed() + delay >= limit {
                        return Err(ClientError::RetryDeadline {
                            deadline: limit,
                            attempts: attempt,
                            last: Box::new(e),
                        });
                    }
                }
                std::thread::sleep(delay);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Asks the daemon to drain and exit. Returns once the server
/// acknowledges; in-flight requests still finish before it exits.
pub fn shutdown(addr: &str) -> Result<(), ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, &obj([("type", Value::Str("shutdown".into()))]))?;
    let reply = read_frame(&mut stream)?;
    match reply.get("type").and_then(|t| t.as_str().ok()) {
        Some("ok") => Ok(()),
        Some("error") => Err(server_error(&reply)),
        other => Err(ClientError::Protocol(format!(
            "unexpected shutdown reply {other:?}"
        ))),
    }
}

/// Fetches the server-level metric snapshot (the serve counter quartet).
pub fn server_stats(addr: &str) -> Result<Value, ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, &obj([("type", Value::Str("stats".into()))]))?;
    let reply = read_frame(&mut stream)?;
    match reply.get("type").and_then(|t| t.as_str().ok()) {
        Some("stats") => reply
            .get("metrics")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("stats frame without metrics".into())),
        Some("error") => Err(server_error(&reply)),
        other => Err(ClientError::Protocol(format!(
            "unexpected stats reply {other:?}"
        ))),
    }
}

fn server_error(frame: &Value) -> ClientError {
    let code = frame
        .get("code")
        .and_then(|c| c.as_str().ok())
        .unwrap_or("?")
        .to_string();
    let message = frame
        .get("message")
        .and_then(|m| m.as_str().ok())
        .unwrap_or_default()
        .to_string();
    ClientError::Server { code, message }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{error_frame, event_frame, status_frame, tag_request_id};

    fn server_err(code: &str) -> ClientError {
        ClientError::Server {
            code: code.into(),
            message: String::new(),
        }
    }

    /// The regression the reactor exposed: rejected-busy (server up,
    /// deferring) and connection failures (server down) must land in
    /// different backoff classes.
    #[test]
    fn retry_classes_split_busy_from_down() {
        assert_eq!(retry_class(&server_err("rejected-busy")), RetryClass::Busy);
        assert_eq!(retry_class(&server_err("timeout")), RetryClass::Busy);
        assert_eq!(
            retry_class(&ClientError::Wire(WireError::Closed)),
            RetryClass::Down
        );
        assert_eq!(
            retry_class(&ClientError::Wire(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "refused",
            )))),
            RetryClass::Down
        );
        for fatal in [
            "bad-request",
            "unknown-model",
            "budget-too-large",
            "shutting-down",
        ] {
            assert_eq!(
                retry_class(&server_err(fatal)),
                RetryClass::Fatal,
                "{fatal} must not be retried"
            );
        }
        assert_eq!(
            retry_class(&ClientError::Protocol("x".into())),
            RetryClass::Fatal
        );
    }

    /// Regression test for the backoff split: a daemon that answers
    /// `rejected-busy` (workers = 0) is *up*, so retries must ride the
    /// short busy clock. Four busy retries cost at worst
    /// 150 ms + 50 % jitter; the old unified clock cost at least 750 ms
    /// before jitter. The 500 ms assertion cleanly separates the two.
    #[test]
    fn busy_rejections_back_off_on_the_short_clock() {
        let server = crate::server::Server::bind(
            "127.0.0.1:0",
            crate::server::ServeOptions {
                workers: 0,
                ..crate::server::ServeOptions::default()
            },
        )
        .expect("binds");
        let addr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.run());
        let req = Request {
            model: "gpt3-0.35b".into(),
            gpus: 1,
            max_iterations: 1,
            ..Request::default()
        };
        let start = std::time::Instant::now();
        let outcome = submit_with_retries(&addr, &req, 4);
        let elapsed = start.elapsed();
        match outcome {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, "rejected-busy"),
            other => panic!("expected rejected-busy after retries, got {other:?}"),
        }
        assert!(
            elapsed < Duration::from_millis(500),
            "busy retries took {elapsed:?} — they are on the long (down) clock"
        );
        shutdown(&addr).expect("drains");
        let _ = handle.join();
    }

    /// Regression: the wall-clock deadline cuts retries off even when
    /// the attempt budget is effectively unlimited. The endpoint is a
    /// bound-then-dropped listener, so every attempt refuses
    /// permanently; without the deadline, 1000 down-clock retries would
    /// take minutes.
    #[test]
    fn retry_deadline_bounds_total_wall_clock() {
        let refused = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
            listener.local_addr().expect("addr").to_string()
            // Dropped here: connections to the freed port are refused.
        };
        let req = Request {
            model: "gpt3-0.35b".into(),
            gpus: 1,
            max_iterations: 1,
            ..Request::default()
        };
        let limit = Duration::from_millis(300);
        let start = std::time::Instant::now();
        let outcome = submit_with_retries_deadline(&refused, &req, 1000, Some(limit));
        let elapsed = start.elapsed();
        match outcome {
            Err(ClientError::RetryDeadline {
                deadline,
                attempts,
                last,
            }) => {
                assert_eq!(deadline, limit);
                assert!(attempts >= 1, "at least one attempt was made");
                assert!(
                    matches!(*last, ClientError::Wire(_)),
                    "the last failure is preserved, got {last:?}"
                );
            }
            other => panic!("expected RetryDeadline, got {other:?}"),
        }
        // Checked before each sleep: the client gives up without parking
        // past its own budget (generous bound for slow CI).
        assert!(
            elapsed < limit + Duration::from_secs(2),
            "deadline overshot: {elapsed:?}"
        );
    }

    /// One request's canonical four-frame response, tagged with its id.
    fn tagged_response(id: &str, explored: u64) -> Vec<Value> {
        let result = obj([
            ("type", Value::Str("result".into())),
            ("cache", Value::Str("hit".into())),
            ("explored", Value::UInt(explored)),
            ("metrics", obj([("schema_version", Value::UInt(7))])),
            ("plan", Value::Null),
        ]);
        vec![
            tag_request_id(status_frame("profiling", None), id),
            tag_request_id(status_frame("searching", Some("hit")), id),
            tag_request_id(
                event_frame(0, obj([("kind", Value::Str("accept".into()))])),
                id,
            ),
            tag_request_id(result, id),
        ]
    }

    /// Exhaustive two-request reorder matrix: every one of the
    /// C(8,4) = 70 order-preserving interleavings of two tagged
    /// four-frame responses must route identically — same statuses,
    /// same events, same results, for both requests, regardless of how
    /// the reactor interleaved them on the wire.
    #[test]
    fn every_two_request_interleaving_routes_identically() {
        let a = tagged_response("req-a", 11);
        let b = tagged_response("req-b", 22);
        let mut checked = 0usize;
        // Each interleaving is a choice of which 4 of the 8 positions
        // carry A's frames, encoded as an 8-bit mask with 4 set bits.
        for mask in 0u32..256 {
            if mask.count_ones() != 4 {
                continue;
            }
            let (mut ai, mut bi) = (0usize, 0usize);
            let mut collector = PipelineCollector::new(["req-a".to_string(), "req-b".to_string()])
                .expect("distinct ids");
            for pos in 0..8 {
                let frame = if mask & (1 << pos) != 0 {
                    let f = &a[ai];
                    ai += 1;
                    f
                } else {
                    let f = &b[bi];
                    bi += 1;
                    f
                };
                collector
                    .accept(frame)
                    .unwrap_or_else(|e| panic!("mask {mask:08b}: routing failed: {e}"));
            }
            assert!(collector.is_complete(), "mask {mask:08b}: incomplete");
            let outcomes = collector.into_outcomes();
            assert_eq!(outcomes[0].0, "req-a");
            assert_eq!(outcomes[1].0, "req-b");
            let ra = outcomes[0].1.as_ref().expect("req-a succeeds");
            let rb = outcomes[1].1.as_ref().expect("req-b succeeds");
            assert_eq!(ra.statuses, vec!["profiling", "searching"]);
            assert_eq!(rb.statuses, vec!["profiling", "searching"]);
            assert_eq!(ra.events.len(), 1);
            assert_eq!(rb.events.len(), 1);
            assert_eq!(
                ra.result.field("explored").unwrap().as_u64().unwrap(),
                11,
                "mask {mask:08b}: req-a got req-b's result"
            );
            assert_eq!(
                rb.result.field("explored").unwrap().as_u64().unwrap(),
                22,
                "mask {mask:08b}: req-b got req-a's result"
            );
            checked += 1;
        }
        assert_eq!(checked, 70, "the matrix must be exhaustive");
    }

    /// Untagged frames (a blocking daemon serving pipelined requests
    /// sequentially) route to the earliest unfinished request.
    #[test]
    fn untagged_frames_route_to_the_earliest_unfinished_request() {
        let mut collector =
            PipelineCollector::new(["first".to_string(), "second".to_string()]).expect("ids");
        let untagged_result = |explored: u64| {
            obj([
                ("type", Value::Str("result".into())),
                ("cache", Value::Str("miss".into())),
                ("explored", Value::UInt(explored)),
                ("metrics", obj([("schema_version", Value::UInt(7))])),
            ])
        };
        collector
            .accept(&status_frame("profiling", None))
            .expect("routes to first");
        collector
            .accept(&untagged_result(1))
            .expect("finishes first");
        collector
            .accept(&status_frame("profiling", None))
            .expect("routes to second");
        collector
            .accept(&untagged_result(2))
            .expect("finishes second");
        let outcomes = collector.into_outcomes();
        let first = outcomes[0].1.as_ref().expect("first succeeds");
        let second = outcomes[1].1.as_ref().expect("second succeeds");
        assert_eq!(first.result.field("explored").unwrap().as_u64().unwrap(), 1);
        assert_eq!(
            second.result.field("explored").unwrap().as_u64().unwrap(),
            2
        );
    }

    /// A typed server error completes its own request without
    /// disturbing the others, and frames for finished or unknown ids
    /// are protocol violations.
    #[test]
    fn error_frames_complete_one_request_and_bad_routing_is_typed() {
        let mut collector =
            PipelineCollector::new(["ok".to_string(), "doomed".to_string()]).expect("ids");
        collector
            .accept(&tag_request_id(
                error_frame("rejected-busy", "pipeline full"),
                "doomed",
            ))
            .expect("error frame routes");
        assert!(!collector.is_complete());
        let err = collector
            .accept(&tag_request_id(status_frame("profiling", None), "doomed"))
            .expect_err("finished id cannot take more frames");
        assert!(matches!(err, ClientError::Protocol(_)));
        let err = collector
            .accept(&tag_request_id(status_frame("profiling", None), "nobody"))
            .expect_err("unknown id is a protocol violation");
        assert!(matches!(err, ClientError::Protocol(_)));
        // Duplicate and empty ids are rejected up front.
        assert!(PipelineCollector::new(["x".to_string(), "x".to_string()]).is_err());
        assert!(PipelineCollector::new([String::new()]).is_err());
        assert!(PipelineCollector::new(std::iter::empty::<String>()).is_err());
    }
}
