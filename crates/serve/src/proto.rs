//! Typed frame vocabulary of the serve protocol.
//!
//! Frames travel as JSON [`Value`]s over the [`crate::wire`] framing;
//! this module gives the request frame a typed shape ([`Request`]) and
//! centralises construction of the response frames so the server, the
//! client, and `docs/SERVER.md` agree on one vocabulary.

use crate::wire::PROTOCOL_VERSION;
use aceso_core::SearchOptions;
use aceso_util::json::{obj, FromJson, JsonError, ToJson, Value};
use std::time::Duration;

/// One search job: the same knobs `aceso search` exposes, minus the
/// output-file plumbing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Zoo model name (`aceso_model::zoo::by_name` vocabulary).
    pub model: String,
    /// Simulated V100 count.
    pub gpus: usize,
    /// Pin the pipeline stage count; `None` searches automatically.
    pub stages: Option<usize>,
    /// Enable the ZeRO-1 extension primitives.
    pub zero: bool,
    /// Iteration budget per stage count (the deterministic budget).
    pub max_iterations: usize,
    /// Optional wall-clock budget in seconds. Wall-clock budgets make
    /// the explored count machine-dependent; leave `None` for
    /// reproducible results.
    pub budget_secs: Option<u64>,
    /// Search RNG seed.
    pub seed: u64,
    /// Also return the per-rank execution plan in the result frame.
    pub plan: bool,
    /// Optional idempotency key. When the server runs with `--spool-dir`,
    /// searches submitted under a request id checkpoint their state to
    /// disk periodically; resubmitting the *same* request under the same
    /// id — after a dropped connection or a daemon crash — resumes from
    /// the last spooled checkpoint instead of starting over, and the
    /// response stays bit-identical to an uninterrupted run
    /// (`docs/SERVER.md`). `None` disables spooling for this request.
    pub request_id: Option<String>,
    /// Worker threads for the frontier search within each stage count
    /// (`--search-threads`). `0` keeps the daemon's default (serial);
    /// the daemon caps the value at 16 so one request cannot oversubscribe
    /// the host. Never changes results — see `docs/SEARCH.md`.
    pub search_threads: usize,
}

impl Default for Request {
    fn default() -> Self {
        let defaults = SearchOptions::default();
        Self {
            model: String::new(),
            gpus: 8,
            stages: None,
            zero: false,
            max_iterations: defaults.max_iterations,
            budget_secs: None,
            seed: defaults.seed,
            plan: false,
            request_id: None,
            search_threads: 0,
        }
    }
}

impl Request {
    /// The [`SearchOptions`] this request maps to — the single source of
    /// truth shared by the server and the loopback-determinism tests, so
    /// a served search and a direct library search configure identically.
    pub fn search_options(&self) -> SearchOptions {
        let mut options = SearchOptions {
            max_iterations: self.max_iterations,
            time_budget: self.budget_secs.map(Duration::from_secs),
            stage_counts: self.stages.map(|p| vec![p]),
            seed: self.seed,
            // Cap the requested worker count: the daemon shares one host
            // across concurrent searches, so a single request must not
            // oversubscribe it. 0 keeps the daemon-side default.
            search_threads: self.search_threads.min(16),
            ..SearchOptions::default()
        };
        options.gen_options.enable_zero = self.zero;
        options
    }
}

impl ToJson for Request {
    fn to_json_value(&self) -> Value {
        obj([
            ("type", Value::Str("request".into())),
            ("protocol_version", Value::UInt(PROTOCOL_VERSION)),
            ("model", Value::Str(self.model.clone())),
            ("gpus", Value::UInt(self.gpus as u64)),
            (
                "stages",
                self.stages.map_or(Value::Null, |p| Value::UInt(p as u64)),
            ),
            ("zero", Value::Bool(self.zero)),
            ("max_iterations", Value::UInt(self.max_iterations as u64)),
            (
                "budget_secs",
                self.budget_secs.map_or(Value::Null, Value::UInt),
            ),
            ("seed", Value::UInt(self.seed)),
            ("plan", Value::Bool(self.plan)),
            (
                "request_id",
                self.request_id
                    .as_ref()
                    .map_or(Value::Null, |id| Value::Str(id.clone())),
            ),
            ("search_threads", Value::UInt(self.search_threads as u64)),
        ])
    }
}

impl FromJson for Request {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        let stages = match v.get("stages") {
            None | Some(Value::Null) => None,
            Some(s) => Some(s.as_usize()?),
        };
        let budget_secs = match v.get("budget_secs") {
            None | Some(Value::Null) => None,
            Some(s) => Some(s.as_u64()?),
        };
        // Absent and null are both "no id": pre-checkpoint clients never
        // send the field at all.
        let request_id = match v.get("request_id") {
            None | Some(Value::Null) => None,
            Some(s) => Some(s.as_str()?.to_string()),
        };
        // Absent/null means "daemon default": frames from clients that
        // predate the work-stealing frontier never send the field.
        let search_threads = match v.get("search_threads") {
            None | Some(Value::Null) => 0,
            Some(s) => s.as_usize()?,
        };
        Ok(Self {
            model: v.field("model")?.as_str()?.to_string(),
            gpus: v.field("gpus")?.as_usize()?,
            stages,
            zero: v.field("zero")?.as_bool()?,
            max_iterations: v.field("max_iterations")?.as_usize()?,
            budget_secs,
            seed: v.field("seed")?.as_u64()?,
            plan: v.field("plan")?.as_bool()?,
            request_id,
            search_threads,
        })
    }
}

/// Builds a typed error frame. Error codes are a closed vocabulary
/// documented in `docs/SERVER.md`: `bad-frame`, `oversize-frame`,
/// `unknown-frame-type`, `bad-request`, `bad-protocol-version`,
/// `unknown-model`, `budget-too-large`, `rejected-busy`,
/// `shutting-down`, `search-failed`, `timeout`, `connection-limit`.
pub fn error_frame(code: &str, message: &str) -> Value {
    obj([
        ("type", Value::Str("error".into())),
        ("code", Value::Str(code.into())),
        ("message", Value::Str(message.into())),
    ])
}

/// Appends a `request_id` field to a response frame so a pipelining
/// client can route it to the right in-flight request. The field is
/// *appended* — never inserted — so a tagged frame's other bytes are
/// identical to the untagged frame the blocking server writes, and
/// `Response::events_jsonl` (which reads only the `event` payload)
/// reconstructs the same bytes either way (INV-PIPELINE-ORDER,
/// `docs/SERVER.md`). Non-object frames pass through untouched.
pub fn tag_request_id(mut frame: Value, request_id: &str) -> Value {
    if let Value::Object(fields) = &mut frame {
        fields.push(("request_id".to_string(), Value::Str(request_id.into())));
    }
    frame
}

/// Builds a progress/status frame; `cache` is `Some("hit"|"miss")` once
/// the profile-cache outcome is known.
pub fn status_frame(phase: &str, cache: Option<&str>) -> Value {
    let mut fields = vec![
        ("type".to_string(), Value::Str("status".into())),
        ("phase".to_string(), Value::Str(phase.into())),
    ];
    if let Some(c) = cache {
        fields.push(("cache".to_string(), Value::Str(c.into())));
    }
    Value::Object(fields)
}

/// Builds one streamed-event frame: the event's own JSON payload plus
/// its stream sequence number (clients reconstruct the exact
/// `events_jsonl` bytes from these).
pub fn event_frame(seq: usize, event: Value) -> Value {
    obj([
        ("type", Value::Str("event".into())),
        ("seq", Value::UInt(seq as u64)),
        ("event", event),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_json() {
        let req = Request {
            model: "gpt3-0.35b".into(),
            gpus: 4,
            stages: Some(2),
            zero: true,
            max_iterations: 12,
            budget_secs: Some(30),
            seed: 7,
            plan: true,
            request_id: Some("job-42".into()),
            search_threads: 4,
        };
        let back = Request::from_json_value(&req.to_json_value()).expect("parses");
        assert_eq!(back, req);
        // Null optionals roundtrip too.
        let bare = Request {
            model: "t5-3b".into(),
            ..Request::default()
        };
        let back = Request::from_json_value(&bare.to_json_value()).expect("parses");
        assert_eq!(back, bare);
    }

    #[test]
    fn requests_without_a_request_id_field_still_parse() {
        // A frame from a pre-checkpoint client omits the field entirely.
        let mut v = Request {
            model: "deepnet-8l".into(),
            ..Request::default()
        }
        .to_json_value();
        if let Value::Object(fields) = &mut v {
            fields.retain(|(k, _)| k != "request_id" && k != "search_threads");
        }
        let back = Request::from_json_value(&v).expect("parses without request_id");
        assert_eq!(back.request_id, None);
        assert_eq!(back.search_threads, 0, "absent field means daemon default");
    }

    #[test]
    fn search_options_mirror_request_knobs() {
        let req = Request {
            model: "gpt3-0.35b".into(),
            gpus: 4,
            stages: Some(2),
            zero: true,
            max_iterations: 12,
            budget_secs: Some(5),
            seed: 9,
            plan: false,
            request_id: None,
            search_threads: 3,
        };
        let o = req.search_options();
        assert_eq!(o.max_iterations, 12);
        assert_eq!(o.time_budget, Some(Duration::from_secs(5)));
        assert_eq!(o.stage_counts, Some(vec![2]));
        assert_eq!(o.seed, 9);
        assert!(o.gen_options.enable_zero);
        assert_eq!(o.search_threads, 3);
        // The daemon-side cap: a greedy request cannot oversubscribe.
        let greedy = Request {
            search_threads: 512,
            ..req
        };
        assert_eq!(greedy.search_options().search_threads, 16);
    }

    #[test]
    fn frames_carry_their_type_tags() {
        assert_eq!(
            error_frame("bad-frame", "x")
                .field("type")
                .unwrap()
                .as_str()
                .unwrap(),
            "error"
        );
        let s = status_frame("searching", Some("hit"));
        assert_eq!(s.field("cache").unwrap().as_str().unwrap(), "hit");
        assert!(status_frame("profiling", None).get("cache").is_none());
        let e = event_frame(3, Value::Null);
        assert_eq!(e.field("seq").unwrap().as_u64().unwrap(), 3);
    }

    #[test]
    fn tagging_appends_request_id_without_touching_other_fields() {
        let plain = status_frame("searching", Some("hit"));
        let tagged = tag_request_id(plain.clone(), "job-1");
        assert_eq!(
            tagged.field("request_id").unwrap().as_str().unwrap(),
            "job-1"
        );
        // Stripping the appended field restores the untagged bytes.
        let mut stripped = tagged;
        if let Value::Object(fields) = &mut stripped {
            fields.retain(|(k, _)| k != "request_id");
        }
        assert_eq!(stripped.to_string_compact(), plain.to_string_compact());
        // Non-objects pass through.
        assert_eq!(tag_request_id(Value::UInt(4), "x").as_u64().unwrap(), 4);
    }
}
