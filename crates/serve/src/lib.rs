//! Serve mode: a long-lived Aceso search daemon.
//!
//! Profiling a model is the expensive, amortisable part of an Aceso run
//! (the paper's §3.3 notes the profiled database "can be reused by the
//! search for models that contain the same operators"). A one-shot CLI
//! pays that cost on every invocation; this crate turns the search into
//! a std-only TCP service so the cost is paid once and shared:
//!
//! * [`wire`] — 4-byte big-endian length-prefixed JSON framing over
//!   `std::net`, reusing the in-tree JSON [`Value`] machinery;
//! * [`proto`] — the typed frame vocabulary ([`Request`], error/status/
//!   event frame builders);
//! * [`cache`] — [`ProfileCache`], the cross-request LRU profile-db
//!   cache keyed by (model fingerprint, cluster fingerprint);
//! * [`server`] — [`Server`], the bounded-worker accept loop with
//!   graceful drain, per-connection i/o deadlines, and (with
//!   `--spool-dir`) crash-recovery checkpoint spooling;
//! * [`reactor`] — the readiness-driven front-end (`--reactor`): every
//!   connection on one nonblocking event-loop thread, incremental
//!   framing, request pipelining with `request_id`-tagged responses,
//!   and round-robin fair dispatch into the worker pool;
//! * [`client`] — blocking [`submit`]/[`shutdown`]/[`server_stats`]
//!   helpers, the collected [`Response`], and [`submit_with_retries`]
//!   (bounded backoff with deterministic jitter);
//! * [`fault`] — [`FaultProxy`], a frame-boundary fault-injection proxy
//!   for crash-safety tests.
//!
//! The wire contract is specified in `docs/SERVER.md`. Served results
//! are deterministic: for iteration-budget requests, the event stream
//! and metric snapshot a client collects are byte-identical to a direct
//! in-process `AcesoSearch::run_observed` run (asserted by
//! `tests/serve.rs`).
//!
//! [`Value`]: aceso_util::json::Value

#![deny(missing_docs)]

pub mod cache;
pub mod client;
pub mod fault;
pub mod proto;
pub mod reactor;
pub mod server;
pub mod wire;

pub use cache::{cluster_fingerprint, model_fingerprint, ProfileCache};
pub use client::{
    server_stats, shutdown, submit, submit_pipelined, submit_with_retries,
    submit_with_retries_deadline, ClientError, PipelineCollector, Response,
};
pub use fault::{FaultMode, FaultProxy};
pub use proto::{error_frame, event_frame, status_frame, tag_request_id, Request};
pub use reactor::PIPELINE_DEPTH;
pub use server::{spool_path, sweep_spools, sweep_spools_with, ServeOptions, Server};
pub use wire::{
    read_frame, write_frame, FrameDecoder, WireError, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
