//! Length-prefixed JSON framing over a byte stream.
//!
//! Every frame is a 4-byte big-endian payload length followed by that
//! many bytes of UTF-8 JSON (one [`Value`] document). The format is
//! symmetric — requests and responses use the same framing — and
//! dependency-free: it reuses the in-tree JSON machinery and `std::io`.
//!
//! Frames larger than [`MAX_FRAME_BYTES`] are rejected *before* the
//! payload is read, so a malicious or confused peer cannot make the
//! server allocate unboundedly. The full frame-type vocabulary is
//! documented in `docs/SERVER.md`.

use aceso_util::json::Value;
use std::io::{Read, Write};

/// Version stamped into request and result frames as
/// `protocol_version`. Bump when a frame field changes meaning.
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard ceiling on one frame's payload size (16 MiB). Large enough for
/// any event stream the bounded searches produce, small enough that an
/// adversarial length prefix cannot exhaust memory.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The peer closed the stream mid-frame (or before one started).
    Closed,
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    Oversize(usize),
    /// The payload is not valid JSON.
    BadJson(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Closed => write!(f, "peer closed the stream"),
            WireError::Oversize(n) => {
                write!(
                    f,
                    "frame of {n} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
                )
            }
            WireError::BadJson(e) => write!(f, "frame payload is not valid JSON: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Closed
        } else {
            WireError::Io(e)
        }
    }
}

/// Writes one frame: 4-byte big-endian length, then the compact JSON
/// payload.
pub fn write_frame(w: &mut impl Write, v: &Value) -> Result<(), WireError> {
    let payload = v.to_string_compact();
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(WireError::Oversize(bytes.len()));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. Returns [`WireError::Closed`] on clean EOF before a
/// length prefix, [`WireError::Oversize`] without consuming the payload
/// when the prefix exceeds the limit.
pub fn read_frame(r: &mut impl Read) -> Result<Value, WireError> {
    let mut len_buf = [0u8; 4];
    // Distinguish clean EOF (no bytes at all) from a truncated prefix.
    let mut filled = 0usize;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            return Err(WireError::Closed);
        }
        filled += n;
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversize(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let text = String::from_utf8(payload).map_err(|e| WireError::BadJson(e.to_string()))?;
    Value::parse(&text).map_err(|e| WireError::BadJson(e.to_string()))
}

/// Incremental frame decoder for nonblocking readers.
///
/// The blocking [`read_frame`] owns its stream and can wait for a whole
/// frame; the reactor cannot. [`FrameDecoder`] accepts whatever bytes a
/// nonblocking read produced ([`FrameDecoder::extend`]) and yields
/// complete frames as they materialise ([`FrameDecoder::next_frame`]),
/// buffering partial prefixes and payloads across calls. The framing
/// rules are identical to [`read_frame`]: an oversize length prefix is
/// rejected before the payload is buffered, and a garbled payload
/// poisons only its own frame — the decoder stays aligned on the next
/// length prefix (INV-NONBLOCK's framing half; see `docs/SERVER.md`).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends bytes read from the peer.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// True when the buffer holds part of an unfinished frame (a torn
    /// length prefix or payload). A peer that stalls while this is true
    /// is mid-frame — the reactor's read-stall timeout applies; an idle
    /// peer (empty buffer) is not subject to it.
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Yields the next complete frame, `Ok(None)` when more bytes are
    /// needed. [`WireError::Oversize`] is returned without buffering the
    /// payload; [`WireError::BadJson`] consumes the offending frame's
    /// bytes so the following frame still parses.
    pub fn next_frame(&mut self) -> Result<Option<Value>, WireError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(WireError::Oversize(len));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload: Vec<u8> = self.buf.drain(..4 + len).skip(4).collect();
        let text = String::from_utf8(payload).map_err(|e| WireError::BadJson(e.to_string()))?;
        let v = Value::parse(&text).map_err(|e| WireError::BadJson(e.to_string()))?;
        Ok(Some(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_util::json::obj;

    #[test]
    fn roundtrip_preserves_value() {
        let v = obj([
            ("type", Value::Str("request".into())),
            ("n", Value::UInt(42)),
            ("x", Value::Float(1.25)),
        ]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &v).expect("writes");
        let back = read_frame(&mut buf.as_slice()).expect("reads");
        assert_eq!(back.to_string_compact(), v.to_string_compact());
    }

    #[test]
    fn multiple_frames_read_in_order() {
        let mut buf = Vec::new();
        for i in 0..3u64 {
            write_frame(&mut buf, &Value::UInt(i)).expect("writes");
        }
        let mut r = buf.as_slice();
        for i in 0..3u64 {
            assert_eq!(read_frame(&mut r).unwrap().as_u64().unwrap(), i);
        }
        assert!(matches!(read_frame(&mut r), Err(WireError::Closed)));
    }

    #[test]
    fn empty_stream_reads_as_closed() {
        let mut r: &[u8] = &[];
        assert!(matches!(read_frame(&mut r), Err(WireError::Closed)));
    }

    #[test]
    fn truncated_prefix_reads_as_closed() {
        let mut r: &[u8] = &[0, 0];
        assert!(matches!(read_frame(&mut r), Err(WireError::Closed)));
    }

    #[test]
    fn oversize_prefix_is_rejected_without_allocating() {
        let huge = ((MAX_FRAME_BYTES + 1) as u32).to_be_bytes();
        let mut r: &[u8] = &huge;
        match read_frame(&mut r) {
            Err(WireError::Oversize(n)) => assert_eq!(n, MAX_FRAME_BYTES + 1),
            other => panic!("expected oversize, got {other:?}"),
        }
    }

    /// A reader that delivers its bytes across a seam: everything before
    /// `seam` arrives first (possibly ending mid-prefix or mid-payload),
    /// then the rest. Models a peer whose frame is torn across TCP
    /// segments at an arbitrary byte boundary.
    struct Torn<'a> {
        bytes: &'a [u8],
        pos: usize,
        seam: usize,
    }

    impl Read for Torn<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            // Never read across the seam in one call.
            let limit = if self.pos < self.seam {
                self.seam
            } else {
                self.bytes.len()
            };
            let n = buf.len().min(limit - self.pos);
            buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    /// Tearing a frame at *every* byte boundary — inside the length
    /// prefix, inside the payload, between frames — must never confuse
    /// the reader: both frames always arrive intact and identical.
    #[test]
    fn frames_torn_at_every_byte_boundary_still_parse() {
        let first = obj([
            ("type", Value::Str("status".into())),
            ("phase", Value::Str("searching".into())),
        ]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &first).expect("writes");
        write_frame(&mut buf, &Value::UInt(99)).expect("writes");
        for seam in 0..=buf.len() {
            let mut r = Torn {
                bytes: &buf,
                pos: 0,
                seam,
            };
            let a = read_frame(&mut r).unwrap_or_else(|e| panic!("seam {seam}: {e}"));
            assert_eq!(a.to_string_compact(), first.to_string_compact());
            let b = read_frame(&mut r).unwrap_or_else(|e| panic!("seam {seam}: {e}"));
            assert_eq!(b.as_u64().unwrap(), 99);
            assert!(matches!(read_frame(&mut r), Err(WireError::Closed)));
        }
    }

    /// A stream truncated at *every* prefix length is an error — closed
    /// or i/o, depending on where the cut lands — and never a panic or a
    /// bogus frame.
    #[test]
    fn truncation_at_every_byte_boundary_is_an_error() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &obj([
                ("type", Value::Str("request".into())),
                ("n", Value::UInt(5)),
            ]),
        )
        .expect("writes");
        for cut in 0..buf.len() {
            assert!(
                read_frame(&mut &buf[..cut]).is_err(),
                "a frame cut at byte {cut} must not parse"
            );
        }
    }

    #[test]
    fn garbage_payload_is_bad_json() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_be_bytes());
        buf.extend_from_slice(b"{{{");
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(WireError::BadJson(_))
        ));
    }

    /// One valid wire frame of every frame kind the protocol can emit
    /// (`docs/SERVER.md` vocabulary: request, stats, shutdown, status,
    /// event, result, error, ok).
    fn frame_corpus() -> Vec<(&'static str, Value)> {
        let request = crate::proto::Request {
            model: "gpt3-0.35b".into(),
            request_id: Some("fuzz-1".into()),
            ..crate::proto::Request::default()
        };
        vec![
            ("request", aceso_util::json::ToJson::to_json_value(&request)),
            ("stats", obj([("type", Value::Str("stats".into()))])),
            ("shutdown", obj([("type", Value::Str("shutdown".into()))])),
            (
                "status",
                crate::proto::status_frame("searching", Some("hit")),
            ),
            (
                "event",
                crate::proto::event_frame(3, obj([("kind", Value::Str("accept".into()))])),
            ),
            (
                "result",
                obj([
                    ("type", Value::Str("result".into())),
                    ("protocol_version", Value::UInt(PROTOCOL_VERSION)),
                    ("model", Value::Str("gpt3-0.35b".into())),
                    ("iteration_time", Value::Float(0.125)),
                ]),
            ),
            (
                "error",
                crate::proto::error_frame("bad-request", "fuzz probe"),
            ),
            ("ok", obj([("type", Value::Str("ok".into()))])),
        ]
    }

    /// Seeded byte-mutation fuzz over every frame kind: flipping 1–3
    /// bytes of a valid frame must decode to a typed result — `Ok` or a
    /// `WireError` — never a panic. When every mutation lands in the
    /// payload region (the length prefix is intact), the error must be
    /// `BadJson` specifically, and a pristine sentinel frame written
    /// after the mutated one must still read back exactly: a corrupt
    /// payload may poison its own frame but never the stream framing.
    #[test]
    fn mutated_frames_decode_to_typed_errors_never_panic() {
        let sentinel = obj([("type", Value::Str("ok".into())), ("seq", Value::UInt(7))]);
        let mut rng = aceso_util::SplitMix64::new(0xF0_22_ED);
        for (kind, frame) in frame_corpus() {
            let mut pristine = Vec::new();
            write_frame(&mut pristine, &frame).expect("writes");
            let payload_len = pristine.len() - 4;
            for round in 0..200 {
                let mut bytes = pristine.clone();
                let flips = 1 + rng.next_below(3);
                let mut payload_only = true;
                for _ in 0..flips {
                    let at = rng.next_below(bytes.len());
                    if at < 4 {
                        payload_only = false;
                    }
                    bytes[at] ^= (rng.next_u64() % 255 + 1) as u8;
                }
                let mut stream = bytes;
                write_frame(&mut stream, &sentinel).expect("writes");
                let mut r = stream.as_slice();
                let first = read_frame(&mut r);
                if payload_only {
                    // Prefix intact: the frame boundary is unambiguous.
                    match &first {
                        Ok(v) => {
                            // A lucky mutation can still be valid JSON;
                            // typed decoding of it must not panic either.
                            let _ = <crate::proto::Request as aceso_util::json::FromJson>::from_json_value(v);
                        }
                        Err(WireError::BadJson(_)) => {}
                        Err(other) => panic!(
                            "{kind} round {round}: payload mutation must be \
                             Ok or BadJson, got {other:?}"
                        ),
                    }
                    let next = read_frame(&mut r).unwrap_or_else(|e| {
                        panic!("{kind} round {round}: sentinel lost after mutation: {e}")
                    });
                    assert_eq!(
                        next.to_string_compact(),
                        sentinel.to_string_compact(),
                        "{kind} round {round}: framing drifted"
                    );
                } else {
                    // A mutated length prefix may swallow the sentinel or
                    // claim an oversize frame; any typed outcome is fine,
                    // silent mis-framing into a *valid parse of different
                    // length* is what the Ok arm below would surface.
                    if let Ok(v) = first {
                        assert!(
                            v.to_string_compact().len() <= payload_len + sentinel_len(&sentinel),
                            "{kind} round {round}: parsed beyond the stream"
                        );
                    }
                }
            }
        }
    }

    fn sentinel_len(v: &Value) -> usize {
        v.to_string_compact().len() + 4
    }

    /// The incremental decoder agrees with the blocking reader no
    /// matter how the bytes are chunked: feeding the whole corpus one
    /// byte at a time yields exactly the frames [`read_frame`] yields.
    #[test]
    fn decoder_byte_at_a_time_matches_blocking_reader() {
        let mut stream = Vec::new();
        for (_, frame) in frame_corpus() {
            write_frame(&mut stream, &frame).expect("writes");
        }
        let mut dec = FrameDecoder::new();
        let mut decoded = Vec::new();
        for b in &stream {
            dec.extend(std::slice::from_ref(b));
            while let Some(v) = dec.next_frame().expect("valid corpus") {
                decoded.push(v.to_string_compact());
            }
        }
        assert!(!dec.mid_frame(), "corpus ends on a frame boundary");
        let expected: Vec<String> = frame_corpus()
            .into_iter()
            .map(|(_, f)| f.to_string_compact())
            .collect();
        assert_eq!(decoded, expected);
    }

    /// Oversize prefixes and garbled payloads surface as the same typed
    /// errors the blocking reader produces, and a bad payload never
    /// breaks alignment: the next frame still decodes.
    #[test]
    fn decoder_errors_are_typed_and_framing_survives_bad_json() {
        let mut dec = FrameDecoder::new();
        dec.extend(&((MAX_FRAME_BYTES + 1) as u32).to_be_bytes());
        match dec.next_frame() {
            Err(WireError::Oversize(n)) => assert_eq!(n, MAX_FRAME_BYTES + 1),
            other => panic!("expected oversize, got {other:?}"),
        }

        let mut dec = FrameDecoder::new();
        dec.extend(&3u32.to_be_bytes());
        dec.extend(b"{{{");
        let sentinel = obj([("type", Value::Str("ok".into()))]);
        let mut tail = Vec::new();
        write_frame(&mut tail, &sentinel).expect("writes");
        dec.extend(&tail);
        assert!(matches!(dec.next_frame(), Err(WireError::BadJson(_))));
        let next = dec.next_frame().expect("aligned").expect("sentinel");
        assert_eq!(next.to_string_compact(), sentinel.to_string_compact());
        assert!(!dec.mid_frame());
    }

    /// `mid_frame` tracks exactly whether an unfinished frame is
    /// buffered — the reactor's read-stall timeout keys off it.
    #[test]
    fn decoder_mid_frame_tracks_partial_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Value::UInt(7)).expect("writes");
        let mut dec = FrameDecoder::new();
        assert!(!dec.mid_frame());
        for cut in 1..buf.len() {
            let mut d = FrameDecoder::new();
            d.extend(&buf[..cut]);
            assert!(d.next_frame().expect("incomplete").is_none());
            assert!(d.mid_frame(), "cut at {cut} leaves a partial frame");
        }
        dec.extend(&buf);
        assert!(dec.next_frame().expect("ok").is_some());
        assert!(!dec.mid_frame());
    }

    /// Pipelining fuzz: several responses' frame sequences (status,
    /// events, result — each tagged with its `request_id`) are merged
    /// into one stream in a random order that preserves each response's
    /// own frame order, then delivered through the decoder in random
    /// chunk sizes. 200 seeded rounds must recover every frame exactly,
    /// in the merged order, with each response's subsequence intact —
    /// the wire half of INV-PIPELINE-ORDER (`docs/SERVER.md`).
    #[test]
    fn interleaved_pipelined_responses_survive_chunked_decoding() {
        let mut rng = aceso_util::SplitMix64::new(0x91_9E_11_4E);
        for round in 0..200 {
            let requests = 2 + rng.next_below(3); // 2..=4 pipelined requests
            let mut sequences: Vec<Vec<Value>> = Vec::new();
            for r in 0..requests {
                let id = format!("req-{round}-{r}");
                let tag = |mut v: Value| {
                    if let Value::Object(fields) = &mut v {
                        fields.push(("request_id".into(), Value::Str(id.clone())));
                    }
                    v
                };
                let mut seq = vec![tag(crate::proto::status_frame("profiling", None))];
                for s in 0..rng.next_below(4) {
                    seq.push(tag(crate::proto::event_frame(
                        s,
                        obj([("kind", Value::Str("accept".into()))]),
                    )));
                }
                seq.push(tag(obj([
                    ("type", Value::Str("result".into())),
                    ("explored", Value::UInt(r as u64)),
                ])));
                sequences.push(seq);
            }

            // Random order-preserving merge of the per-request sequences.
            let mut cursors = vec![0usize; sequences.len()];
            let mut merged: Vec<Value> = Vec::new();
            loop {
                let live: Vec<usize> = (0..sequences.len())
                    .filter(|&i| cursors[i] < sequences[i].len())
                    .collect();
                if live.is_empty() {
                    break;
                }
                let pick = live[rng.next_below(live.len())];
                merged.push(sequences[pick][cursors[pick]].clone());
                cursors[pick] += 1;
            }

            let mut stream = Vec::new();
            for frame in &merged {
                write_frame(&mut stream, frame).expect("writes");
            }

            // Deliver in random chunks (1..=17 bytes) through the decoder.
            let mut dec = FrameDecoder::new();
            let mut decoded: Vec<String> = Vec::new();
            let mut at = 0;
            while at < stream.len() {
                let n = (1 + rng.next_below(17)).min(stream.len() - at);
                dec.extend(&stream[at..at + n]);
                at += n;
                while let Some(v) = dec.next_frame().expect("valid frames") {
                    decoded.push(v.to_string_compact());
                }
            }
            assert!(!dec.mid_frame(), "round {round}: trailing bytes");
            let expected: Vec<String> = merged.iter().map(|v| v.to_string_compact()).collect();
            assert_eq!(decoded, expected, "round {round}: frame drift");

            // Each response's own frames stayed in order within the merge.
            for (r, seq) in sequences.iter().enumerate() {
                let id = format!("\"req-{round}-{r}\"");
                let mine: Vec<&String> = decoded.iter().filter(|s| s.contains(&id)).collect();
                let want: Vec<String> = seq.iter().map(|v| v.to_string_compact()).collect();
                assert_eq!(
                    mine.len(),
                    want.len(),
                    "round {round}: request {r} lost frames"
                );
                for (got, want) in mine.iter().zip(&want) {
                    assert_eq!(*got, want, "round {round}: request {r} frames reordered");
                }
            }
        }
    }

    /// Truncating every frame kind at every byte boundary (not just the
    /// request frame) is always a typed error.
    #[test]
    fn every_frame_kind_truncates_to_typed_errors() {
        for (kind, frame) in frame_corpus() {
            let mut buf = Vec::new();
            write_frame(&mut buf, &frame).expect("writes");
            for cut in 0..buf.len() {
                assert!(
                    read_frame(&mut &buf[..cut]).is_err(),
                    "{kind} cut at byte {cut} must not parse"
                );
            }
        }
    }
}
