//! Persistent on-disk store for [`ProfileDb`]s.
//!
//! Building a profile database is the serve daemon's dominant cold-start
//! cost, and the in-memory `ProfileCache` is warm only until the process
//! dies. This crate gives the cache a second tier: a directory of
//! fingerprint-addressed, versioned, checksummed files, shared across
//! restarts (and across daemons — concurrent writers are safe because
//! visibility is a single atomic rename).
//!
//! # File format
//!
//! One entry per `(model fingerprint, cluster fingerprint)` pair, named
//! `{model_fp:016x}-{cluster_fp:016x}.adb`. A file holds exactly two
//! newline-terminated lines:
//!
//! 1. a header: `{"store_schema_version": N, "checksum": C}` where `C`
//!    is FNV-1a over the raw bytes of line 2 (exclusive of its newline);
//! 2. the body: one compact JSON object with the cluster spec,
//!    precision, profiling cost, and the profiled grid encoded with the
//!    checkpoint subsystem's tricks — entries sorted by key, signatures
//!    run-length encoded (each distinct operator signature once plus a
//!    run count), and times as flat arrays of raw `f64` bit patterns so
//!    decoding is bit-exact.
//!
//! # Contract
//!
//! * INV-STORE-ATOMIC: an entry becomes visible only through `rename`
//!   of a fully written temp file, so a reader (including one racing a
//!   SIGKILL'd writer) never observes a partially written entry.
//! * INV-STORE-DEGRADE: a corrupt, truncated, foreign, or
//!   future-version file yields a typed [`DegradeReason`] — the caller
//!   rebuilds from scratch — never an error and never a wrong database.
//! * INV-STORE-BITEXACT: a database decoded from the store returns the
//!   same `f64` bit patterns as the database that was encoded.
//!
//! The full format and degradation contract live in `docs/STORE.md`,
//! whose anchors are enforced against this crate by `tests/store_doc.rs`.

use aceso_cluster::ClusterSpec;
use aceso_model::Precision;
use aceso_profile::ProfileDb;
use aceso_util::fnv1a;
use aceso_util::fsio::{self, Fs, RealFs};
use aceso_util::json::{obj, FromJson, ToJson, Value};
use aceso_util::retention;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Version stamped into every store file header. Bumped whenever the
/// body encoding changes shape; files with any other version degrade to
/// a rebuild (INV-STORE-DEGRADE), they are never misread.
pub const STORE_SCHEMA_VERSION: u64 = 1;

/// Suffix of finished store entries.
pub const STORE_SUFFIX: &str = ".adb";

/// Why a store file could not be used, in decode-precedence order.
///
/// Every variant is a degrade-to-rebuild, not an error: the caller
/// builds the database fresh and reports the reason as a typed obs
/// event (INV-STORE-DEGRADE).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradeReason {
    /// The file could not be read (permissions, I/O error).
    Io(String),
    /// The file is empty or missing its body line entirely.
    Truncated,
    /// Line 1 is not a well-formed header object.
    MalformedHeader,
    /// The header names a schema version this build does not speak
    /// (older or newer).
    UnknownVersion(u64),
    /// The body bytes do not hash to the header's checksum (torn or
    /// flipped bits).
    ChecksumMismatch,
    /// The checksum held but the body is not a well-formed entry.
    MalformedBody(String),
    /// The body's embedded fingerprints differ from the requested key —
    /// a foreign file parked under our name.
    Foreign,
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradeReason::Io(e) => write!(f, "unreadable: {e}"),
            DegradeReason::Truncated => write!(f, "truncated"),
            DegradeReason::MalformedHeader => write!(f, "malformed header"),
            DegradeReason::UnknownVersion(v) => {
                write!(f, "unknown store schema version {v}")
            }
            DegradeReason::ChecksumMismatch => write!(f, "checksum mismatch"),
            DegradeReason::MalformedBody(e) => write!(f, "malformed body: {e}"),
            DegradeReason::Foreign => write!(f, "foreign fingerprints"),
        }
    }
}

/// A load that found a file but could not use it: which file, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degraded {
    /// File name (not full path) of the offending entry.
    pub file: String,
    /// What was wrong with it.
    pub reason: DegradeReason,
}

/// One store entry as seen by the admin CLI (`aceso store ls|verify`).
#[derive(Debug)]
pub struct EntryInfo {
    /// File name within the store directory.
    pub file: String,
    /// File size in bytes.
    pub bytes: u64,
    /// Schema version from the header, when the header parsed.
    pub schema_version: Option<u64>,
    /// Profiled grid entries in the body, when the body decoded.
    pub entries: Option<usize>,
    /// `Ok` when the file decodes cleanly under its own file name,
    /// otherwise the degrade reason `serve` would report for it.
    pub status: Result<(), DegradeReason>,
}

/// Handle on one store directory plus its retention budget.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
    budget_bytes: u64,
    fs: Arc<dyn Fs>,
    direct_writes: bool,
    sweep_errors: Arc<AtomicU64>,
}

impl Store {
    /// Opens (creating if needed) the store rooted at `dir`.
    pub fn open(dir: &Path, budget_bytes: u64) -> std::io::Result<Self> {
        Self::open_with(dir, budget_bytes, Arc::new(RealFs))
    }

    /// [`Store::open`] over an injectable filesystem. Production code
    /// passes [`RealFs`] (via [`Store::open`]); the chaos engine passes
    /// a `ChaosFs` to exercise the store's fault contract.
    pub fn open_with(dir: &Path, budget_bytes: u64, fs: Arc<dyn Fs>) -> std::io::Result<Self> {
        fs.create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            budget_bytes,
            fs,
            direct_writes: false,
            sweep_errors: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Mutation-gate hook (`aceso chaos run --mutate store-direct-write`):
    /// when enabled, [`Store::save`] and touch-on-load write entries
    /// *directly* to their final path instead of via temp+rename —
    /// deliberately breaking INV-STORE-ATOMIC so the chaos engine can
    /// prove its oracles catch torn entries. Never enabled in
    /// production paths.
    pub fn set_direct_writes(&mut self, on: bool) {
        self.direct_writes = on;
    }

    /// Drains the count of retention-sweep removals that failed since
    /// the last call (INV-CHAOS-SWEEP; feeds `retention_sweep_errors`).
    pub fn take_sweep_errors(&self) -> u64 {
        self.sweep_errors.swap(0, Ordering::Relaxed)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path an entry for this key lives at (whether or not it exists).
    pub fn entry_path(&self, model_fp: u64, cluster_fp: u64) -> PathBuf {
        self.dir.join(entry_name(model_fp, cluster_fp))
    }

    /// Loads the entry for `(model_fp, cluster_fp)`.
    ///
    /// `Ok(None)` is a plain miss (no file). `Err` means a file was
    /// present but unusable; per INV-STORE-DEGRADE the caller must
    /// treat this exactly like a miss, plus report the typed reason.
    /// A successful load refreshes the entry's modification time (the
    /// disk-LRU clock) by atomically rewriting it.
    pub fn load(&self, model_fp: u64, cluster_fp: u64) -> Result<Option<ProfileDb>, Degraded> {
        let path = self.entry_path(model_fp, cluster_fp);
        let file = entry_name(model_fp, cluster_fp);
        let bytes = match self.fs.read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(Degraded {
                    file,
                    reason: DegradeReason::Io(e.to_string()),
                })
            }
        };
        let text = String::from_utf8_lossy(&bytes);
        let db = decode(&text, Some((model_fp, cluster_fp)))
            .map_err(|reason| Degraded { file, reason })?;
        // Touch-on-load: std cannot set mtimes, so the LRU clock is
        // refreshed by rewriting the (identical) bytes atomically. Losing
        // the race against an eviction or a concurrent writer is fine —
        // the rename either lands or the file was replaced with equally
        // valid contents (INV-STORE-ATOMIC).
        let _ = self.write_entry(&path, &bytes);
        Ok(Some(db))
    }

    /// Encodes `db` under `(model_fp, cluster_fp)` and publishes it with
    /// a temp-file write + rename (INV-STORE-ATOMIC), then enforces the
    /// byte budget by evicting least-recently-used entries (never the
    /// one just written). Returns how many entries were evicted.
    pub fn save(&self, model_fp: u64, cluster_fp: u64, db: &ProfileDb) -> std::io::Result<usize> {
        let path = self.entry_path(model_fp, cluster_fp);
        let text = encode(db, model_fp, cluster_fp);
        self.write_entry(&path, text.as_bytes())?;
        Ok(self.evict(&path))
    }

    /// Evicts oldest-first until the store fits its byte budget,
    /// sparing `keep`. Returns the number of files removed; failed
    /// removals are counted into [`Store::take_sweep_errors`] rather
    /// than swallowed (INV-CHAOS-SWEEP).
    fn evict(&self, keep: &Path) -> usize {
        let files = retention::scan_dir_with(self.fs.as_ref(), &self.dir, &[STORE_SUFFIX]);
        let victims = retention::over_budget_lru(&files, self.budget_bytes, &[keep]);
        let outcome = retention::remove_all_with(self.fs.as_ref(), &victims);
        self.sweep_errors
            .fetch_add(outcome.errors as u64, Ordering::Relaxed);
        outcome.removed
    }

    /// Publishes entry bytes at `path`: temp file + rename
    /// (INV-STORE-ATOMIC) unless the [`Store::set_direct_writes`]
    /// mutation gate is on.
    fn write_entry(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        if self.direct_writes {
            return self.fs.write(path, bytes);
        }
        let file = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        // The pid suffix keeps concurrent daemons sharing one store from
        // clobbering each other's in-flight temp files.
        let tmp = path.with_file_name(format!("{file}.tmp.{}", std::process::id()));
        fsio::write_atomic(self.fs.as_ref(), path, &tmp, bytes)
    }

    /// Inspects every `.adb` file in the store, decoding each under its
    /// own file name. Sorted by file name for stable CLI output.
    pub fn ls(&self) -> Vec<EntryInfo> {
        let mut files = retention::scan_dir_with(self.fs.as_ref(), &self.dir, &[STORE_SUFFIX]);
        files.sort_by(|a, b| a.path.cmp(&b.path));
        files
            .iter()
            .map(|f| {
                let file = f
                    .path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let expected = parse_entry_name(&file);
                let (schema_version, entries, status) = match self.fs.read(&f.path) {
                    Err(e) => (None, None, Err(DegradeReason::Io(e.to_string()))),
                    Ok(bytes) => {
                        let text = String::from_utf8_lossy(&bytes);
                        let version = header_version(&text);
                        match (expected, decode(&text, expected)) {
                            (None, _) => (version, None, Err(DegradeReason::Foreign)),
                            (Some(_), Ok(db)) => (version, Some(db.len()), Ok(())),
                            (Some(_), Err(reason)) => (version, None, Err(reason)),
                        }
                    }
                };
                EntryInfo {
                    file,
                    bytes: f.len,
                    schema_version,
                    entries,
                    status,
                }
            })
            .collect()
    }

    /// Removes every entry [`Self::ls`] flags as unusable, plus leftover
    /// temp files from writers that died mid-write (their renames never
    /// happened, so they were never visible entries). Returns the number
    /// of files removed.
    pub fn prune(&self) -> usize {
        let mut removed = 0usize;
        for info in self.ls() {
            if info.status.is_err() && self.fs.remove_file(&self.dir.join(&info.file)).is_ok() {
                removed += 1;
            }
        }
        if let Ok(entries) = self.fs.scan_dir(&self.dir) {
            for entry in entries {
                let Some(name) = entry.path.file_name().and_then(|n| n.to_str()) else {
                    continue;
                };
                if name.contains(".adb.tmp.") && self.fs.remove_file(&entry.path).is_ok() {
                    removed += 1;
                }
            }
        }
        removed
    }
}

/// Canonical entry file name for a key.
pub fn entry_name(model_fp: u64, cluster_fp: u64) -> String {
    format!("{model_fp:016x}-{cluster_fp:016x}{STORE_SUFFIX}")
}

/// Parses a file name produced by [`entry_name`] back into its key.
pub fn parse_entry_name(name: &str) -> Option<(u64, u64)> {
    let stem = name.strip_suffix(STORE_SUFFIX)?;
    let (m, c) = stem.split_once('-')?;
    if m.len() != 16 || c.len() != 16 {
        return None;
    }
    Some((
        u64::from_str_radix(m, 16).ok()?,
        u64::from_str_radix(c, 16).ok()?,
    ))
}

/// Serialises `db` into the two-line store format described in the
/// crate docs. Deterministic: entries are emitted in canonical key
/// order and times as raw bit patterns (INV-STORE-BITEXACT).
pub fn encode(db: &ProfileDb, model_fp: u64, cluster_fp: u64) -> String {
    let dump = db.canonical_entries();
    let mut sigs: Vec<Value> = Vec::new();
    let mut counts: Vec<u64> = Vec::new();
    let mut tps = Vec::with_capacity(dump.len());
    let mut dims = Vec::with_capacity(dump.len());
    let mut batches = Vec::with_capacity(dump.len());
    let mut times_bits = Vec::with_capacity(dump.len());
    let mut last_sig: Option<u64> = None;
    for (sig, tp, dim, batch, bits) in dump {
        // RLE over the sorted dump: each distinct operator signature is
        // written once with a run count instead of once per grid point.
        if last_sig != Some(sig) {
            sigs.push(Value::UInt(sig));
            counts.push(0);
            last_sig = Some(sig);
        }
        *counts.last_mut().expect("run exists") += 1;
        tps.push(Value::UInt(u64::from(tp)));
        dims.push(Value::UInt(u64::from(dim)));
        batches.push(Value::UInt(batch));
        times_bits.push(Value::UInt(bits));
    }
    let body = obj([
        ("model_fp", Value::UInt(model_fp)),
        ("cluster_fp", Value::UInt(cluster_fp)),
        ("cluster", db.cluster().to_json_value()),
        ("precision", db.precision().to_json_value()),
        (
            "profiling_seconds_bits",
            Value::UInt(db.simulated_profiling_seconds().to_bits()),
        ),
        ("sigs", Value::Array(sigs)),
        (
            "counts",
            Value::Array(counts.into_iter().map(Value::UInt).collect()),
        ),
        ("tps", Value::Array(tps)),
        ("dims", Value::Array(dims)),
        ("batches", Value::Array(batches)),
        ("times_bits", Value::Array(times_bits)),
    ])
    .to_string_compact();
    let header = obj([
        ("store_schema_version", Value::UInt(STORE_SCHEMA_VERSION)),
        ("checksum", Value::UInt(fnv1a(body.as_bytes()))),
    ])
    .to_string_compact();
    format!("{header}\n{body}\n")
}

/// Schema version stated in a file's header line, if it parses at all
/// (used by `aceso store ls` to show versions of undecodable files).
pub fn header_version(text: &str) -> Option<u64> {
    let header = text.lines().next()?;
    let v = Value::parse(header).ok()?;
    v.field("store_schema_version").ok()?.as_u64().ok()
}

/// Decodes one store file back into a [`ProfileDb`].
///
/// Checks run in precedence order — header shape, schema version,
/// checksum, body shape, then (when `expected` is given) embedded
/// fingerprints against the requested key — so the reported
/// [`DegradeReason`] names the outermost problem. Any failure is a
/// degrade, never a partially decoded database (INV-STORE-DEGRADE).
pub fn decode(text: &str, expected: Option<(u64, u64)>) -> Result<ProfileDb, DegradeReason> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .filter(|l| !l.is_empty())
        .ok_or(DegradeReason::Truncated)?;
    let header = Value::parse(header).map_err(|_| DegradeReason::MalformedHeader)?;
    let version = header
        .field("store_schema_version")
        .and_then(|v| v.as_u64())
        .map_err(|_| DegradeReason::MalformedHeader)?;
    if version != STORE_SCHEMA_VERSION {
        return Err(DegradeReason::UnknownVersion(version));
    }
    let checksum = header
        .field("checksum")
        .and_then(|v| v.as_u64())
        .map_err(|_| DegradeReason::MalformedHeader)?;
    let body = lines.next().ok_or(DegradeReason::Truncated)?;
    if fnv1a(body.as_bytes()) != checksum {
        return Err(DegradeReason::ChecksumMismatch);
    }
    let body = Value::parse(body).map_err(|e| DegradeReason::MalformedBody(e.to_string()))?;
    parse_body(&body, expected)
}

/// Body-shape decoding behind [`decode`]'s integrity gates.
fn parse_body(body: &Value, expected: Option<(u64, u64)>) -> Result<ProfileDb, DegradeReason> {
    let bad = |e: aceso_util::json::JsonError| DegradeReason::MalformedBody(e.to_string());
    let shape = |msg: &str| DegradeReason::MalformedBody(msg.to_string());
    let model_fp = body
        .field("model_fp")
        .and_then(|v| v.as_u64())
        .map_err(bad)?;
    let cluster_fp = body
        .field("cluster_fp")
        .and_then(|v| v.as_u64())
        .map_err(bad)?;
    if let Some((m, c)) = expected {
        if (model_fp, cluster_fp) != (m, c) {
            return Err(DegradeReason::Foreign);
        }
    }
    let cluster = ClusterSpec::from_json_value(body.field("cluster").map_err(bad)?).map_err(bad)?;
    let precision =
        Precision::from_json_value(body.field("precision").map_err(bad)?).map_err(bad)?;
    let profiling_seconds = f64::from_bits(
        body.field("profiling_seconds_bits")
            .and_then(|v| v.as_u64())
            .map_err(bad)?,
    );
    let u64s = |key: &str| -> Result<Vec<u64>, DegradeReason> {
        body.field(key)
            .and_then(|v| v.as_array())
            .map_err(bad)?
            .iter()
            .map(|v| v.as_u64())
            .collect::<Result<_, _>>()
            .map_err(bad)
    };
    let sigs = u64s("sigs")?;
    let counts = u64s("counts")?;
    let tps = u64s("tps")?;
    let dims = u64s("dims")?;
    let batches = u64s("batches")?;
    let times_bits = u64s("times_bits")?;
    if sigs.len() != counts.len() {
        return Err(shape("sigs/counts length mismatch"));
    }
    let total: u64 = counts.iter().sum();
    let total = usize::try_from(total).map_err(|_| shape("entry count overflows"))?;
    if tps.len() != total
        || dims.len() != total
        || batches.len() != total
        || times_bits.len() != total
    {
        return Err(shape("flat array length mismatch"));
    }
    let mut entries = Vec::with_capacity(total);
    let mut i = 0usize;
    for (sig, count) in sigs.iter().zip(&counts) {
        for _ in 0..*count {
            let tp = u32::try_from(tps[i]).map_err(|_| shape("tp out of range"))?;
            let dim = u8::try_from(dims[i]).map_err(|_| shape("dim out of range"))?;
            entries.push((*sig, tp, dim, batches[i], times_bits[i]));
            i += 1;
        }
    }
    Ok(ProfileDb::from_raw_parts(
        cluster,
        precision,
        profiling_seconds,
        entries,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_model::zoo::gpt3_custom;
    use aceso_util::SplitMix64;

    fn setup() -> (ProfileDb, u64, u64) {
        let model = gpt3_custom("t", 2, 256, 4, 128, 1000, 64);
        let cluster = ClusterSpec::v100(1, 4);
        let db = ProfileDb::build(&model, &cluster);
        (db, 0x1111_2222_3333_4444, 0x5555_6666_7777_8888)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aceso-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn encode_decode_roundtrip_is_bit_exact() {
        let (db, m, c) = setup();
        let text = encode(&db, m, c);
        let back = decode(&text, Some((m, c))).expect("decodes");
        assert_eq!(back.canonical_entries(), db.canonical_entries());
        assert_eq!(back.precision(), db.precision());
        assert_eq!(
            back.simulated_profiling_seconds().to_bits(),
            db.simulated_profiling_seconds().to_bits()
        );
        assert_eq!(back.cluster(), db.cluster());
        // Deterministic encoding: same db encodes to identical bytes.
        assert_eq!(text, encode(&db, m, c));
    }

    #[test]
    fn store_save_load_roundtrip_and_miss() {
        let dir = tmpdir("roundtrip");
        let store = Store::open(&dir, u64::MAX).expect("open");
        let (db, m, c) = setup();
        assert!(store.load(m, c).expect("clean miss").is_none());
        store.save(m, c, &db).expect("save");
        let back = store.load(m, c).expect("no degrade").expect("hit");
        assert_eq!(back.canonical_entries(), db.canonical_entries());
        // The touch-on-load rewrite kept the entry decodable.
        let back2 = store.load(m, c).expect("no degrade").expect("hit");
        assert_eq!(back2.len(), db.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_key_degrades_as_foreign() {
        let (db, m, c) = setup();
        let text = encode(&db, m, c);
        assert_eq!(
            decode(&text, Some((m + 1, c))).expect_err("foreign"),
            DegradeReason::Foreign
        );
    }

    #[test]
    fn future_version_degrades_not_misreads() {
        let (db, m, c) = setup();
        let text = encode(&db, m, c);
        let bumped = text.replacen(
            &format!("\"store_schema_version\":{STORE_SCHEMA_VERSION}"),
            "\"store_schema_version\":999",
            1,
        );
        assert_ne!(bumped, text, "version field located");
        assert_eq!(
            decode(&bumped, Some((m, c))).expect_err("future version"),
            DegradeReason::UnknownVersion(999)
        );
    }

    #[test]
    fn every_truncation_degrades_typed() {
        let (db, m, c) = setup();
        let text = encode(&db, m, c);
        // Exhaustive over a stride (full byte-by-byte is O(n²) on a big
        // body); always include the boundary cases.
        let mut cuts: Vec<usize> = (0..text.len()).step_by(37).collect();
        cuts.extend([0, 1, text.len() - 1]);
        for cut in cuts {
            let t = &text[..cut];
            if let Ok(db2) = decode(t, Some((m, c))) {
                // Only acceptable if the cut preserved the whole payload.
                assert_eq!(db2.canonical_entries(), db.canonical_entries(), "cut={cut}");
            }
            // No panic and no wrong db is the contract; reasons vary.
        }
    }

    #[test]
    fn every_byte_flip_degrades_or_roundtrips() {
        let (db, m, c) = setup();
        let text = encode(&db, m, c);
        let bytes = text.as_bytes();
        let mut rng = SplitMix64::new(0xACE5_0057);
        for round in 0..200 {
            let mut mutated = bytes.to_vec();
            let pos = (rng.next_u64() as usize) % mutated.len();
            let flip = 1u8 << (rng.next_u64() % 8) as u8;
            mutated[pos] ^= flip;
            let mutated = String::from_utf8_lossy(&mutated).into_owned();
            // A flip inside the body must be caught by the checksum or
            // the header gates; a decode can only succeed if the flip
            // landed somewhere semantically dead — and then it must
            // still be the *right* database.
            if let Ok(db2) = decode(&mutated, Some((m, c))) {
                assert_eq!(
                    db2.canonical_entries(),
                    db.canonical_entries(),
                    "round={round} pos={pos}"
                );
            }
        }
    }

    #[test]
    fn body_flip_is_checksum_mismatch() {
        let (db, m, c) = setup();
        let text = encode(&db, m, c);
        let nl = text.find('\n').expect("two lines");
        let mut bytes = text.into_bytes();
        // Flip a digit deep in the body, keeping JSON plausibly valid.
        let pos = nl + (bytes.len() - nl) / 2;
        bytes[pos] ^= 0x01;
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        assert_eq!(
            decode(&mutated, Some((m, c))).expect_err("flip caught"),
            DegradeReason::ChecksumMismatch
        );
    }

    #[test]
    fn lru_eviction_spares_newest_write() {
        let dir = tmpdir("evict");
        let (db, m, c) = setup();
        let one_entry = encode(&db, m, c).len() as u64;
        // Budget for roughly two entries.
        let store = Store::open(&dir, one_entry * 2 + one_entry / 2).expect("open");
        for i in 0..4u64 {
            store.save(m + i, c, &db).expect("save");
        }
        let left = store.ls();
        assert!(left.len() < 4, "eviction happened");
        // The most recent write always survives its own save.
        assert!(left.iter().any(|e| e.file == entry_name(m + 3, c)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ls_verify_and_prune_flag_bad_entries() {
        let dir = tmpdir("verify");
        let store = Store::open(&dir, u64::MAX).expect("open");
        let (db, m, c) = setup();
        store.save(m, c, &db).expect("save");
        // A corrupt sibling and a stale temp file.
        std::fs::write(dir.join(entry_name(m + 1, c)), "garbage\n").expect("write");
        std::fs::write(dir.join("deadbeef.adb.tmp.42"), "partial").expect("write");
        let infos = store.ls();
        assert_eq!(infos.len(), 2, "temp files are not entries");
        let good = infos.iter().find(|e| e.status.is_ok()).expect("good entry");
        assert_eq!(good.schema_version, Some(STORE_SCHEMA_VERSION));
        assert_eq!(good.entries, Some(db.len()));
        let bad = infos.iter().find(|e| e.status.is_err()).expect("bad entry");
        assert_eq!(bad.file, entry_name(m + 1, c));
        let removed = store.prune();
        assert_eq!(removed, 2, "bad entry + stale temp");
        assert_eq!(store.ls().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_names_roundtrip() {
        assert_eq!(
            parse_entry_name(&entry_name(7, u64::MAX)),
            Some((7, u64::MAX))
        );
        assert_eq!(parse_entry_name("not-a-store-file.adb"), None);
        assert_eq!(parse_entry_name("0000000000000007.adb"), None);
    }
}
