//! Execution reports.

/// Measured results of one simulated training iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Measured iteration time, seconds.
    pub iteration_time: f64,
    /// Peak memory per stage device, bytes.
    pub peak_memory_per_stage: Vec<u64>,
    /// Largest per-device peak across stages, bytes.
    pub peak_memory: u64,
    /// Device capacity the run was executed against, bytes.
    pub mem_capacity: u64,
    /// Per-stage busy fraction (compute+comm time / iteration time).
    pub stage_utilization: Vec<f64>,
    /// Samples per second.
    pub throughput: f64,
    /// Effective TFLOPS per GPU (recomputation excluded, as in the
    /// paper's appendix tables).
    pub tflops_per_gpu: f64,
}

impl SimReport {
    /// Whether the execution stayed within device memory.
    pub fn ok(&self) -> bool {
        self.peak_memory <= self.mem_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_flags_oom() {
        let mut r = SimReport {
            iteration_time: 1.0,
            peak_memory_per_stage: vec![10, 20],
            peak_memory: 20,
            mem_capacity: 25,
            stage_utilization: vec![0.9, 0.8],
            throughput: 100.0,
            tflops_per_gpu: 50.0,
        };
        assert!(r.ok());
        r.peak_memory = 30;
        assert!(!r.ok());
    }
}
