//! Execution timelines in Chrome tracing format.
//!
//! `chrome://tracing` / Perfetto read a simple JSON array of duration
//! events; exporting the simulator's per-task timeline there makes
//! pipeline bubbles, stragglers and imbalance visually obvious — the
//! debugging workflow one would use on a real cluster's profiler traces.

use aceso_util::json::{obj, Value};

/// One executed task on the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Pipeline stage (rendered as the trace "thread").
    pub stage: usize,
    /// Microbatch index.
    pub microbatch: usize,
    /// `"fwd"` or `"bwd"`.
    pub kind: &'static str,
    /// Start time, seconds from iteration start.
    pub start: f64,
    /// Duration, seconds.
    pub duration: f64,
}

/// Renders events as a Chrome tracing JSON document (microsecond units).
pub fn to_chrome_trace(events: &[TimelineEvent]) -> String {
    let rows: Vec<Value> = events
        .iter()
        .map(|e| {
            obj([
                ("name", Value::Str(format!("{} mb{}", e.kind, e.microbatch))),
                ("cat", Value::Str(e.kind.to_string())),
                ("ph", Value::Str("X".to_string())),
                ("ts", Value::Float(e.start * 1e6)),
                ("dur", Value::Float(e.duration * 1e6)),
                ("pid", Value::UInt(0)),
                ("tid", Value::UInt(e.stage as u64)),
            ])
        })
        .collect();
    Value::Array(rows).to_string_compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_trace_format() {
        let events = vec![
            TimelineEvent {
                stage: 0,
                microbatch: 0,
                kind: "fwd",
                start: 0.0,
                duration: 0.5e-3,
            },
            TimelineEvent {
                stage: 1,
                microbatch: 0,
                kind: "bwd",
                start: 1.0e-3,
                duration: 1.0e-3,
            },
        ];
        let json = to_chrome_trace(&events);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("fwd mb0"));
        assert!(json.contains("\"tid\":1"));
        // Durations are microseconds.
        assert!(json.contains("\"dur\":500"));
    }

    #[test]
    fn empty_trace_is_valid_json() {
        assert_eq!(to_chrome_trace(&[]), "[]");
    }
}
