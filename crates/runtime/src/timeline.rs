//! Execution timelines in Chrome tracing format.
//!
//! `chrome://tracing` / Perfetto read a simple JSON array of duration
//! events; exporting the simulator's per-task timeline there makes
//! pipeline bubbles, stragglers and imbalance visually obvious — the
//! debugging workflow one would use on a real cluster's profiler traces.

use serde::{Deserialize, Serialize};

/// One executed task on the timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineEvent {
    /// Pipeline stage (rendered as the trace "thread").
    pub stage: usize,
    /// Microbatch index.
    pub microbatch: usize,
    /// `"fwd"` or `"bwd"`.
    pub kind: &'static str,
    /// Start time, seconds from iteration start.
    pub start: f64,
    /// Duration, seconds.
    pub duration: f64,
}

/// Renders events as a Chrome tracing JSON document (microsecond units).
pub fn to_chrome_trace(events: &[TimelineEvent]) -> String {
    #[derive(Serialize)]
    struct ChromeEvent<'a> {
        name: String,
        cat: &'a str,
        ph: &'a str,
        ts: f64,
        dur: f64,
        pid: u32,
        tid: usize,
    }
    let rows: Vec<ChromeEvent> = events
        .iter()
        .map(|e| ChromeEvent {
            name: format!("{} mb{}", e.kind, e.microbatch),
            cat: e.kind,
            ph: "X",
            ts: e.start * 1e6,
            dur: e.duration * 1e6,
            pid: 0,
            tid: e.stage,
        })
        .collect();
    serde_json::to_string(&rows).expect("trace serialises")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_trace_format() {
        let events = vec![
            TimelineEvent {
                stage: 0,
                microbatch: 0,
                kind: "fwd",
                start: 0.0,
                duration: 0.5e-3,
            },
            TimelineEvent {
                stage: 1,
                microbatch: 0,
                kind: "bwd",
                start: 1.0e-3,
                duration: 1.0e-3,
            },
        ];
        let json = to_chrome_trace(&events);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("fwd mb0"));
        assert!(json.contains("\"tid\":1"));
        // Durations are microseconds.
        assert!(json.contains("\"dur\":500"));
    }

    #[test]
    fn empty_trace_is_valid_json() {
        assert_eq!(to_chrome_trace(&[]), "[]");
    }
}
