//! The event-driven pipeline execution engine.

use crate::memory::actual_peak_memory;
use crate::report::SimReport;
use crate::schedule::{schedule_tasks, PipelineSchedule, Task};
use crate::timeline::TimelineEvent;
use aceso_cluster::ClusterSpec;
use aceso_config::{ConfigError, ParallelConfig};
use aceso_model::ModelGraph;
use aceso_obs::{Counter, Event, Recorder};
use aceso_perf::PerfModel;
use aceso_profile::ProfileDb;
use aceso_util::hash::keyed_jitter;
use aceso_util::FnvHasher;

/// Simulator knobs.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Seed for per-task jitter and allocator behaviour.
    pub seed: u64,
    /// Relative per-task duration jitter.
    pub jitter: f64,
    /// Framework overhead per forward task (Python/driver bookkeeping the
    /// analytic model does not account for), seconds.
    pub fwd_overhead: f64,
    /// Framework overhead per backward task, seconds.
    pub bwd_overhead: f64,
    /// Pipeline scheduling discipline to execute.
    pub schedule: PipelineSchedule,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            seed: 0x51_AC_E5,
            jitter: 0.03,
            fwd_overhead: 0.15e-3,
            bwd_overhead: 0.3e-3,
            schedule: PipelineSchedule::OneFOneB,
        }
    }
}

/// Discrete-event 1F1B simulator over a profiled cluster.
pub struct Simulator<'a> {
    model: &'a ModelGraph,
    cluster: &'a ClusterSpec,
    db: &'a ProfileDb,
    options: SimOptions,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator.
    pub fn new(
        model: &'a ModelGraph,
        cluster: &'a ClusterSpec,
        db: &'a ProfileDb,
        options: SimOptions,
    ) -> Self {
        Self {
            model,
            cluster,
            db,
            options,
        }
    }

    /// Creates a simulator with default options.
    pub fn with_defaults(
        model: &'a ModelGraph,
        cluster: &'a ClusterSpec,
        db: &'a ProfileDb,
    ) -> Self {
        Self::new(model, cluster, db, SimOptions::default())
    }

    /// Deterministic per-task jitter factor.
    fn task_jitter(&self, cfg_hash: u64, stage: usize, mb: usize, bwd: bool) -> f64 {
        let mut h = FnvHasher::new();
        h.write_u64(self.options.seed);
        h.write_u64(cfg_hash);
        h.write_usize(stage);
        h.write_usize(mb);
        h.write_bool(bwd);
        keyed_jitter(h.finish(), self.options.jitter)
    }

    /// Executes one training iteration of `config` and reports measured
    /// time, memory, throughput and TFLOPS.
    pub fn execute(&self, config: &ParallelConfig) -> Result<SimReport, ConfigError> {
        self.run(config, None, None)
    }

    /// Like [`Self::execute`], additionally returning the per-task
    /// timeline (exportable with [`crate::timeline::to_chrome_trace`]).
    pub fn execute_traced(
        &self,
        config: &ParallelConfig,
    ) -> Result<(SimReport, Vec<TimelineEvent>), ConfigError> {
        let mut events = Vec::new();
        let report = self.run(config, Some(&mut events), None)?;
        Ok((report, events))
    }

    /// Like [`Self::execute`], recording a `sim_run` event plus the
    /// simulator counters into `rec`.
    pub fn execute_observed(
        &self,
        config: &ParallelConfig,
        rec: &Recorder,
    ) -> Result<SimReport, ConfigError> {
        self.run(config, None, Some(rec))
    }

    fn run(
        &self,
        config: &ParallelConfig,
        mut timeline: Option<&mut Vec<TimelineEvent>>,
        obs: Option<&Recorder>,
    ) -> Result<SimReport, ConfigError> {
        let pm = PerfModel::new(self.model, self.cluster, self.db);
        // Reuse the validated per-stage cost ingredients; the composition
        // below (schedule, overheads, jitter, allocator) is what differs
        // from the analytic prediction.
        aceso_config::validate::validate(config, self.model, self.cluster)?;
        let p = config.num_stages();
        let n = config.num_microbatches(self.model.global_batch).max(1);
        let cfg_hash = config.semantic_hash();

        let breakdowns: Vec<_> = (0..p).map(|i| pm.stage_breakdown(config, i)).collect();
        // Boundary transfer times (stage i → i+1), one per microbatch and
        // direction.
        let transfers: Vec<f64> = (0..p.saturating_sub(1))
            .map(|i| {
                let from = config.device_range(i).end() - 1;
                let to = config.device_range(i + 1).start;
                pm.boundary_p2p(config, i, from, to)
            })
            .collect();

        // Per-stage schedules and completion tracking.
        let schedules: Vec<Vec<Task>> = (0..p)
            .map(|i| schedule_tasks(self.options.schedule, i, p, n))
            .collect();
        let mut fwd_done = vec![vec![f64::NAN; n]; p];
        let mut bwd_done = vec![vec![f64::NAN; n]; p];
        let mut cursor = vec![0usize; p];
        let mut clock = vec![0.0f64; p];
        let mut busy = vec![0.0f64; p];

        let total_tasks: usize = schedules.iter().map(Vec::len).sum();
        let mut completed = 0usize;
        while completed < total_tasks {
            let mut progressed = false;
            for i in 0..p {
                while cursor[i] < schedules[i].len() {
                    let task = schedules[i][cursor[i]];
                    // Cross-stage dependency readiness.
                    let ready = match task {
                        Task::Fwd(mb) => {
                            if i == 0 {
                                Some(0.0)
                            } else if fwd_done[i - 1][mb].is_nan() {
                                None
                            } else {
                                Some(fwd_done[i - 1][mb] + transfers[i - 1])
                            }
                        }
                        Task::Bwd(mb) => {
                            if i == p - 1 {
                                // Loss stage: backward follows its own fwd.
                                if fwd_done[i][mb].is_nan() {
                                    None
                                } else {
                                    Some(fwd_done[i][mb])
                                }
                            } else if bwd_done[i + 1][mb].is_nan() {
                                None
                            } else {
                                Some(bwd_done[i + 1][mb] + transfers[i])
                            }
                        }
                    };
                    let Some(ready) = ready else { break };
                    let (dur, mb, is_bwd) = match task {
                        Task::Fwd(mb) => (
                            breakdowns[i].comp_fwd
                                + breakdowns[i].comm_fwd
                                + self.options.fwd_overhead,
                            mb,
                            false,
                        ),
                        Task::Bwd(mb) => (
                            breakdowns[i].comp_bwd
                                + breakdowns[i].comm_bwd
                                + self.options.bwd_overhead,
                            mb,
                            true,
                        ),
                    };
                    let dur = dur * self.task_jitter(cfg_hash, i, mb, is_bwd);
                    let start = clock[i].max(ready);
                    let done = start + dur;
                    clock[i] = done;
                    busy[i] += dur;
                    if let Some(events) = timeline.as_deref_mut() {
                        events.push(TimelineEvent {
                            stage: i,
                            microbatch: mb,
                            kind: if is_bwd { "bwd" } else { "fwd" },
                            start,
                            duration: dur,
                        });
                    }
                    match task {
                        Task::Fwd(mb) => fwd_done[i][mb] = done,
                        Task::Bwd(mb) => bwd_done[i][mb] = done,
                    }
                    cursor[i] += 1;
                    completed += 1;
                    progressed = true;
                }
            }
            debug_assert!(progressed, "1F1B schedule deadlocked");
            if !progressed {
                break;
            }
        }

        // Gradient sync after each stage's last backward (serialised; the
        // analytic model assumes the same, so the residual difference is
        // composition only).
        let mut iteration_time = 0.0f64;
        for i in 0..p {
            let sync = breakdowns[i].dp_sync * self.task_jitter(cfg_hash, i, usize::MAX >> 1, true);
            iteration_time = iteration_time.max(clock[i] + sync);
        }

        // Memory via the allocator model.
        let peak_memory_per_stage: Vec<u64> = (0..p)
            .map(|i| {
                let b = &breakdowns[i];
                let in_flight = match self.options.schedule {
                    PipelineSchedule::OneFOneB => (p - i).min(n) as u64,
                    // GPipe flushes: every microbatch's stash is live.
                    PipelineSchedule::GPipe => n as u64,
                };
                actual_peak_memory(
                    self.options.seed,
                    i,
                    b.mem_params,
                    b.mem_opt,
                    b.mem_act_per_mb,
                    in_flight,
                    b.mem_reserved,
                )
            })
            .collect();
        let peak_memory = peak_memory_per_stage.iter().copied().max().unwrap_or(0);

        let throughput = self.model.global_batch as f64 / iteration_time;
        let tflops_per_gpu =
            self.model.iteration_flops() / iteration_time / self.cluster.total_gpus() as f64 / 1e12;
        if let Some(rec) = obs {
            rec.count(Counter::SimRuns);
            rec.add(Counter::SimTasks, total_tasks as u64);
            rec.emit(|| Event::SimRun {
                stages: p,
                microbatches: n,
                tasks: total_tasks,
                iteration_time,
                peak_memory,
                schedule: match self.options.schedule {
                    PipelineSchedule::OneFOneB => "1f1b",
                    PipelineSchedule::GPipe => "gpipe",
                },
                oom: peak_memory > self.cluster.device.mem_bytes,
            });
        }
        Ok(SimReport {
            iteration_time,
            peak_memory_per_stage,
            peak_memory,
            mem_capacity: self.cluster.device.mem_bytes,
            stage_utilization: busy
                .iter()
                .map(|&b| {
                    if iteration_time > 0.0 {
                        b / iteration_time
                    } else {
                        0.0
                    }
                })
                .collect(),
            throughput,
            tflops_per_gpu,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_config::balanced_init;
    use aceso_model::zoo::gpt3_custom;

    fn setup() -> (ModelGraph, ClusterSpec) {
        (
            gpt3_custom("t", 4, 512, 8, 256, 8192, 64),
            ClusterSpec::v100(1, 4),
        )
    }

    #[test]
    fn executes_balanced_config() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let cfg = balanced_init(&m, &c, 2).expect("init");
        let sim = Simulator::with_defaults(&m, &c, &db);
        let r = sim.execute(&cfg).expect("runs");
        assert!(r.iteration_time > 0.0);
        assert!(r.throughput > 0.0);
        assert!(r.tflops_per_gpu > 0.0);
        assert_eq!(r.peak_memory_per_stage.len(), 2);
        assert!(r.stage_utilization.iter().all(|&u| u > 0.0 && u <= 1.0));
    }

    #[test]
    fn deterministic_execution() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let cfg = balanced_init(&m, &c, 2).expect("init");
        let sim = Simulator::with_defaults(&m, &c, &db);
        let a = sim.execute(&cfg).expect("a");
        let b = sim.execute(&cfg).expect("b");
        assert_eq!(a, b);
    }

    #[test]
    fn prediction_close_to_measurement() {
        // The analytic model should land within ~15% of the simulator for
        // a realistically-sized workload (the paper reports 2.7–7.3%
        // average); tiny toy models are dominated by per-task overheads
        // the analytic model deliberately does not know about.
        let m = gpt3_custom("t", 8, 1024, 16, 1024, 8192, 64);
        let c = ClusterSpec::v100(1, 4);
        let db = ProfileDb::build(&m, &c);
        let cfg = balanced_init(&m, &c, 2).expect("init");
        let pm = PerfModel::new(&m, &c, &db);
        let predicted = pm.evaluate_unchecked(&cfg).iteration_time;
        let sim = Simulator::with_defaults(&m, &c, &db);
        let actual = sim.execute(&cfg).expect("runs").iteration_time;
        let err = (predicted - actual).abs() / actual;
        assert!(err < 0.25, "prediction error {err:.3} too large");
    }

    #[test]
    fn memory_prediction_overestimates() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let cfg = balanced_init(&m, &c, 2).expect("init");
        let pm = PerfModel::new(&m, &c, &db);
        let predicted = pm.evaluate_unchecked(&cfg).max_memory;
        let actual = Simulator::with_defaults(&m, &c, &db)
            .execute(&cfg)
            .expect("runs")
            .peak_memory;
        assert!(predicted >= actual, "Eq. 1 is designed to overestimate");
    }

    #[test]
    fn invalid_config_rejected() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let mut cfg = balanced_init(&m, &c, 2).expect("init");
        cfg.microbatch = 0;
        let sim = Simulator::with_defaults(&m, &c, &db);
        assert!(sim.execute(&cfg).is_err());
    }

    #[test]
    fn pipeline_faster_than_sequential_per_microbatch_sum() {
        // With n microbatches, the pipeline must beat n × (whole-model
        // time) — sanity that overlap actually happens in the engine.
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let cfg = balanced_init(&m, &c, 2).expect("init");
        let sim = Simulator::with_defaults(&m, &c, &db);
        let r = sim.execute(&cfg).expect("runs");
        let pm = PerfModel::new(&m, &c, &db);
        let est = pm.evaluate_unchecked(&cfg);
        let n = est.num_microbatches as f64;
        let serial: f64 = est.stages.iter().map(|s| s.steady_per_mb()).sum::<f64>() * n;
        assert!(r.iteration_time < serial);
    }

    #[test]
    fn deeper_pipelines_have_lower_per_stage_utilization() {
        // Bubbles grow with stage count at a fixed microbatch count.
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let sim = Simulator::with_defaults(&m, &c, &db);
        let u2: f64 = {
            let cfg = balanced_init(&m, &c, 2).expect("init");
            let r = sim.execute(&cfg).expect("runs");
            r.stage_utilization.iter().sum::<f64>() / 2.0
        };
        let u4: f64 = {
            let cfg = balanced_init(&m, &c, 4).expect("init");
            let r = sim.execute(&cfg).expect("runs");
            r.stage_utilization.iter().sum::<f64>() / 4.0
        };
        assert!(u2 > u4, "u2={u2} u4={u4}");
    }

    #[test]
    fn single_stage_has_no_bubble() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let cfg = balanced_init(&m, &c, 1).expect("init");
        let r = Simulator::with_defaults(&m, &c, &db)
            .execute(&cfg)
            .expect("runs");
        // One stage: busy the whole time except the trailing dp sync.
        assert!(r.stage_utilization[0] > 0.95);
    }

    #[test]
    fn jitter_seed_changes_measurement_slightly() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let cfg = balanced_init(&m, &c, 2).expect("init");
        let a = Simulator::with_defaults(&m, &c, &db)
            .execute(&cfg)
            .expect("a");
        let b = Simulator::new(
            &m,
            &c,
            &db,
            SimOptions {
                seed: 12345,
                ..SimOptions::default()
            },
        )
        .execute(&cfg)
        .expect("b");
        assert_ne!(a.iteration_time, b.iteration_time);
        let rel = (a.iteration_time - b.iteration_time).abs() / a.iteration_time;
        assert!(rel < 0.1, "seeds should only perturb, not reshape: {rel}");
    }

    #[test]
    fn tflops_bounded_by_device_peak() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let cfg = balanced_init(&m, &c, 2).expect("init");
        let r = Simulator::with_defaults(&m, &c, &db)
            .execute(&cfg)
            .expect("runs");
        assert!(r.tflops_per_gpu * 1e12 < c.device.peak_fp16_flops);
        assert!(r.tflops_per_gpu > 1.0);
    }

    #[test]
    fn gpipe_uses_more_memory_than_1f1b() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let cfg = balanced_init(&m, &c, 2).expect("init");
        let f1b = Simulator::with_defaults(&m, &c, &db)
            .execute(&cfg)
            .expect("1f1b");
        let gpipe = Simulator::new(
            &m,
            &c,
            &db,
            SimOptions {
                schedule: PipelineSchedule::GPipe,
                ..SimOptions::default()
            },
        )
        .execute(&cfg)
        .expect("gpipe");
        // With N > p microbatches, GPipe stashes all of them at once.
        assert!(gpipe.peak_memory > f1b.peak_memory);
        // Throughput is in the same ballpark (same work, similar bubbles).
        let ratio = gpipe.iteration_time / f1b.iteration_time;
        assert!((0.8..1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn oom_config_reported_not_errored() {
        // Execution reports memory overflow via `ok()`, mirroring a crash
        // in the real runtime rather than a validation error.
        let m = aceso_model::zoo::gpt3_custom("big", 32, 2560, 32, 2048, 51200, 256);
        let c = ClusterSpec::v100(1, 1);
        let db = ProfileDb::build(&m, &c);
        let cfg = balanced_init(&m, &c, 1).expect("init");
        let r = Simulator::with_defaults(&m, &c, &db)
            .execute(&cfg)
            .expect("simulates");
        assert!(!r.ok());
        assert!(r.peak_memory > r.mem_capacity);
    }
}
