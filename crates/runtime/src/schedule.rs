//! 1F1B pipeline schedules.

/// One unit of stage work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Forward pass of one microbatch.
    Fwd(usize),
    /// Backward pass of one microbatch.
    Bwd(usize),
}

/// Pipeline scheduling disciplines the simulator can execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineSchedule {
    /// One-forward-one-backward (Megatron/PipeDream-flush style) — the
    /// paper's schedule; bounds in-flight microbatches by `p − i`.
    #[default]
    OneFOneB,
    /// GPipe: all forwards, flush, all backwards — simpler but stashes
    /// every microbatch at once.
    GPipe,
}

/// Task order of stage `i` under `schedule` (see [`one_f_one_b`] and
/// [`gpipe`]).
pub fn schedule_tasks(schedule: PipelineSchedule, i: usize, p: usize, n: usize) -> Vec<Task> {
    match schedule {
        PipelineSchedule::OneFOneB => one_f_one_b(i, p, n),
        PipelineSchedule::GPipe => gpipe(n),
    }
}

/// The GPipe task order (identical on every stage): forwards 0..n, then
/// backwards n..0 (reverse order, matching the autograd flush).
pub fn gpipe(n: usize) -> Vec<Task> {
    let mut order: Vec<Task> = (0..n).map(Task::Fwd).collect();
    order.extend((0..n).rev().map(Task::Bwd));
    order
}

/// The 1F1B task order of stage `i` in a `p`-stage pipeline running `n`
/// microbatches: `min(p − i, n)` warm-up forwards, then strict one-forward
/// one-backward alternation, then the cool-down backwards.
pub fn one_f_one_b(i: usize, p: usize, n: usize) -> Vec<Task> {
    let warmup = (p - i).min(n);
    let mut order = Vec::with_capacity(2 * n);
    for mb in 0..warmup {
        order.push(Task::Fwd(mb));
    }
    for k in 0..n - warmup {
        order.push(Task::Bwd(k));
        order.push(Task::Fwd(warmup + k));
    }
    for k in n - warmup..n {
        order.push(Task::Bwd(k));
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use Task::{Bwd, Fwd};

    #[test]
    fn last_stage_alternates_strictly() {
        let order = one_f_one_b(2, 3, 4);
        assert_eq!(
            order,
            vec![
                Fwd(0),
                Bwd(0),
                Fwd(1),
                Bwd(1),
                Fwd(2),
                Bwd(2),
                Fwd(3),
                Bwd(3)
            ]
        );
    }

    #[test]
    fn first_stage_warms_up_p_microbatches() {
        let order = one_f_one_b(0, 3, 5);
        assert_eq!(&order[..3], &[Fwd(0), Fwd(1), Fwd(2)]);
        assert_eq!(order.len(), 10);
        // Cooldown: final tasks are all backwards.
        assert!(matches!(order[order.len() - 1], Bwd(4)));
    }

    #[test]
    fn every_microbatch_runs_fwd_and_bwd_once() {
        for (i, p, n) in [(0, 4, 8), (3, 4, 8), (1, 2, 3), (0, 1, 4)] {
            let order = one_f_one_b(i, p, n);
            assert_eq!(order.len(), 2 * n);
            for mb in 0..n {
                assert_eq!(order.iter().filter(|t| **t == Fwd(mb)).count(), 1);
                assert_eq!(order.iter().filter(|t| **t == Bwd(mb)).count(), 1);
            }
        }
    }

    #[test]
    fn backward_never_precedes_forward_of_same_microbatch() {
        for (i, p, n) in [(0, 4, 8), (2, 4, 8), (0, 1, 4)] {
            let order = one_f_one_b(i, p, n);
            for mb in 0..n {
                let fpos = order.iter().position(|t| *t == Fwd(mb)).unwrap();
                let bpos = order.iter().position(|t| *t == Bwd(mb)).unwrap();
                assert!(fpos < bpos, "stage {i}: mb {mb} bwd before fwd");
            }
        }
    }

    #[test]
    fn fewer_microbatches_than_stages() {
        let order = one_f_one_b(0, 8, 2);
        assert_eq!(order, vec![Fwd(0), Fwd(1), Bwd(0), Bwd(1)]);
    }

    #[test]
    fn gpipe_flushes_then_reverses() {
        let order = gpipe(3);
        assert_eq!(order, vec![Fwd(0), Fwd(1), Fwd(2), Bwd(2), Bwd(1), Bwd(0)]);
        assert_eq!(
            schedule_tasks(PipelineSchedule::GPipe, 5, 8, 3),
            gpipe(3),
            "gpipe order is stage-independent"
        );
        assert_eq!(
            schedule_tasks(PipelineSchedule::OneFOneB, 2, 3, 4),
            one_f_one_b(2, 3, 4)
        );
    }
}
