//! Discrete-event 1F1B execution simulator — the "actual" runs.
//!
//! The paper evaluates found configurations by executing them on a real
//! V100 cluster with a modified Megatron-LM. This crate substitutes an
//! event-driven simulator that plays the role of that runtime: it executes
//! the true 1F1B schedule task by task (per-stage interleaving, cross-stage
//! p2p dependencies), applies per-task jitter and per-microbatch framework
//! overheads the analytic model does not know about, and tracks peak
//! memory with a caching-allocator model (fragmentation + buffer reuse)
//! instead of Eq. 1's deliberate overestimate.
//!
//! Because the simulator shares the profiled per-op costs with the
//! performance model but composes them differently, comparing the two
//! yields meaningful prediction-error numbers for Exp#8/#9 — the same
//! separation the paper has between its model and its hardware.

pub mod memory;
pub mod plan;
pub mod report;
pub mod schedule;
pub mod sim;
pub mod timeline;

pub use plan::ExecutionPlan;
pub use report::SimReport;
pub use schedule::{gpipe, one_f_one_b, PipelineSchedule, Task};
pub use sim::{SimOptions, Simulator};
pub use timeline::{to_chrome_trace, TimelineEvent};
