//! Executable per-rank plan export.
//!
//! A real deployment (the paper runs a modified Megatron-LM) consumes the
//! searched configuration as a concrete per-GPU execution plan: which
//! operator shards a rank runs, its tensor/data-parallel communication
//! groups, its 1F1B task schedule, and its pipeline peers. This module
//! materialises exactly that from a [`ParallelConfig`] — the hand-off
//! artifact between the search and a training runtime — and serialises it
//! to JSON.

use crate::schedule::{one_f_one_b, Task};
use aceso_cluster::ClusterSpec;
use aceso_config::{ConfigError, ParallelConfig};
use aceso_model::ModelGraph;
use aceso_util::json::{obj, FromJson, JsonError, ToJson, Value};

/// One operator shard assigned to a rank.
#[derive(Debug, Clone, PartialEq)]
pub struct OpAssignment {
    /// Global operator index in the model.
    pub op_index: usize,
    /// Operator name.
    pub name: String,
    /// Tensor-parallel degree and this rank's shard index within it.
    pub tp: u32,
    /// Shard index within the tp group.
    pub tp_rank: u32,
    /// Data-parallel degree and this rank's replica index within it.
    pub dp: u32,
    /// Replica index within the dp group.
    pub dp_rank: u32,
    /// Partition dimension index.
    pub dim_index: u8,
    /// Whether the activation is recomputed in backward.
    pub recompute: bool,
}

/// Everything one GPU needs to execute its part of the configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RankPlan {
    /// Global GPU id.
    pub rank: usize,
    /// Pipeline stage this rank belongs to.
    pub stage: usize,
    /// Members of this rank's widest tensor-parallel group.
    pub tp_group: Vec<usize>,
    /// Members of this rank's widest data-parallel group.
    pub dp_group: Vec<usize>,
    /// Rank on the previous stage this rank receives activations from.
    pub recv_from: Option<usize>,
    /// Rank on the next stage this rank sends activations to.
    pub send_to: Option<usize>,
    /// Operator shards this rank executes, in model order.
    pub ops: Vec<OpAssignment>,
    /// 1F1B task order for this rank.
    pub schedule: Vec<PlanTask>,
}

/// Serialisable schedule entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanTask {
    /// Forward pass of one microbatch.
    Fwd(usize),
    /// Backward pass of one microbatch.
    Bwd(usize),
}

impl From<Task> for PlanTask {
    fn from(t: Task) -> Self {
        match t {
            Task::Fwd(mb) => PlanTask::Fwd(mb),
            Task::Bwd(mb) => PlanTask::Bwd(mb),
        }
    }
}

/// A complete multi-rank execution plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionPlan {
    /// Model name the plan was built for.
    pub model: String,
    /// Global (aggregated) microbatch size.
    pub microbatch: usize,
    /// Microbatches per iteration.
    pub num_microbatches: usize,
    /// One plan per GPU, ordered by rank.
    pub ranks: Vec<RankPlan>,
}

impl ExecutionPlan {
    /// Builds the plan for a validated configuration.
    pub fn build(
        model: &ModelGraph,
        cluster: &ClusterSpec,
        config: &ParallelConfig,
    ) -> Result<Self, ConfigError> {
        aceso_config::validate::validate(config, model, cluster)?;
        let p = config.num_stages();
        let n_mb = config.num_microbatches(model.global_batch);
        let mut ranks = Vec::with_capacity(cluster.total_gpus());
        for (stage_idx, stage) in config.stages.iter().enumerate() {
            let range = config.device_range(stage_idx);
            // The widest tp in the stage defines the communicator layout;
            // narrower per-op groups are sub-groups of it.
            let max_tp = stage.ops.iter().map(|o| o.tp).max().unwrap_or(1) as usize;
            let schedule: Vec<PlanTask> = one_f_one_b(stage_idx, p, n_mb.max(1))
                .into_iter()
                .map(PlanTask::from)
                .collect();
            for local in 0..stage.gpus {
                let rank = range.start + local;
                let tp_base = range.start + (local / max_tp) * max_tp;
                let tp_group: Vec<usize> = (tp_base..tp_base + max_tp).collect();
                let dp_group: Vec<usize> = (0..stage.gpus / max_tp)
                    .map(|k| range.start + local % max_tp + k * max_tp)
                    .collect();
                let ops = stage
                    .ops
                    .iter()
                    .enumerate()
                    .map(|(j, para)| {
                        let g = stage.op_start + j;
                        let within = (local % max_tp) as u32;
                        OpAssignment {
                            op_index: g,
                            name: model.ops[g].name.clone(),
                            tp: para.tp,
                            tp_rank: within % para.tp,
                            dp: para.dp,
                            dp_rank: (local as u32) / para.tp % para.dp,
                            dim_index: para.dim_index,
                            recompute: para.recompute,
                        }
                    })
                    .collect();
                let recv_from = (stage_idx > 0).then(|| {
                    let prev = config.device_range(stage_idx - 1);
                    prev.start + local % prev.len
                });
                let send_to = (stage_idx + 1 < p).then(|| {
                    let next = config.device_range(stage_idx + 1);
                    next.start + local % next.len
                });
                ranks.push(RankPlan {
                    rank,
                    stage: stage_idx,
                    tp_group,
                    dp_group,
                    recv_from,
                    send_to,
                    ops,
                    schedule: schedule.clone(),
                });
            }
        }
        Ok(Self {
            model: model.name.clone(),
            microbatch: config.microbatch,
            num_microbatches: n_mb,
            ranks,
        })
    }

    /// Serialises the plan to pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string_pretty()
    }

    /// Restores a plan from [`Self::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        Self::from_json_value(&Value::parse(json)?)
    }
}

impl ToJson for OpAssignment {
    fn to_json_value(&self) -> Value {
        obj([
            ("op_index", Value::UInt(self.op_index as u64)),
            ("name", Value::Str(self.name.clone())),
            ("tp", Value::UInt(u64::from(self.tp))),
            ("tp_rank", Value::UInt(u64::from(self.tp_rank))),
            ("dp", Value::UInt(u64::from(self.dp))),
            ("dp_rank", Value::UInt(u64::from(self.dp_rank))),
            ("dim_index", Value::UInt(u64::from(self.dim_index))),
            ("recompute", Value::Bool(self.recompute)),
        ])
    }
}

impl FromJson for OpAssignment {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            op_index: v.field("op_index")?.as_usize()?,
            name: v.field("name")?.as_str()?.to_string(),
            tp: v.field("tp")?.as_u32()?,
            tp_rank: v.field("tp_rank")?.as_u32()?,
            dp: v.field("dp")?.as_u32()?,
            dp_rank: v.field("dp_rank")?.as_u32()?,
            dim_index: v.field("dim_index")?.as_u8()?,
            recompute: v.field("recompute")?.as_bool()?,
        })
    }
}

impl ToJson for PlanTask {
    fn to_json_value(&self) -> Value {
        match self {
            PlanTask::Fwd(mb) => obj([("fwd", Value::UInt(*mb as u64))]),
            PlanTask::Bwd(mb) => obj([("bwd", Value::UInt(*mb as u64))]),
        }
    }
}

impl FromJson for PlanTask {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        if let Some(mb) = v.get("fwd") {
            Ok(PlanTask::Fwd(mb.as_usize()?))
        } else if let Some(mb) = v.get("bwd") {
            Ok(PlanTask::Bwd(mb.as_usize()?))
        } else {
            Err(JsonError::shape("expected fwd or bwd task"))
        }
    }
}

impl ToJson for RankPlan {
    fn to_json_value(&self) -> Value {
        let usizes =
            |xs: &[usize]| Value::Array(xs.iter().map(|&x| Value::UInt(x as u64)).collect());
        obj([
            ("rank", Value::UInt(self.rank as u64)),
            ("stage", Value::UInt(self.stage as u64)),
            ("tp_group", usizes(&self.tp_group)),
            ("dp_group", usizes(&self.dp_group)),
            (
                "recv_from",
                self.recv_from
                    .map_or(Value::Null, |r| Value::UInt(r as u64)),
            ),
            (
                "send_to",
                self.send_to.map_or(Value::Null, |r| Value::UInt(r as u64)),
            ),
            ("ops", self.ops.to_json_value()),
            ("schedule", self.schedule.to_json_value()),
        ])
    }
}

impl FromJson for RankPlan {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        let usizes = |v: &Value| -> Result<Vec<usize>, JsonError> {
            v.as_array()?.iter().map(Value::as_usize).collect()
        };
        let opt_usize = |v: &Value| -> Result<Option<usize>, JsonError> {
            match v {
                Value::Null => Ok(None),
                other => Ok(Some(other.as_usize()?)),
            }
        };
        let mut ops = Vec::new();
        for o in v.field("ops")?.as_array()? {
            ops.push(OpAssignment::from_json_value(o)?);
        }
        let mut schedule = Vec::new();
        for t in v.field("schedule")?.as_array()? {
            schedule.push(PlanTask::from_json_value(t)?);
        }
        Ok(Self {
            rank: v.field("rank")?.as_usize()?,
            stage: v.field("stage")?.as_usize()?,
            tp_group: usizes(v.field("tp_group")?)?,
            dp_group: usizes(v.field("dp_group")?)?,
            recv_from: opt_usize(v.field("recv_from")?)?,
            send_to: opt_usize(v.field("send_to")?)?,
            ops,
            schedule,
        })
    }
}

impl ToJson for ExecutionPlan {
    fn to_json_value(&self) -> Value {
        obj([
            ("model", Value::Str(self.model.clone())),
            ("microbatch", Value::UInt(self.microbatch as u64)),
            (
                "num_microbatches",
                Value::UInt(self.num_microbatches as u64),
            ),
            ("ranks", self.ranks.to_json_value()),
        ])
    }
}

impl FromJson for ExecutionPlan {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        let mut ranks = Vec::new();
        for r in v.field("ranks")?.as_array()? {
            ranks.push(RankPlan::from_json_value(r)?);
        }
        Ok(Self {
            model: v.field("model")?.as_str()?.to_string(),
            microbatch: v.field("microbatch")?.as_usize()?,
            num_microbatches: v.field("num_microbatches")?.as_usize()?,
            ranks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_config::balanced_init;
    use aceso_model::zoo::gpt3_custom;

    fn setup() -> (ModelGraph, ClusterSpec, ParallelConfig) {
        let m = gpt3_custom("plan-t", 4, 512, 8, 256, 8192, 64);
        let c = ClusterSpec::v100(1, 8);
        let cfg = balanced_init(&m, &c, 2).expect("init");
        (m, c, cfg)
    }

    #[test]
    fn covers_every_rank_once() {
        let (m, c, cfg) = setup();
        let plan = ExecutionPlan::build(&m, &c, &cfg).expect("builds");
        assert_eq!(plan.ranks.len(), 8);
        for (i, r) in plan.ranks.iter().enumerate() {
            assert_eq!(r.rank, i);
        }
    }

    #[test]
    fn tp_and_dp_groups_partition_each_stage() {
        let (m, c, mut cfg) = setup();
        // Force an interesting mesh: tp2 × dp2 per stage.
        for s in &mut cfg.stages {
            for o in &mut s.ops {
                o.tp = 2;
                o.dp = 2;
            }
        }
        let plan = ExecutionPlan::build(&m, &c, &cfg).expect("builds");
        for r in &plan.ranks {
            assert!(r.tp_group.contains(&r.rank));
            assert!(r.dp_group.contains(&r.rank));
            assert_eq!(r.tp_group.len(), 2);
            assert_eq!(r.dp_group.len(), 2);
            // Groups are disjoint except at this rank.
            let overlap: Vec<_> = r
                .tp_group
                .iter()
                .filter(|g| r.dp_group.contains(g))
                .collect();
            assert_eq!(overlap, vec![&r.rank]);
        }
    }

    #[test]
    fn pipeline_peers_link_adjacent_stages() {
        let (m, c, cfg) = setup();
        let plan = ExecutionPlan::build(&m, &c, &cfg).expect("builds");
        for r in &plan.ranks {
            match r.stage {
                0 => {
                    assert!(r.recv_from.is_none());
                    let to = r.send_to.expect("stage 0 sends");
                    assert_eq!(plan.ranks[to].stage, 1);
                }
                1 => {
                    assert!(r.send_to.is_none());
                    let from = r.recv_from.expect("stage 1 receives");
                    assert_eq!(plan.ranks[from].stage, 0);
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn schedules_follow_1f1b() {
        let (m, c, cfg) = setup();
        let plan = ExecutionPlan::build(&m, &c, &cfg).expect("builds");
        let n = plan.num_microbatches;
        for r in &plan.ranks {
            assert_eq!(r.schedule.len(), 2 * n);
            // Last stage alternates strictly.
            if r.stage == 1 {
                assert_eq!(r.schedule[0], PlanTask::Fwd(0));
                assert_eq!(r.schedule[1], PlanTask::Bwd(0));
            }
        }
    }

    #[test]
    fn json_roundtrip() {
        let (m, c, cfg) = setup();
        let plan = ExecutionPlan::build(&m, &c, &cfg).expect("builds");
        let back = ExecutionPlan::from_json(&plan.to_json()).expect("parses");
        assert_eq!(plan, back);
    }

    #[test]
    fn invalid_config_rejected() {
        let (m, c, mut cfg) = setup();
        cfg.microbatch = 0;
        assert!(ExecutionPlan::build(&m, &c, &cfg).is_err());
    }
}
