//! Caching-allocator memory model.
//!
//! The real training framework's allocator rounds allocations into blocks,
//! fragments under mixed tensor sizes, and caches freed buffers for reuse.
//! The analytic model (§3.3) deliberately *overestimates* the reserve (max
//! per-op working set); the simulator's "actual" memory applies a
//! fragmentation factor to live activations and a buffer-reuse factor to
//! the transient pool instead, so predicted-vs-actual comparisons (Exp#9)
//! show the same overestimation pattern the paper reports.

use aceso_util::hash::keyed_jitter;
use aceso_util::FnvHasher;

/// Fraction of the pessimistic working-set bound the caching allocator
/// actually keeps resident (buffer reuse is good but not perfect).
const RESERVE_REUSE: f64 = 0.45;
/// Base fragmentation on live activation blocks.
const FRAG_BASE: f64 = 1.0;
/// Stage-dependent fragmentation spread.
const FRAG_SPREAD: f64 = 0.03;

/// The largest fragmentation factor [`actual_peak_memory`] can apply to
/// the live-activation term (the per-stage jitter stays within
/// `[FRAG_BASE, FRAG_BASE + FRAG_SPREAD]`). Static analyses that bound
/// schedules whose in-flight count exceeds Eq. 1's `p − i` (e.g. GPipe,
/// where every microbatch stash is live) must inflate the activation
/// term by this factor — the Eq. 1 reserve slack alone no longer
/// dominates once activations dwarf the reserve.
pub const WORST_CASE_FRAG: f64 = FRAG_BASE + FRAG_SPREAD;

/// "Actual" peak memory of one stage device.
///
/// * `params`, `opt` — exact (parameters, gradients, optimiser states);
/// * `act_per_mb` × `in_flight` — live stash, inflated by fragmentation;
/// * `reserved_bound` — the analytic model's pessimistic transient bound,
///   deflated by the allocator's buffer reuse.
pub fn actual_peak_memory(
    seed: u64,
    stage: usize,
    params: u64,
    opt: u64,
    act_per_mb: u64,
    in_flight: u64,
    reserved_bound: u64,
) -> u64 {
    let mut h = FnvHasher::new();
    h.write_u64(seed);
    h.write_usize(stage);
    let frag = FRAG_BASE + FRAG_SPREAD * (keyed_jitter(h.finish(), 1.0) - 1.0).abs();
    let live = (act_per_mb as f64 * in_flight as f64 * frag) as u64;
    let reserve = (reserved_bound as f64 * RESERVE_REUSE) as u64;
    params + opt + live + reserve
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_pessimistic_bound() {
        // With the same inputs as Eq. 1, actual memory comes out below the
        // prediction (the paper's systematic overestimation).
        let predicted = 100 + 50 + 10 * 4 + 40;
        let actual = actual_peak_memory(7, 0, 100, 50, 10, 4, 40);
        assert!(actual < predicted);
        assert!(actual > 100 + 50 + 10 * 4);
    }

    #[test]
    fn deterministic_per_seed_and_stage() {
        let a = actual_peak_memory(1, 2, 1000, 500, 100, 3, 400);
        let b = actual_peak_memory(1, 2, 1000, 500, 100, 3, 400);
        assert_eq!(a, b);
        let c = actual_peak_memory(2, 2, 1000, 500, 100, 3, 400);
        assert_ne!(a, c);
    }

    #[test]
    fn scales_with_in_flight() {
        let one = actual_peak_memory(1, 0, 0, 0, 1000, 1, 0);
        let four = actual_peak_memory(1, 0, 0, 0, 1000, 4, 0);
        assert!(four > 3 * one);
    }
}
