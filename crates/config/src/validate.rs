//! Configuration validation against a model and a cluster.

use crate::parallel::ParallelConfig;
use aceso_cluster::ClusterSpec;
use aceso_model::ModelGraph;

/// Reasons a configuration is structurally invalid.
///
/// Note: running out of *memory* is not a structural error — the search
/// deliberately traverses OOM configurations (Heuristic-1 exists to fix
/// them); the performance model reports memory feasibility separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// No stages.
    NoStages,
    /// Stage op ranges do not exactly partition `[0, model.len())`.
    BadOpPartition {
        /// Index of the offending stage.
        stage: usize,
    },
    /// A stage has an empty op range.
    EmptyStage {
        /// Index of the offending stage.
        stage: usize,
    },
    /// Per-op settings length mismatch.
    OpsLenMismatch {
        /// Index of the offending stage.
        stage: usize,
    },
    /// `tp · dp` of an op differs from the stage's GPU count.
    GpuMismatch {
        /// Index of the offending stage.
        stage: usize,
        /// Op index within the stage.
        op: usize,
    },
    /// tp or dp is not a power of two (paper §5.1 restriction).
    NotPowerOfTwo {
        /// Index of the offending stage.
        stage: usize,
        /// Op index within the stage.
        op: usize,
    },
    /// tp exceeds the operator's divisibility limit.
    TpOverLimit {
        /// Index of the offending stage.
        stage: usize,
        /// Op index within the stage.
        op: usize,
    },
    /// An op references a partition dim the operator does not define.
    BadDimIndex {
        /// Index of the offending stage.
        stage: usize,
        /// Op index within the stage.
        op: usize,
    },
    /// Stage GPU counts do not sum to the cluster size.
    ClusterSizeMismatch {
        /// GPUs the configuration's stages sum to.
        got: usize,
        /// GPUs the cluster actually has.
        want: usize,
    },
    /// Microbatch size is zero, exceeds the batch, or does not divide it.
    BadMicrobatch {
        /// The rejected microbatch size.
        microbatch: usize,
    },
    /// An op's data-parallel degree does not divide the microbatch.
    DpNotDividingMicrobatch {
        /// Index of the offending stage.
        stage: usize,
        /// Op index within the stage.
        op: usize,
    },
    /// ZeRO-1 optimiser sharding enabled on an op whose data-parallel
    /// group is a singleton (`dp == 1`) — there is nothing to shard over,
    /// and the extra parameter all-gather would be pure overhead.
    ZeroWithoutDp {
        /// Index of the offending stage.
        stage: usize,
        /// Op index within the stage.
        op: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoStages => write!(f, "configuration has no stages"),
            ConfigError::BadOpPartition { stage } => {
                write!(f, "stage {stage} op range breaks the partition")
            }
            ConfigError::EmptyStage { stage } => write!(f, "stage {stage} has no operators"),
            ConfigError::OpsLenMismatch { stage } => {
                write!(f, "stage {stage} ops vector length mismatch")
            }
            ConfigError::GpuMismatch { stage, op } => {
                write!(f, "stage {stage} op {op}: tp*dp != stage gpus")
            }
            ConfigError::NotPowerOfTwo { stage, op } => {
                write!(f, "stage {stage} op {op}: tp/dp not powers of two")
            }
            ConfigError::TpOverLimit { stage, op } => {
                write!(f, "stage {stage} op {op}: tp over operator limit")
            }
            ConfigError::BadDimIndex { stage, op } => {
                write!(f, "stage {stage} op {op}: bad partition dim index")
            }
            ConfigError::ClusterSizeMismatch { got, want } => {
                write!(f, "stages use {got} GPUs, cluster has {want}")
            }
            ConfigError::BadMicrobatch { microbatch } => {
                write!(f, "bad microbatch size {microbatch}")
            }
            ConfigError::DpNotDividingMicrobatch { stage, op } => {
                write!(f, "stage {stage} op {op}: dp does not divide microbatch")
            }
            ConfigError::ZeroWithoutDp { stage, op } => {
                write!(f, "stage {stage} op {op}: zero sharding with dp == 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validates `config` against `model` and `cluster`.
pub fn validate(
    config: &ParallelConfig,
    model: &ModelGraph,
    cluster: &ClusterSpec,
) -> Result<(), ConfigError> {
    if config.stages.is_empty() {
        return Err(ConfigError::NoStages);
    }
    // Op ranges must partition [0, model.len()).
    let mut expect = 0usize;
    for (i, s) in config.stages.iter().enumerate() {
        if s.op_start != expect {
            return Err(ConfigError::BadOpPartition { stage: i });
        }
        if s.op_end <= s.op_start {
            return Err(ConfigError::EmptyStage { stage: i });
        }
        expect = s.op_end;
    }
    if expect != model.len() {
        return Err(ConfigError::BadOpPartition {
            stage: config.stages.len() - 1,
        });
    }

    let total: usize = config.total_gpus();
    if total != cluster.total_gpus() {
        return Err(ConfigError::ClusterSizeMismatch {
            got: total,
            want: cluster.total_gpus(),
        });
    }

    let m = config.microbatch;
    if m == 0 || m > model.global_batch || !model.global_batch.is_multiple_of(m) {
        return Err(ConfigError::BadMicrobatch { microbatch: m });
    }

    for (i, s) in config.stages.iter().enumerate() {
        if s.ops.len() != s.num_ops() {
            return Err(ConfigError::OpsLenMismatch { stage: i });
        }
        for (j, op) in s.ops.iter().enumerate() {
            let global_op = s.op_start + j;
            if op.gpus() as usize != s.gpus {
                return Err(ConfigError::GpuMismatch {
                    stage: i,
                    op: global_op,
                });
            }
            if !op.tp.is_power_of_two() || !op.dp.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo {
                    stage: i,
                    op: global_op,
                });
            }
            let model_op = &model.ops[global_op];
            if op.tp > model_op.tp_limit {
                return Err(ConfigError::TpOverLimit {
                    stage: i,
                    op: global_op,
                });
            }
            if usize::from(op.dim_index) >= model_op.partitions.len() {
                return Err(ConfigError::BadDimIndex {
                    stage: i,
                    op: global_op,
                });
            }
            if !m.is_multiple_of(op.dp as usize) {
                return Err(ConfigError::DpNotDividingMicrobatch {
                    stage: i,
                    op: global_op,
                });
            }
            if op.zero && op.dp == 1 {
                return Err(ConfigError::ZeroWithoutDp {
                    stage: i,
                    op: global_op,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{OpParallel, StageConfig};
    use aceso_model::zoo::gpt3_custom;

    fn setup() -> (ModelGraph, ClusterSpec, ParallelConfig) {
        let model = gpt3_custom("t", 2, 256, 4, 128, 1000, 64);
        let cluster = ClusterSpec::v100(1, 8);
        let n = model.len();
        let config = ParallelConfig {
            stages: vec![
                StageConfig::uniform(0, n / 2, OpParallel::data_parallel(4)),
                StageConfig::uniform(n / 2, n, OpParallel::data_parallel(4)),
            ],
            microbatch: 8,
        };
        (model, cluster, config)
    }

    #[test]
    fn valid_config_passes() {
        let (m, c, cfg) = setup();
        assert_eq!(validate(&cfg, &m, &c), Ok(()));
    }

    #[test]
    fn detects_partition_gap() {
        let (m, c, mut cfg) = setup();
        cfg.stages[1].op_start += 1;
        cfg.stages[1].ops.pop();
        assert!(matches!(
            validate(&cfg, &m, &c),
            Err(ConfigError::BadOpPartition { .. })
        ));
    }

    #[test]
    fn detects_cluster_mismatch() {
        let (m, c, mut cfg) = setup();
        let (s, e) = (cfg.stages[1].op_start, cfg.stages[1].op_end);
        cfg.stages[1] = StageConfig::uniform(s, e, OpParallel::data_parallel(2));
        assert!(matches!(
            validate(&cfg, &m, &c),
            Err(ConfigError::ClusterSizeMismatch { got: 6, want: 8 })
        ));
    }

    #[test]
    fn detects_bad_microbatch() {
        let (m, c, mut cfg) = setup();
        cfg.microbatch = 0;
        assert!(matches!(
            validate(&cfg, &m, &c),
            Err(ConfigError::BadMicrobatch { .. })
        ));
        cfg.microbatch = 65; // does not divide 64
        assert!(matches!(
            validate(&cfg, &m, &c),
            Err(ConfigError::BadMicrobatch { .. })
        ));
    }

    #[test]
    fn detects_dp_not_dividing() {
        let (m, c, mut cfg) = setup();
        cfg.microbatch = 2; // dp=4 does not divide 2
        assert!(matches!(
            validate(&cfg, &m, &c),
            Err(ConfigError::DpNotDividingMicrobatch { .. })
        ));
    }

    #[test]
    fn detects_tp_over_limit() {
        let (m, c, mut cfg) = setup();
        // Give an op with tp_limit 4 (attention) a tp of 8.
        let mut hit = false;
        for (j, op) in cfg.stages[0].ops.iter_mut().enumerate() {
            if m.ops[j].tp_limit == 4 && !hit {
                op.tp = 8;
                op.dp = 1;
                hit = true;
            }
        }
        assert!(hit, "model should contain a tp-limited op in stage 0");
        cfg.stages[0].gpus = 8;
        let r = validate(&cfg, &m, &c);
        assert!(r.is_err());
    }

    #[test]
    fn detects_gpu_mismatch() {
        let (m, c, mut cfg) = setup();
        cfg.stages[0].ops[0].dp = 2;
        assert!(matches!(
            validate(&cfg, &m, &c),
            Err(ConfigError::GpuMismatch { .. })
        ));
    }

    #[test]
    fn detects_zero_on_singleton_dp_group() {
        let (m, c, mut cfg) = setup();
        // tp 4 × dp 1 fills the 4-GPU stage; zero over dp=1 is meaningless.
        for op in &mut cfg.stages[0].ops {
            op.tp = 4;
            op.dp = 1;
            op.zero = true;
        }
        // Clamp tp to each operator's limit so ZeroWithoutDp is the first
        // error hit (some ops cap tp below 4 — drop them from the probe).
        let ok_tp = cfg.stages[0]
            .ops
            .iter()
            .enumerate()
            .all(|(j, o)| o.tp <= m.ops[cfg.stages[0].op_start + j].tp_limit);
        if ok_tp {
            assert!(matches!(
                validate(&cfg, &m, &c),
                Err(ConfigError::ZeroWithoutDp { .. })
            ));
        } else {
            assert!(validate(&cfg, &m, &c).is_err());
        }
    }

    #[test]
    fn zero_with_real_dp_group_passes() {
        let (m, c, mut cfg) = setup();
        for op in &mut cfg.stages[0].ops {
            op.zero = true; // dp = 4 here, so sharding is meaningful
        }
        assert_eq!(validate(&cfg, &m, &c), Ok(()));
    }

    #[test]
    fn error_display() {
        let e = ConfigError::ClusterSizeMismatch { got: 4, want: 8 };
        assert!(e.to_string().contains("4"));
        let z = ConfigError::ZeroWithoutDp { stage: 1, op: 3 };
        assert!(z.to_string().contains("dp == 1"));
    }
}
