//! Parallel-configuration representation (paper §3.1).
//!
//! A [`ParallelConfig`] unambiguously defines a parallel execution of a
//! model on a cluster: contiguous operator ranges grouped into pipeline
//! stages, a device count per stage, per-operator tensor/data parallelism
//! (`tp × dp == stage GPUs`), per-operator recomputation flags, and one
//! global (aggregated) microbatch size. This representation is compatible
//! with Megatron-LM's global settings and with Alpa-style per-stage plans,
//! and it is the object Aceso's reconfiguration primitives rewrite.

pub mod describe;
pub mod init;
pub mod parallel;
pub mod validate;

pub use describe::{describe, shape, ConfigShape};
pub use init::{balanced_init, imbalance_gpu_init, imbalance_op_init};
pub use parallel::{OpParallel, ParallelConfig, StageConfig};
pub use validate::ConfigError;
