//! Initial-configuration generators.
//!
//! The search starts from a balanced partition with minimum microbatch size
//! (§5.1); Exp#7 additionally probes robustness with deliberately
//! imbalanced starting points (`imbalance-op`, `imbalance-GPU`).

use crate::parallel::{OpParallel, ParallelConfig, StageConfig};
use crate::validate::{validate, ConfigError};
use aceso_cluster::ClusterSpec;
use aceso_model::ModelGraph;

/// Splits `total` GPUs into `p` power-of-two stage sizes that sum exactly
/// to `total`, as evenly as a power-of-two constraint allows.
///
/// Returns `None` when impossible (`p > total` or `total == 0`).
pub fn split_gpus_pow2(total: usize, p: usize) -> Option<Vec<usize>> {
    if p == 0 || total < p {
        return None;
    }
    let mut parts = vec![1usize; p];
    let mut sum = p;
    while sum < total {
        // Double the smallest part that still fits.
        let mut candidate: Option<usize> = None;
        for (i, &v) in parts.iter().enumerate() {
            if sum + v <= total {
                match candidate {
                    Some(c) if parts[c] <= v => {}
                    _ => candidate = Some(i),
                }
            }
        }
        let i = candidate?;
        sum += parts[i];
        parts[i] *= 2;
    }
    // Largest stages last: later pipeline stages tolerate less memory
    // headroom (fewer in-flight microbatches), and keeping the vector
    // sorted makes the split deterministic.
    parts.sort_unstable();
    Some(parts)
}

/// Cuts the model's ops into `p` contiguous ranges whose FLOP totals are
/// proportional to `weights` (each range gets ≥ 1 op).
pub fn split_ops_weighted(model: &ModelGraph, weights: &[f64]) -> Vec<(usize, usize)> {
    let p = weights.len();
    let n = model.len();
    debug_assert!(p >= 1 && n >= p);
    let total_w: f64 = weights.iter().sum();
    let total_flops: f64 = model.total_flops();
    let mut cuts = Vec::with_capacity(p + 1);
    cuts.push(0usize);
    let mut acc = 0.0;
    let mut target_acc = 0.0;
    let mut op = 0usize;
    for (i, w) in weights.iter().enumerate().take(p - 1) {
        target_acc += w / total_w * total_flops;
        while op < n && (acc < target_acc || op < cuts[i] + 1) {
            // Never advance so far that the remaining stages can't each get
            // one op.
            if n - (op + 1) < p - (i + 1) {
                break;
            }
            acc += model.ops[op].flops;
            op += 1;
        }
        cuts.push(op.max(cuts[i] + 1));
        op = *cuts.last().expect("non-empty");
    }
    cuts.push(n);
    cuts.windows(2).map(|w| (w[0], w[1])).collect()
}

/// Builds a stage list from op ranges and GPU counts with pure data
/// parallelism per stage (`tp = 1`, no recomputation).
fn stages_from(ranges: &[(usize, usize)], gpus: &[usize]) -> Vec<StageConfig> {
    ranges
        .iter()
        .zip(gpus)
        .map(|(&(s, e), &g)| StageConfig::uniform(s, e, OpParallel::data_parallel(g as u32)))
        .collect()
}

/// Minimum feasible global microbatch: the largest per-op dp (every dp is a
/// power of two, so the max divides nothing smaller).
fn min_microbatch(stages: &[StageConfig], global_batch: usize) -> usize {
    let max_dp = stages
        .iter()
        .flat_map(|s| s.ops.iter().map(|o| o.dp as usize))
        .max()
        .unwrap_or(1);
    max_dp.min(global_batch)
}

/// The default starting point: FLOP-balanced op ranges proportional to each
/// stage's GPU share, near-even power-of-two device split, pure dp,
/// minimum microbatch.
pub fn balanced_init(
    model: &ModelGraph,
    cluster: &ClusterSpec,
    num_stages: usize,
) -> Result<ParallelConfig, ConfigError> {
    let total = cluster.total_gpus();
    let gpus = split_gpus_pow2(total, num_stages).ok_or(ConfigError::NoStages)?;
    if model.len() < num_stages {
        return Err(ConfigError::NoStages);
    }
    let weights: Vec<f64> = gpus.iter().map(|&g| g as f64).collect();
    let ranges = split_ops_weighted(model, &weights);
    let stages = stages_from(&ranges, &gpus);
    let microbatch = min_microbatch(&stages, model.global_batch);
    let cfg = ParallelConfig { stages, microbatch };
    validate(&cfg, model, cluster)?;
    Ok(cfg)
}

/// Exp#7 `imbalance-op`: the first stage is loaded with ~3× its fair FLOP
/// share.
pub fn imbalance_op_init(
    model: &ModelGraph,
    cluster: &ClusterSpec,
    num_stages: usize,
) -> Result<ParallelConfig, ConfigError> {
    let total = cluster.total_gpus();
    let gpus = split_gpus_pow2(total, num_stages).ok_or(ConfigError::NoStages)?;
    if model.len() < num_stages {
        return Err(ConfigError::NoStages);
    }
    let mut weights: Vec<f64> = gpus.iter().map(|&g| g as f64).collect();
    weights[0] *= 3.0;
    let ranges = split_ops_weighted(model, &weights);
    let stages = stages_from(&ranges, &gpus);
    let microbatch = min_microbatch(&stages, model.global_batch);
    let cfg = ParallelConfig { stages, microbatch };
    validate(&cfg, model, cluster)?;
    Ok(cfg)
}

/// Exp#7 `imbalance-GPU`: FLOP-even op ranges but a maximally skewed
/// power-of-two device split (half the cluster on the first stage).
pub fn imbalance_gpu_init(
    model: &ModelGraph,
    cluster: &ClusterSpec,
    num_stages: usize,
) -> Result<ParallelConfig, ConfigError> {
    let total = cluster.total_gpus();
    if num_stages < 2 || total < num_stages {
        return balanced_init(model, cluster, num_stages);
    }
    // First stage takes half the GPUs (or as much as leaves one per
    // remaining stage); the rest split evenly.
    let mut first = total / 2;
    while first >= 1 && total - first < num_stages - 1 {
        first /= 2;
    }
    let first = first.max(1);
    let rest = split_gpus_pow2(total - first, num_stages - 1).ok_or(ConfigError::NoStages)?;
    let mut gpus = vec![first];
    gpus.extend(rest);
    if model.len() < num_stages {
        return Err(ConfigError::NoStages);
    }
    // Op ranges still even-by-flops per *stage count*, ignoring GPU skew —
    // that is what makes this starting point imbalanced.
    let weights = vec![1.0; num_stages];
    let ranges = split_ops_weighted(model, &weights);
    let stages = stages_from(&ranges, &gpus);
    let microbatch = min_microbatch(&stages, model.global_batch);
    let cfg = ParallelConfig { stages, microbatch };
    validate(&cfg, model, cluster)?;
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_model::zoo::gpt3_custom;

    #[test]
    fn pow2_split_exact_and_pow2() {
        for total in [1usize, 2, 4, 8, 16, 32] {
            for p in 1..=total.min(8) {
                let parts = split_gpus_pow2(total, p).unwrap_or_else(|| {
                    panic!("no split for total={total} p={p}");
                });
                assert_eq!(parts.len(), p);
                assert_eq!(parts.iter().sum::<usize>(), total);
                assert!(parts.iter().all(|x| x.is_power_of_two()));
            }
        }
    }

    #[test]
    fn pow2_split_rejects_impossible() {
        assert!(split_gpus_pow2(2, 3).is_none());
        assert!(split_gpus_pow2(0, 1).is_none());
        assert!(split_gpus_pow2(4, 0).is_none());
    }

    #[test]
    fn pow2_split_is_balanced() {
        let parts = split_gpus_pow2(32, 4).expect("split exists");
        assert_eq!(parts, vec![8, 8, 8, 8]);
        let parts = split_gpus_pow2(32, 3).expect("split exists");
        assert_eq!(parts, vec![8, 8, 16]);
    }

    #[test]
    fn weighted_op_split_covers_model() {
        let m = gpt3_custom("t", 4, 256, 4, 128, 1000, 64);
        let ranges = split_ops_weighted(&m, &[1.0, 1.0, 2.0]);
        assert_eq!(ranges[0].0, 0);
        assert_eq!(ranges.last().expect("nonempty").1, m.len());
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
            assert!(w[0].1 > w[0].0);
        }
        // The double-weight stage should get roughly twice the flops.
        let fl = |r: (usize, usize)| -> f64 { m.ops[r.0..r.1].iter().map(|o| o.flops).sum() };
        assert!(fl(ranges[2]) > fl(ranges[0]));
    }

    #[test]
    fn balanced_init_validates() {
        let m = gpt3_custom("t", 4, 256, 4, 128, 1000, 64);
        let c = ClusterSpec::v100(1, 8);
        for p in 1..=4 {
            let cfg = balanced_init(&m, &c, p).expect("init ok");
            assert_eq!(cfg.num_stages(), p);
            assert!(validate(&cfg, &m, &c).is_ok());
        }
    }

    #[test]
    fn imbalanced_inits_validate_and_differ() {
        let m = gpt3_custom("t", 8, 256, 4, 128, 1000, 64);
        let c = ClusterSpec::v100(1, 8);
        let bal = balanced_init(&m, &c, 4).expect("balanced");
        let iop = imbalance_op_init(&m, &c, 4).expect("imbalance-op");
        let igpu = imbalance_gpu_init(&m, &c, 4).expect("imbalance-gpu");
        assert!(validate(&iop, &m, &c).is_ok());
        assert!(validate(&igpu, &m, &c).is_ok());
        assert_ne!(bal.semantic_hash(), iop.semantic_hash());
        assert_ne!(bal.semantic_hash(), igpu.semantic_hash());
        // imbalance-op loads stage 0 with more ops than balanced does.
        assert!(iop.stages[0].num_ops() > bal.stages[0].num_ops());
        // imbalance-gpu gives stage 0 at least as many GPUs as any other.
        assert!(igpu.stages[0].gpus >= igpu.stages[1].gpus);
    }

    #[test]
    fn single_gpu_init() {
        let m = gpt3_custom("t", 2, 256, 4, 128, 1000, 64);
        let c = ClusterSpec::v100(1, 1);
        let cfg = balanced_init(&m, &c, 1).expect("init ok");
        assert_eq!(cfg.total_gpus(), 1);
        assert_eq!(cfg.microbatch, 1);
    }
}
