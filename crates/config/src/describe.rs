//! Human-readable rendering of configurations.
//!
//! The case studies and examples all need to show *what* the search found
//! (uneven stages, partial recomputation, in-stage tp/dp mixes); this
//! module renders that in one consistent format.

use crate::parallel::ParallelConfig;
use aceso_model::ModelGraph;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders a configuration as a multi-line summary.
///
/// One line per stage: op range (with the first/last op names when a model
/// is supplied), device count, the distinct `(tp, dp)` mixes, and the
/// recompute ratio.
///
/// # Examples
///
/// ```
/// use aceso_config::{describe, OpParallel, ParallelConfig, StageConfig};
///
/// let cfg = ParallelConfig {
///     stages: vec![StageConfig::uniform(0, 4, OpParallel::data_parallel(2))],
///     microbatch: 4,
/// };
/// let text = describe(&cfg, None);
/// assert!(text.contains("1 stage(s), microbatch 4, 2 GPUs"));
/// ```
pub fn describe(config: &ParallelConfig, model: Option<&ModelGraph>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} stage(s), microbatch {}, {} GPUs",
        config.num_stages(),
        config.microbatch,
        config.total_gpus()
    );
    for (i, s) in config.stages.iter().enumerate() {
        let mut mixes: BTreeMap<(u32, u32), usize> = BTreeMap::new();
        for o in &s.ops {
            *mixes.entry((o.tp, o.dp)).or_insert(0) += 1;
        }
        let mix_str = mixes
            .iter()
            .map(|((tp, dp), n)| format!("{n}@tp{tp}/dp{dp}"))
            .collect::<Vec<_>>()
            .join(" + ");
        let names = model
            .map(|m| {
                format!(
                    " [{}..{}]",
                    m.ops[s.op_start].name,
                    m.ops[s.op_end - 1].name
                )
            })
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "  stage {i}: ops {:>4}..{:<4}{names} on {} GPU(s): {mix_str}, rc {}/{}",
            s.op_start,
            s.op_end,
            s.gpus,
            s.num_recomputed(),
            s.num_ops()
        );
    }
    out
}

/// Structural properties worth asserting about a found configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigShape {
    /// Stages hold different op counts.
    pub uneven_stages: bool,
    /// Some stage recomputes a strict, non-empty subset of its ops.
    pub partial_recompute: bool,
    /// Some stage mixes more than one `(tp, dp)` setting.
    pub mixed_parallelism: bool,
}

/// Computes the §5.4 case-study shape flags of a configuration.
pub fn shape(config: &ParallelConfig) -> ConfigShape {
    let sizes: Vec<usize> = config.stages.iter().map(|s| s.num_ops()).collect();
    let uneven_stages = sizes.windows(2).any(|w| w[0] != w[1]);
    let partial_recompute = config.stages.iter().any(|s| {
        let rc = s.num_recomputed();
        rc > 0 && rc < s.num_ops()
    });
    let mixed_parallelism = config.stages.iter().any(|s| {
        s.ops
            .windows(2)
            .any(|w| (w[0].tp, w[0].dp) != (w[1].tp, w[1].dp))
    });
    ConfigShape {
        uneven_stages,
        partial_recompute,
        mixed_parallelism,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{OpParallel, StageConfig};

    fn cfg() -> ParallelConfig {
        ParallelConfig {
            stages: vec![
                StageConfig::uniform(0, 3, OpParallel::data_parallel(2)),
                StageConfig::uniform(3, 8, OpParallel::data_parallel(2)),
            ],
            microbatch: 4,
        }
    }

    #[test]
    fn describe_renders_stages() {
        let s = describe(&cfg(), None);
        assert!(s.contains("2 stage(s)"));
        assert!(s.contains("stage 0"));
        assert!(s.contains("3@tp1/dp2"));
    }

    #[test]
    fn shape_flags() {
        let base = shape(&cfg());
        assert!(base.uneven_stages);
        assert!(!base.partial_recompute);
        assert!(!base.mixed_parallelism);

        let mut c = cfg();
        c.stages[0].ops[1].recompute = true;
        c.stages[1].ops[0].tp = 2;
        c.stages[1].ops[0].dp = 1;
        let s = shape(&c);
        assert!(s.partial_recompute);
        assert!(s.mixed_parallelism);
    }

    #[test]
    fn even_config_not_flagged() {
        let c = ParallelConfig {
            stages: vec![
                StageConfig::uniform(0, 4, OpParallel::data_parallel(2)),
                StageConfig::uniform(4, 8, OpParallel::data_parallel(2)),
            ],
            microbatch: 4,
        };
        assert!(!shape(&c).uneven_stages);
    }
}
