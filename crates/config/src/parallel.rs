//! The configuration data structures and their semantic hash.

use aceso_cluster::DeviceRange;
use aceso_util::json::{obj, FromJson, JsonError, ToJson, Value};
use aceso_util::FnvHasher;

/// Per-operator parallelism settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpParallel {
    /// Tensor-parallel degree.
    pub tp: u32,
    /// Data-parallel degree (`tp · dp` equals the stage's GPU count).
    pub dp: u32,
    /// Index into the operator's `partitions` list (partition dimension).
    pub dim_index: u8,
    /// Whether this operator's activations are recomputed in backward.
    pub recompute: bool,
    /// ZeRO-1 extension: shard this operator's optimiser states across its
    /// data-parallel group (trades an extra parameter all-gather per
    /// iteration for `1/dp` of the optimiser memory). Not part of the
    /// paper's Table 1 — see `aceso_core::primitives` for the extension
    /// primitives that toggle it.
    pub zero: bool,
}

impl OpParallel {
    /// Pure data parallelism over `gpus` devices.
    pub fn data_parallel(gpus: u32) -> Self {
        Self {
            tp: 1,
            dp: gpus,
            dim_index: 0,
            recompute: false,
            zero: false,
        }
    }

    /// Total devices this operator runs on.
    pub fn gpus(&self) -> u32 {
        self.tp * self.dp
    }
}

/// One pipeline stage: a contiguous operator range on a device group.
#[derive(Debug, Clone, PartialEq)]
pub struct StageConfig {
    /// First operator index (inclusive).
    pub op_start: usize,
    /// One-past-last operator index (exclusive).
    pub op_end: usize,
    /// Devices assigned to this stage.
    pub gpus: usize,
    /// Per-operator settings, `op_end - op_start` entries.
    pub ops: Vec<OpParallel>,
}

impl StageConfig {
    /// Creates a stage where every operator shares one `(tp, dp)` setting.
    pub fn uniform(op_start: usize, op_end: usize, para: OpParallel) -> Self {
        Self {
            op_start,
            op_end,
            gpus: para.gpus() as usize,
            ops: vec![para; op_end - op_start],
        }
    }

    /// Number of operators in the stage.
    pub fn num_ops(&self) -> usize {
        self.op_end - self.op_start
    }

    /// Number of recomputed operators in the stage.
    pub fn num_recomputed(&self) -> usize {
        self.ops.iter().filter(|o| o.recompute).count()
    }

    /// Settings of the operator with *global* index `op`, if it lies in
    /// this stage.
    pub fn op_parallel(&self, op: usize) -> Option<&OpParallel> {
        if op >= self.op_start && op < self.op_end {
            self.ops.get(op - self.op_start)
        } else {
            None
        }
    }
}

/// A complete parallel configuration (paper Fig. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelConfig {
    /// Pipeline stages in model order; their op ranges partition the model.
    pub stages: Vec<StageConfig>,
    /// Global (aggregated) microbatch size; a stage replica with
    /// data-parallel degree `d` processes `microbatch / d` samples.
    pub microbatch: usize,
}

impl ParallelConfig {
    /// Number of pipeline stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Total devices across stages.
    pub fn total_gpus(&self) -> usize {
        self.stages.iter().map(|s| s.gpus).sum()
    }

    /// Global GPU id range of stage `i` (stages own contiguous ranges in
    /// model order).
    pub fn device_range(&self, stage: usize) -> DeviceRange {
        let start = self.stages[..stage].iter().map(|s| s.gpus).sum();
        DeviceRange::new(start, self.stages[stage].gpus)
    }

    /// Number of microbatches per iteration for `global_batch`.
    pub fn num_microbatches(&self, global_batch: usize) -> usize {
        if self.microbatch == 0 {
            return 0;
        }
        global_batch / self.microbatch
    }

    /// The stage containing the operator with global index `op`.
    pub fn stage_of_op(&self, op: usize) -> Option<usize> {
        self.stages
            .iter()
            .position(|s| op >= s.op_start && op < s.op_end)
    }

    /// Semantic-aware stable hash for deduplication (paper §4.3).
    ///
    /// Two configurations that define the same execution hash equally:
    /// the hash covers stage boundaries, device counts, per-op
    /// `(tp, dp, dim, recompute)` and the microbatch size — nothing else.
    pub fn semantic_hash(&self) -> u64 {
        let mut h = FnvHasher::new();
        h.write_usize(self.microbatch);
        h.write_usize(self.stages.len());
        for s in &self.stages {
            h.write_usize(s.op_start);
            h.write_usize(s.op_end);
            h.write_usize(s.gpus);
            // Run-length encode per-op settings so the hash cost stays
            // proportional to the number of *distinct* settings runs.
            let mut i = 0;
            while i < s.ops.len() {
                let o = s.ops[i];
                let mut run = 1;
                while i + run < s.ops.len() && s.ops[i + run] == o {
                    run += 1;
                }
                h.write_usize(run);
                h.write_u64(u64::from(o.tp));
                h.write_u64(u64::from(o.dp));
                h.write_u64(u64::from(o.dim_index));
                h.write_bool(o.recompute);
                h.write_bool(o.zero);
                i += run;
            }
        }
        h.finish()
    }
}

impl ToJson for OpParallel {
    fn to_json_value(&self) -> Value {
        obj([
            ("tp", Value::UInt(u64::from(self.tp))),
            ("dp", Value::UInt(u64::from(self.dp))),
            ("dim_index", Value::UInt(u64::from(self.dim_index))),
            ("recompute", Value::Bool(self.recompute)),
            ("zero", Value::Bool(self.zero)),
        ])
    }
}

impl FromJson for OpParallel {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            tp: v.field("tp")?.as_u32()?,
            dp: v.field("dp")?.as_u32()?,
            dim_index: v.field("dim_index")?.as_u8()?,
            recompute: v.field("recompute")?.as_bool()?,
            // `zero` postdates early snapshots; missing means off.
            zero: match v.get("zero") {
                Some(z) => z.as_bool()?,
                None => false,
            },
        })
    }
}

impl ToJson for StageConfig {
    fn to_json_value(&self) -> Value {
        obj([
            ("op_start", Value::UInt(self.op_start as u64)),
            ("op_end", Value::UInt(self.op_end as u64)),
            ("gpus", Value::UInt(self.gpus as u64)),
            ("ops", self.ops.to_json_value()),
        ])
    }
}

impl FromJson for StageConfig {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        let mut ops = Vec::new();
        for o in v.field("ops")?.as_array()? {
            ops.push(OpParallel::from_json_value(o)?);
        }
        Ok(Self {
            op_start: v.field("op_start")?.as_usize()?,
            op_end: v.field("op_end")?.as_usize()?,
            gpus: v.field("gpus")?.as_usize()?,
            ops,
        })
    }
}

impl ToJson for ParallelConfig {
    fn to_json_value(&self) -> Value {
        obj([
            ("stages", self.stages.to_json_value()),
            ("microbatch", Value::UInt(self.microbatch as u64)),
        ])
    }
}

impl FromJson for ParallelConfig {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        let mut stages = Vec::new();
        for s in v.field("stages")?.as_array()? {
            stages.push(StageConfig::from_json_value(s)?);
        }
        Ok(Self {
            stages,
            microbatch: v.field("microbatch")?.as_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_stage() -> ParallelConfig {
        ParallelConfig {
            stages: vec![
                StageConfig::uniform(0, 4, OpParallel::data_parallel(4)),
                StageConfig::uniform(4, 8, OpParallel::data_parallel(4)),
            ],
            microbatch: 8,
        }
    }

    #[test]
    fn basics() {
        let c = two_stage();
        assert_eq!(c.num_stages(), 2);
        assert_eq!(c.total_gpus(), 8);
        assert_eq!(c.device_range(0), DeviceRange::new(0, 4));
        assert_eq!(c.device_range(1), DeviceRange::new(4, 4));
        assert_eq!(c.num_microbatches(64), 8);
        assert_eq!(c.stage_of_op(5), Some(1));
        assert_eq!(c.stage_of_op(8), None);
    }

    #[test]
    fn stage_lookup() {
        let s = StageConfig::uniform(4, 8, OpParallel::data_parallel(2));
        assert_eq!(s.num_ops(), 4);
        assert!(s.op_parallel(4).is_some());
        assert!(s.op_parallel(3).is_none());
        assert!(s.op_parallel(8).is_none());
        assert_eq!(s.num_recomputed(), 0);
    }

    #[test]
    fn hash_stable_and_sensitive() {
        let a = two_stage();
        let b = two_stage();
        assert_eq!(a.semantic_hash(), b.semantic_hash());
        let mut c = two_stage();
        c.microbatch = 4;
        assert_ne!(a.semantic_hash(), c.semantic_hash());
        let mut d = two_stage();
        d.stages[0].ops[2].recompute = true;
        assert_ne!(a.semantic_hash(), d.semantic_hash());
        let mut e = two_stage();
        e.stages[0].ops[1].tp = 2;
        e.stages[0].ops[1].dp = 2;
        assert_ne!(a.semantic_hash(), e.semantic_hash());
    }

    #[test]
    fn op_parallel_gpus() {
        let o = OpParallel {
            tp: 4,
            dp: 2,
            dim_index: 0,
            recompute: false,
            zero: false,
        };
        assert_eq!(o.gpus(), 8);
        assert_eq!(OpParallel::data_parallel(8).gpus(), 8);
    }

    #[test]
    fn zero_microbatch_yields_zero_count() {
        let mut c = two_stage();
        c.microbatch = 0;
        assert_eq!(c.num_microbatches(64), 0);
    }
}
