//! Deterministic whole-system chaos engine for the Aceso serve stack.
//!
//! Crash-safety claims that are only tested unit-by-unit rot at the
//! seams: the store's temp+rename discipline, the daemon's spool
//! recovery, the client's retry ladder and the retention sweeps each
//! have their own tests, but nothing exercised them *together* under
//! hostile I/O. This crate closes that gap with seeded, replayable
//! whole-system scenarios:
//!
//! * [`schedule`] — [`Schedule`], one scenario's full fault plan
//!   (filesystem faults per daemon generation via
//!   [`aceso_util::fsio::FaultSchedule`], a frame-boundary network cut,
//!   an injected worker panic, overlapping daemon generations), derived
//!   deterministically from a single `u64` seed
//!   (INV-CHAOS-DETERMINISM), plus the serialisable [`Trace`];
//! * [`engine`] — [`Engine`], which runs submit → crash → restart →
//!   resubmit daemon lifecycles in-process under a schedule and checks
//!   the standing oracles after every run (INV-CHAOS-ORACLE): no torn
//!   store entry visible, recovery succeeds within bounded retries,
//!   responses bit-identical to the fault-free reference, every event
//!   typed, panics contained;
//! * [`mod@shrink`] — the greedy delta-debugger that minimises a violating
//!   schedule into a 1-minimal replayable trace (INV-CHAOS-SHRINK).
//!
//! The CLI face is `aceso chaos run --seed-range A..B` and
//! `aceso chaos replay FILE`; `--mutate store-direct-write` arms a
//! deliberate atomicity bug that the oracles must catch, which keeps
//! the whole harness honest. The guaranteed-behavior matrix these
//! scenarios enforce lives in `docs/RELIABILITY.md`.

pub mod engine;
pub mod schedule;
pub mod shrink;

pub use engine::{
    chaos_request, response_fingerprint, ChaosOptions, ChaosReport, Engine, ScenarioOutcome,
};
pub use schedule::{Schedule, Trace};
pub use shrink::shrink;
