//! Greedy delta-debugging shrinker for violating fault schedules
//! (INV-CHAOS-SHRINK).
//!
//! A seeded schedule that trips an oracle usually carries faults that
//! have nothing to do with the failure. The shrinker repeatedly tries
//! removing one scheduled element at a time — a filesystem fault event
//! from either generation, the network cut, the injected panic, the
//! concurrent-generations flag — and keeps any removal after which the
//! scenario *still* violates an oracle. It loops to a fixpoint, so the
//! returned [`Trace`] is 1-minimal: removing any single remaining
//! element makes the violation disappear. Because scenarios are
//! deterministic per schedule (INV-CHAOS-DETERMINISM), every probe is a
//! faithful replay, not a statistical guess.

use crate::engine::Engine;
use crate::schedule::{Schedule, Trace};

/// Every schedule one element smaller than `s`, in a deterministic
/// order: gen-A fault events first, then gen-B, then the cleared
/// network cut, panic, and concurrency flags. `direct_writes` is
/// configuration (the mutation gate), not a fault — it is never
/// removed, so a mutant trace stays a mutant trace.
fn candidates(s: &Schedule) -> Vec<Schedule> {
    let mut out = Vec::new();
    for i in 0..s.gen_a.events.len() {
        let mut c = s.clone();
        c.gen_a.events.remove(i);
        out.push(c);
    }
    for i in 0..s.gen_b.events.len() {
        let mut c = s.clone();
        c.gen_b.events.remove(i);
        out.push(c);
    }
    if s.net_cut.is_some() {
        let mut c = s.clone();
        c.net_cut = None;
        out.push(c);
    }
    if s.panic_build {
        let mut c = s.clone();
        c.panic_build = false;
        out.push(c);
    }
    if s.concurrent {
        let mut c = s.clone();
        c.concurrent = false;
        out.push(c);
    }
    out
}

/// Shrinks a violating `schedule` to a minimal replayable [`Trace`].
/// `violations` is what the full schedule violated; the trace carries
/// the violations of the *shrunk* schedule, which reproduces when fed
/// back through `aceso chaos replay`.
pub fn shrink(engine: &Engine, schedule: &Schedule, violations: Vec<String>) -> Trace {
    let mut current = schedule.clone();
    let mut current_violations = violations;
    loop {
        let mut progressed = false;
        for candidate in candidates(&current) {
            let outcome = engine.run_schedule(&candidate);
            if !outcome.violations.is_empty() {
                current = candidate;
                current_violations = outcome.violations;
                progressed = true;
                break;
            }
        }
        if !progressed {
            break;
        }
    }
    Trace {
        schedule: current,
        violations: current_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_util::fsio::FaultSchedule;

    #[test]
    fn candidate_generation_removes_exactly_one_element() {
        let schedule = Schedule::from_seed(11);
        for c in candidates(&schedule) {
            if c.concurrent != schedule.concurrent {
                // Clearing the concurrency flag removes a scenario
                // dimension but not a counted fault event.
                assert_eq!(c.fault_count(), schedule.fault_count());
            } else {
                assert_eq!(c.fault_count() + 1, schedule.fault_count());
            }
        }
    }

    #[test]
    fn direct_writes_survives_candidate_generation() {
        let mut schedule = Schedule::from_seed(7);
        schedule.direct_writes = true;
        assert!(!candidates(&schedule).is_empty());
        for c in candidates(&schedule) {
            assert!(c.direct_writes, "the mutation gate is never shrunk away");
        }
    }

    #[test]
    fn an_empty_schedule_has_no_candidates() {
        let schedule = Schedule {
            seed: 0,
            gen_a: FaultSchedule::none(),
            gen_b: FaultSchedule::none(),
            net_cut: None,
            panic_build: false,
            concurrent: false,
            direct_writes: false,
        };
        assert!(candidates(&schedule).is_empty());
    }
}
