//! The scenario driver: runs end-to-end daemon lifecycles under a
//! [`Schedule`] and checks the standing oracles after every run.
//!
//! One scenario is the full crash-recovery story the serve + store
//! stack promises to survive: daemon generation A (with filesystem
//! faults injected through a seeded [`ChaosFs`]) takes a submission —
//! possibly through a [`FaultProxy`] that severs the connection at a
//! frame boundary — then the "process" restarts as generation B on the
//! same store and spool directories, the request is resubmitted, and
//! the response must come back. Optionally the generations overlap on
//! one store directory (two daemons, one store) and a panicking
//! profile-build worker is injected between them.
//!
//! After every run the engine checks the standing oracles
//! (INV-CHAOS-ORACLE):
//!
//! 1. **No torn store entry is ever visible**: every `.adb` file in the
//!    store decodes cleanly (`aceso store verify` semantics via
//!    [`Store::ls`]) — INV-STORE-ATOMIC observed end to end.
//! 2. **The final resubmission succeeds** within a bounded number of
//!    client retries — faults degrade, they never wedge.
//! 3. **The response is bit-identical** to the fault-free reference on
//!    every deterministic field (INV-STORE-BITEXACT extended to the
//!    whole system: cache, store, spool and restarts are invisible).
//! 4. **Every server-surfaced event parses as a typed [`Event`]** —
//!    degrades are always surfaced, never stringly dropped.
//! 5. **Injected panics are contained** and the cache recovers.
//!
//! Violations are plain strings naming the oracle; the shrinker
//! ([`crate::shrink()`]) minimises a violating schedule into a replayable
//! trace.

use crate::schedule::Schedule;
use aceso_obs::{Event, ObsReport};
use aceso_serve::{
    submit, submit_with_retries, FaultProxy, ProfileCache, Request, ServeOptions, Server,
};
use aceso_store::Store;
use aceso_util::fsio::{ChaosFs, Fs, InjectedFault, RealFs};
use aceso_util::json::Value;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How the engine runs scenarios: where scratch directories live and
/// whether the store-atomicity mutation gate is armed.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Scratch root; every scenario gets a fresh subdirectory that is
    /// removed after the run.
    pub root: PathBuf,
    /// Arm `--mutate store-direct-write`: every scheduled scenario runs
    /// with the daemons' stores writing entries directly (no
    /// temp+rename), which the torn-entry oracle must catch.
    pub mutate_direct_writes: bool,
}

impl ChaosOptions {
    /// Options rooted under the system temp directory, uniquely named
    /// per process and `tag`.
    pub fn in_temp(tag: &str) -> Self {
        Self {
            root: std::env::temp_dir().join(format!("aceso-chaos-{tag}-{}", std::process::id())),
            mutate_direct_writes: false,
        }
    }
}

/// What one scenario run observed.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Oracle violations, empty on a clean run.
    pub violations: Vec<String>,
    /// Every filesystem fault actually injected, across both daemon
    /// generations, in injection order.
    pub injected: Vec<InjectedFault>,
    /// Whether a [`aceso_util::fsio::FaultKind::Crash`] point fired in
    /// either generation.
    pub crashed: bool,
}

/// The aggregate of a seed-range run.
#[derive(Debug)]
pub struct ChaosReport {
    /// Scenarios executed (the range is cut short at the first
    /// violation, which is shrunk instead).
    pub runs: usize,
    /// Total filesystem faults injected across all runs.
    pub faults_injected: usize,
    /// The first violating schedule, shrunk to a minimal replayable
    /// trace; `None` when every scenario passed its oracles.
    pub failure: Option<crate::schedule::Trace>,
    /// Synthesized observability: one `fault_injected` event and one
    /// `chaos_faults_injected` count per injected fault (the engine —
    /// not the daemon — owns these; schema v9, nondeterministic-masked).
    pub report: ObsReport,
}

/// The fixed request every scenario submits: a small zoo model with a
/// deterministic iteration budget (no wall-clock budget), so the
/// fault-free response is a stable reference for bit-identity checks.
pub fn chaos_request() -> Request {
    Request {
        model: "gpt3-0.35b".into(),
        gpus: 1,
        max_iterations: 4,
        request_id: Some("chaos-req".into()),
        ..Request::default()
    }
}

/// The deterministic fields of a result frame, compact-printed: the
/// fingerprint two runs must share to count as bit-identical. Masks the
/// fields that legitimately vary across runs (`profile_micros` wall
/// time, `cache` hit/miss, the metrics snapshot's histograms) — and
/// nothing else.
pub fn response_fingerprint(result: &Value) -> String {
    const DETERMINISTIC: [&str; 7] = [
        "type",
        "best_time",
        "best_oom",
        "explored",
        "stages",
        "best_config",
        "plan",
    ];
    let Value::Object(fields) = result else {
        return result.to_string_compact();
    };
    let kept: Vec<(String, Value)> = fields
        .iter()
        .filter(|(k, _)| DETERMINISTIC.contains(&k.as_str()))
        .cloned()
        .collect();
    Value::Object(kept).to_string_compact()
}

/// One in-process daemon generation.
struct Daemon {
    addr: String,
    handle: std::thread::JoinHandle<ObsReport>,
}

fn spawn_daemon(
    store_dir: &Path,
    spool_dir: &Path,
    fs: Arc<dyn Fs>,
    direct_writes: bool,
) -> std::io::Result<Daemon> {
    let opts = ServeOptions {
        workers: 1,
        spool_dir: Some(spool_dir.to_path_buf()),
        checkpoint_every: 1,
        store_dir: Some(store_dir.to_path_buf()),
        fs,
        store_direct_writes: direct_writes,
        ..ServeOptions::default()
    };
    let server = Server::bind("127.0.0.1:0", opts)?;
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    Ok(Daemon { addr, handle })
}

/// Drains a daemon and checks oracle 4 on its report: every server
/// event must round-trip through the typed [`Event`] codec.
fn stop_daemon(daemon: Daemon, violations: &mut Vec<String>) {
    if let Err(e) = aceso_serve::shutdown(&daemon.addr) {
        violations.push(format!("shutdown-failed: {e}"));
        return;
    }
    let Ok(report) = daemon.handle.join() else {
        violations.push("daemon-panicked: run() did not return".to_string());
        return;
    };
    for event in report.events() {
        let round_trip =
            Event::from_json_value(&event.to_json_value(), &aceso_core::intern_obs_str);
        if round_trip.as_ref() != Ok(event) {
            violations.push(format!(
                "untyped-event: {} does not round-trip through the typed codec",
                event.kind()
            ));
        }
    }
}

/// The torn-entry oracle (INV-CHAOS-ORACLE, INV-STORE-ATOMIC observed
/// end to end): every visible store entry decodes cleanly — `aceso
/// store verify` semantics — on the *real* filesystem, at a quiescent
/// point. A store directory that was never created is vacuously clean.
fn verify_store(store_dir: &Path, when: &str, violations: &mut Vec<String>) {
    if !store_dir.exists() {
        return;
    }
    match Store::open(store_dir, u64::MAX) {
        Ok(store) => {
            for entry in store.ls() {
                if let Err(reason) = entry.status {
                    violations.push(format!("torn-entry {when}: {} ({reason})", entry.file));
                }
            }
        }
        Err(e) => violations.push(format!("store-unopenable {when}: {e}")),
    }
}

/// Runs scenarios against one fault-free reference fingerprint.
pub struct Engine {
    opts: ChaosOptions,
    reference: String,
    run_counter: AtomicU64,
}

impl Engine {
    /// Builds the engine: runs one fault-free scenario to capture the
    /// reference response fingerprint every chaotic run is compared to.
    pub fn new(opts: ChaosOptions) -> Result<Self, String> {
        let engine = Self {
            opts,
            reference: String::new(),
            run_counter: AtomicU64::new(0),
        };
        let dir = engine.fresh_run_dir();
        let daemon = spawn_daemon(
            &dir.join("store"),
            &dir.join("spool"),
            Arc::new(RealFs),
            false,
        )
        .map_err(|e| format!("reference daemon failed to bind: {e}"))?;
        let resp = submit_with_retries(&daemon.addr, &chaos_request(), 4)
            .map_err(|e| format!("reference submission failed: {e}"))?;
        let mut violations = Vec::new();
        stop_daemon(daemon, &mut violations);
        let _ = std::fs::remove_dir_all(&dir);
        if let Some(v) = violations.first() {
            return Err(format!("reference run violated an oracle: {v}"));
        }
        Ok(Self {
            reference: response_fingerprint(&resp.result),
            ..engine
        })
    }

    /// The fault-free reference fingerprint (for tests and reports).
    pub fn reference(&self) -> &str {
        &self.reference
    }

    fn fresh_run_dir(&self) -> PathBuf {
        let n = self.run_counter.fetch_add(1, Ordering::Relaxed);
        let dir = self.opts.root.join(format!("run-{n}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("chaos scratch directory");
        dir
    }

    /// Derives seed `seed`'s schedule (arming the mutation switch when
    /// the options ask for it) and runs it.
    pub fn run_seed(&self, seed: u64) -> (Schedule, ScenarioOutcome) {
        let mut schedule = Schedule::from_seed(seed);
        schedule.direct_writes = self.opts.mutate_direct_writes;
        let outcome = self.run_schedule(&schedule);
        (schedule, outcome)
    }

    /// Runs one whole-system scenario under `schedule` and checks every
    /// standing oracle (INV-CHAOS-ORACLE). Deterministic for a given
    /// schedule (INV-CHAOS-DETERMINISM): the daemon runs one request at
    /// a time with TTL sweeps disabled, so the filesystem-op ordinals a
    /// [`ChaosFs`] numbers are reproducible run over run.
    pub fn run_schedule(&self, schedule: &Schedule) -> ScenarioOutcome {
        let dir = self.fresh_run_dir();
        let store_dir = dir.join("store");
        let spool_dir = dir.join("spool");
        let mut violations = Vec::new();
        let req = chaos_request();

        let fs_a = Arc::new(ChaosFs::new(&schedule.gen_a));
        let fs_b = Arc::new(ChaosFs::new(&schedule.gen_b));

        let daemon_a = match spawn_daemon(
            &store_dir,
            &spool_dir,
            Arc::<ChaosFs>::clone(&fs_a),
            schedule.direct_writes,
        ) {
            Ok(d) => Some(d),
            Err(e) => {
                violations.push(format!("daemon-a-failed-to-start: {e}"));
                None
            }
        };

        // Generation A's submission, optionally through the fault proxy
        // (a crash/partition at a server→client frame boundary). A cut
        // submission may fail — that is the injected fault working, and
        // resubmission below is the recovery under test. An *uncut*
        // submission must succeed and match the reference: filesystem
        // faults degrade silently, they never surface to the client.
        if let Some(daemon) = &daemon_a {
            match schedule.net_cut {
                Some(frames) => match FaultProxy::start(&daemon.addr, frames as usize) {
                    Ok(proxy) => {
                        if let Ok(resp) = submit(&proxy.addr(), &req) {
                            self.check_fingerprint(&resp.result, &mut violations);
                        }
                    }
                    Err(e) => violations.push(format!("fault-proxy-failed: {e}")),
                },
                None => match submit_with_retries(&daemon.addr, &req, 4) {
                    Ok(resp) => self.check_fingerprint(&resp.result, &mut violations),
                    Err(e) => violations.push(format!("submit-failed: {e}")),
                },
            }
        }

        // Generation B: the restarted "process" on the same directories
        // — overlapping generation A when the schedule says concurrent,
        // after its drain otherwise.
        let daemon_a = if schedule.concurrent {
            daemon_a
        } else {
            if let Some(d) = daemon_a {
                stop_daemon(d, &mut violations);
            }
            // The torn-entry oracle holds at *every* quiescent point,
            // not just the end of the run: generation B will heal a
            // torn entry by degrading and rebuilding, so the window
            // between the generations is where a broken atomic-publish
            // discipline (the store-direct-write mutant) is visible.
            verify_store(&store_dir, "between generations", &mut violations);
            if schedule.panic_build {
                self.inject_panic(&store_dir, &mut violations);
            }
            None
        };

        match spawn_daemon(
            &store_dir,
            &spool_dir,
            Arc::<ChaosFs>::clone(&fs_b),
            schedule.direct_writes,
        ) {
            Ok(daemon_b) => {
                // The recovery resubmission: bounded retries, then the
                // bit-identity oracle against the fault-free reference.
                match submit_with_retries(&daemon_b.addr, &req, 4) {
                    Ok(resp) => self.check_fingerprint(&resp.result, &mut violations),
                    Err(e) => violations.push(format!("resubmit-failed: {e}")),
                }
                if schedule.concurrent && schedule.panic_build {
                    self.inject_panic(&store_dir, &mut violations);
                }
                if let Some(d) = daemon_a {
                    stop_daemon(d, &mut violations);
                }
                stop_daemon(daemon_b, &mut violations);
            }
            Err(e) => {
                violations.push(format!("restart-failed: {e}"));
                if let Some(d) = daemon_a {
                    stop_daemon(d, &mut violations);
                }
            }
        }

        // The torn-entry oracle again, after every daemon is gone:
        // whatever the faults did, no visible store entry may fail to
        // decode (`aceso store verify` clean).
        verify_store(&store_dir, "after the run", &mut violations);

        let mut injected = fs_a.injected();
        injected.extend(fs_b.injected());
        let crashed = fs_a.crashed() || fs_b.crashed();
        let _ = std::fs::remove_dir_all(&dir);
        ScenarioOutcome {
            violations,
            injected,
            crashed,
        }
    }

    fn check_fingerprint(&self, result: &Value, violations: &mut Vec<String>) {
        let got = response_fingerprint(result);
        if got != self.reference {
            violations.push(format!(
                "response-mismatch: got {got} want {}",
                self.reference
            ));
        }
    }

    /// The worker-panic dimension: a profile build that panics mid-way
    /// must be contained by `catch_unwind`, and the cache (sharing the
    /// scenario's store directory) must recover — the next build of the
    /// same key succeeds. Exercises the cache's `BuildGuard` unwind
    /// path against a real store tier.
    fn inject_panic(&self, store_dir: &Path, violations: &mut Vec<String>) {
        // A tiny model unique to the panic step: its fingerprint can
        // never already be resident in the scenario's store, so the
        // build closure is guaranteed to run (and panic) — a store hit
        // would bypass the build and nothing would be injected.
        let model = aceso_model::zoo::gpt3_custom("chaos-panic-probe", 2, 128, 4, 64, 512, 16);
        let cluster = aceso_cluster::ClusterSpec::v100_gpus(1);
        let store = match Store::open(store_dir, u64::MAX) {
            Ok(s) => s,
            Err(e) => {
                violations.push(format!("panic-step: store unopenable: {e}"));
                return;
            }
        };
        let cache = ProfileCache::with_store(u64::MAX, store);
        // Silence the default panic hook for the intentional panic; the
        // previous hook is restored immediately after.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_build_with(&model, &cluster, |_, _| panic!("injected worker panic"))
        }));
        std::panic::set_hook(prev_hook);
        if unwound.is_ok() {
            violations.push("panic-not-injected: the panicking build returned".to_string());
            return;
        }
        // Recovery: the slot must not be wedged.
        let (_db, _hit) = cache.get_or_build(&model, &cluster);
    }

    /// Runs every seed in `[first, last)`, stopping at (and shrinking)
    /// the first oracle violation. The returned report carries the
    /// synthesized `fault_injected` events and `chaos_faults_injected`
    /// counts for everything that was injected.
    pub fn run_range(&self, first: u64, last: u64) -> ChaosReport {
        let rec = aceso_obs::Recorder::new(true);
        let mut runs = 0usize;
        let mut faults = 0usize;
        let mut failure = None;
        for seed in first..last {
            let (schedule, outcome) = self.run_seed(seed);
            runs += 1;
            faults += outcome.injected.len();
            for f in &outcome.injected {
                rec.emit(|| Event::FaultInjected {
                    op: f.op,
                    kind: f.kind.name().to_string(),
                    path: f.path.display().to_string(),
                });
                rec.count_chaos_fault(f.kind.name(), 1);
            }
            if !outcome.violations.is_empty() {
                failure = Some(crate::shrink::shrink(self, &schedule, outcome.violations));
                break;
            }
        }
        let mut report = ObsReport::new();
        report.absorb(rec);
        ChaosReport {
            runs,
            faults_injected: faults,
            failure,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_reference_fingerprint_is_deterministic_and_masked() {
        let engine = Engine::new(ChaosOptions::in_temp("engine-ref")).expect("reference run");
        assert!(engine.reference().contains("best_config"));
        assert!(
            !engine.reference().contains("profile_micros"),
            "wall-clock fields must be masked out of the fingerprint"
        );
        let _ = std::fs::remove_dir_all(&engine.opts.root);
    }

    #[test]
    fn a_fault_free_schedule_passes_every_oracle() {
        let engine = Engine::new(ChaosOptions::in_temp("engine-clean")).expect("reference run");
        let clean = Schedule {
            seed: 0,
            gen_a: aceso_util::fsio::FaultSchedule::none(),
            gen_b: aceso_util::fsio::FaultSchedule::none(),
            net_cut: None,
            panic_build: false,
            concurrent: false,
            direct_writes: false,
        };
        let outcome = engine.run_schedule(&clean);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
        assert!(outcome.injected.is_empty());
        assert!(!outcome.crashed);
        let _ = std::fs::remove_dir_all(&engine.opts.root);
    }
}
