//! Seeded whole-system fault schedules and their replayable traces.
//!
//! A [`Schedule`] combines every fault dimension the engine can inject
//! into one scenario: filesystem faults for each daemon generation
//! ([`aceso_util::fsio::FaultSchedule`]), a network cut at a chosen
//! frame boundary ([`aceso_serve::FaultMode::CutAfterFrames`]), an
//! injected worker panic inside a profile build, and whether the two
//! daemon generations overlap on one store directory. The whole
//! schedule derives deterministically from one `u64` seed
//! (INV-CHAOS-DETERMINISM): the same seed always produces the same
//! schedule, and replaying a serialised schedule reproduces the same
//! injected faults in the same order.

use aceso_util::fsio::FaultSchedule;
use aceso_util::json::{JsonError, Value};
use aceso_util::SplitMix64;

/// One whole-system chaos scenario's fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// The seed this schedule derives from (kept for traces; a hand-
    /// edited replay file may carry events the seed would not generate).
    pub seed: u64,
    /// Filesystem faults injected into daemon generation A.
    pub gen_a: FaultSchedule,
    /// Filesystem faults injected into daemon generation B (the
    /// post-restart daemon).
    pub gen_b: FaultSchedule,
    /// When set, generation A's submission is routed through a
    /// [`aceso_serve::FaultProxy`] that severs the connection after
    /// this many server→client frames — the client-visible face of a
    /// daemon crash or partition mid-response.
    pub net_cut: Option<u64>,
    /// Inject a panicking profile-build worker (contained with
    /// `catch_unwind`) against the shared store between generations.
    pub panic_build: bool,
    /// Overlap the two daemon generations on one store directory
    /// instead of running them sequentially.
    pub concurrent: bool,
    /// Mutation-gate switch, never derived from the seed: run the
    /// daemons' stores with temp+rename disabled
    /// (`aceso chaos run --mutate store-direct-write`), deliberately
    /// breaking INV-STORE-ATOMIC so the oracles can prove they catch
    /// torn entries.
    pub direct_writes: bool,
}

impl Schedule {
    /// Derives the full scenario deterministically from `seed`
    /// (INV-CHAOS-DETERMINISM). Fault density is tuned so roughly half
    /// of all seeds inject at least one fault somewhere.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xC4A0_5EED);
        let gen_a = FaultSchedule::from_seed(rng.next_u64(), 24, 2);
        let gen_b = FaultSchedule::from_seed(rng.next_u64(), 24, 2);
        let net_cut = if rng.next_u64().is_multiple_of(4) {
            Some(rng.next_u64() % 4)
        } else {
            None
        };
        let panic_build = rng.next_u64().is_multiple_of(5);
        let concurrent = rng.next_u64().is_multiple_of(3);
        Self {
            seed,
            gen_a,
            gen_b,
            net_cut,
            panic_build,
            concurrent,
            direct_writes: false,
        }
    }

    /// Total scheduled fault events across every dimension — the size
    /// the shrinker minimises (INV-CHAOS-SHRINK).
    pub fn fault_count(&self) -> usize {
        self.gen_a.events.len()
            + self.gen_b.events.len()
            + usize::from(self.net_cut.is_some())
            + usize::from(self.panic_build)
    }

    /// Serialises the schedule as the core of a replayable trace.
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("seed".to_string(), Value::UInt(self.seed)),
            ("gen_a".to_string(), self.gen_a.to_json_value()),
            ("gen_b".to_string(), self.gen_b.to_json_value()),
            (
                "net_cut".to_string(),
                self.net_cut.map_or(Value::Null, Value::UInt),
            ),
            ("panic_build".to_string(), Value::Bool(self.panic_build)),
            ("concurrent".to_string(), Value::Bool(self.concurrent)),
            ("direct_writes".to_string(), Value::Bool(self.direct_writes)),
        ])
    }

    /// Restores a schedule from [`Schedule::to_json_value`] output.
    pub fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            seed: v.field("seed")?.as_u64()?,
            gen_a: FaultSchedule::from_json_value(v.field("gen_a")?)?,
            gen_b: FaultSchedule::from_json_value(v.field("gen_b")?)?,
            net_cut: match v.field("net_cut")? {
                Value::Null => None,
                other => Some(other.as_u64()?),
            },
            panic_build: v.field("panic_build")?.as_bool()?,
            concurrent: v.field("concurrent")?.as_bool()?,
            direct_writes: v.field("direct_writes")?.as_bool()?,
        })
    }
}

/// A violating schedule plus what it violated: the replayable artifact
/// `aceso chaos run` writes and `aceso chaos replay` consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The (shrunk) schedule that reproduces the violation.
    pub schedule: Schedule,
    /// The oracle violations observed under that schedule.
    pub violations: Vec<String>,
}

impl Trace {
    /// Serialises the trace as a pretty JSON document.
    pub fn to_json_string(&self) -> String {
        let doc = Value::Object(vec![
            ("schedule".to_string(), self.schedule.to_json_value()),
            (
                "violations".to_string(),
                Value::Array(
                    self.violations
                        .iter()
                        .map(|v| Value::Str(v.clone()))
                        .collect(),
                ),
            ),
        ]);
        let mut text = doc.to_string_pretty();
        text.push('\n');
        text
    }

    /// Restores a trace from [`Trace::to_json_string`] output.
    pub fn from_json_str(text: &str) -> Result<Self, JsonError> {
        let v = Value::parse(text)?;
        let mut violations = Vec::new();
        for entry in v.field("violations")?.as_array()? {
            violations.push(entry.as_str()?.to_string());
        }
        Ok(Self {
            schedule: Schedule::from_json_value(v.field("schedule")?)?,
            violations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_derive_deterministically_from_seeds() {
        for seed in 0..64 {
            assert_eq!(Schedule::from_seed(seed), Schedule::from_seed(seed));
        }
        // The dimensions are actually exercised across a seed sweep.
        let sweep: Vec<Schedule> = (0..64).map(Schedule::from_seed).collect();
        assert!(sweep.iter().any(|s| !s.gen_a.events.is_empty()));
        assert!(sweep.iter().any(|s| !s.gen_b.events.is_empty()));
        assert!(sweep.iter().any(|s| s.net_cut.is_some()));
        assert!(sweep.iter().any(|s| s.panic_build));
        assert!(sweep.iter().any(|s| s.concurrent));
        assert!(
            sweep.iter().all(|s| !s.direct_writes),
            "the mutation switch is never seed-derived"
        );
    }

    #[test]
    fn traces_round_trip_as_json() {
        for seed in [0u64, 3, 17, 41, 1_000_003] {
            let schedule = Schedule::from_seed(seed);
            let trace = Trace {
                schedule,
                violations: vec!["torn-entry: x".to_string()],
            };
            let back = Trace::from_json_str(&trace.to_json_string()).expect("parses");
            assert_eq!(back, trace);
        }
    }
}
