//! Hardware model: devices, cluster topology, and collective costs.
//!
//! The paper's testbed is 4 nodes × 8 NVIDIA V100-32GB, NVLink inside a
//! node and 100 Gb/s InfiniBand between nodes. This crate models exactly
//! the quantities Aceso's performance model consumes: peak compute, memory
//! capacity/bandwidth, and α–β costs for the collectives the parallelisms
//! induce (all-reduce for tp/dp, all-gather for resharding, point-to-point
//! for pipeline stage boundaries).

pub mod collective;
pub mod spec;
pub mod topology;

pub use collective::Collective;
pub use spec::{ClusterSpec, DeviceSpec};
pub use topology::{CommGroup, DeviceRange};
