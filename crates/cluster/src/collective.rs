//! α–β cost model for the collectives parallel training uses.
//!
//! Ring algorithms (what NCCL uses at these scales):
//!
//! * all-reduce: `2·(n−1)/n · bytes / bw + 2·(n−1)·α`
//! * all-gather / reduce-scatter: `(n−1)/n · bytes / bw + (n−1)·α`
//! * point-to-point: `bytes / bw + α`
//!
//! where `bw` is the bottleneck per-member bandwidth of the group
//! ([`CommGroup::ring_bandwidth`]) — NVLink when the group fits a node, a
//! NIC share when it spans nodes.

use crate::spec::ClusterSpec;
use crate::topology::CommGroup;

/// Collective operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Collective {
    /// Reduce + broadcast (gradient sync, tensor-parallel activations).
    AllReduce,
    /// Gather shards onto every member (resharding).
    AllGather,
    /// Reduce into shards (resharding).
    ReduceScatter,
}

/// Time for a collective of `bytes` payload over `group`.
///
/// Returns 0 for trivial groups (size ≤ 1) or zero payload.
///
/// # Examples
///
/// ```
/// use aceso_cluster::{collective, ClusterSpec, Collective, CommGroup};
///
/// let cluster = ClusterSpec::v100(1, 8);
/// let tp = CommGroup::contiguous(0, 4);
/// let t = collective::collective_time(&cluster, Collective::AllReduce, 1 << 20, &tp);
/// assert!(t > 0.0);
/// ```
pub fn collective_time(
    cluster: &ClusterSpec,
    kind: Collective,
    bytes: u64,
    group: &CommGroup,
) -> f64 {
    if group.size <= 1 || bytes == 0 {
        return 0.0;
    }
    let n = group.size as f64;
    let bw = group.ring_bandwidth(cluster);
    let alpha = group.hop_latency(cluster);
    let b = bytes as f64;
    match kind {
        Collective::AllReduce => 2.0 * (n - 1.0) / n * b / bw + 2.0 * (n - 1.0) * alpha,
        Collective::AllGather | Collective::ReduceScatter => {
            (n - 1.0) / n * b / bw + (n - 1.0) * alpha
        }
    }
}

/// Time to send `bytes` point-to-point between two global GPU ids
/// (pipeline stage boundaries).
pub fn p2p_time(cluster: &ClusterSpec, bytes: u64, from: usize, to: usize) -> f64 {
    if from == to || bytes == 0 {
        return 0.0;
    }
    let same_node = cluster.node_of(from) == cluster.node_of(to);
    let (bw, alpha) = if same_node {
        (cluster.nvlink_bw, cluster.lat_intra)
    } else {
        (cluster.ib_bw, cluster.lat_inter)
    };
    bytes as f64 / bw + alpha
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ClusterSpec {
        ClusterSpec::v100(4, 8)
    }

    #[test]
    fn trivial_cases_are_free() {
        let c = cluster();
        let g1 = CommGroup::contiguous(0, 1);
        assert_eq!(
            collective_time(&c, Collective::AllReduce, 1 << 20, &g1),
            0.0
        );
        let g2 = CommGroup::contiguous(0, 4);
        assert_eq!(collective_time(&c, Collective::AllReduce, 0, &g2), 0.0);
        assert_eq!(p2p_time(&c, 1 << 20, 3, 3), 0.0);
    }

    #[test]
    fn allreduce_double_of_allgather() {
        let c = cluster();
        let g = CommGroup::contiguous(0, 4);
        let ar = collective_time(&c, Collective::AllReduce, 1 << 26, &g);
        let ag = collective_time(&c, Collective::AllGather, 1 << 26, &g);
        assert!((ar / ag - 2.0).abs() < 0.05);
    }

    #[test]
    fn monotone_in_bytes() {
        let c = cluster();
        let g = CommGroup::contiguous(0, 8);
        let mut prev = 0.0;
        for sh in 10..30 {
            let t = collective_time(&c, Collective::AllReduce, 1 << sh, &g);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn cross_node_much_slower() {
        let c = cluster();
        let intra = CommGroup::contiguous(0, 8);
        let inter = CommGroup::contiguous(4, 8); // spans nodes 0 and 1
        let bytes = 1 << 28;
        let ti = collective_time(&c, Collective::AllReduce, bytes, &intra);
        let tx = collective_time(&c, Collective::AllReduce, bytes, &inter);
        assert!(tx > 3.0 * ti, "inter {tx} vs intra {ti}");
    }

    #[test]
    fn p2p_nvlink_vs_ib() {
        let c = cluster();
        let same = p2p_time(&c, 1 << 28, 0, 1);
        let cross = p2p_time(&c, 1 << 28, 7, 8);
        assert!(cross > 5.0 * same);
    }

    #[test]
    fn latency_floor_for_small_payloads() {
        let c = cluster();
        let g = CommGroup::contiguous(0, 8);
        let t = collective_time(&c, Collective::AllReduce, 4, &g);
        assert!(t >= 2.0 * 7.0 * c.lat_intra);
    }
}
