//! Device ranges and communication groups.

use crate::spec::ClusterSpec;

/// A contiguous range of global GPU ids (pipeline stages own one each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceRange {
    /// First global GPU id.
    pub start: usize,
    /// Number of GPUs.
    pub len: usize,
}

impl DeviceRange {
    /// Creates a range.
    pub fn new(start: usize, len: usize) -> Self {
        Self { start, len }
    }

    /// One-past-the-end GPU id.
    pub fn end(&self) -> usize {
        self.start + self.len
    }

    /// Whether the range spans more than one node of `cluster`.
    pub fn crosses_nodes(&self, cluster: &ClusterSpec) -> bool {
        self.len > 0 && cluster.node_of(self.start) != cluster.node_of(self.end() - 1)
    }
}

/// A strided communication group: members are
/// `start, start + stride, …, start + (size-1)·stride`.
///
/// Within a pipeline stage holding GPUs `[start, start+dp·tp)`, the tensor-
/// parallel groups are the contiguous sub-ranges of size `tp`
/// (`stride == 1`) and the data-parallel groups are strided by `tp` — so tp
/// traffic stays on NVLink as long as `tp ≤ gpus_per_node`, matching how
/// Megatron-LM packs groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CommGroup {
    /// First member's global GPU id.
    pub start: usize,
    /// Number of members.
    pub size: usize,
    /// Id distance between consecutive members.
    pub stride: usize,
}

impl CommGroup {
    /// A contiguous group.
    pub fn contiguous(start: usize, size: usize) -> Self {
        Self {
            start,
            size,
            stride: 1,
        }
    }

    /// A strided group.
    pub fn strided(start: usize, size: usize, stride: usize) -> Self {
        Self {
            start,
            size,
            stride: stride.max(1),
        }
    }

    /// Iterates over member GPU ids.
    pub fn members(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.size).map(move |k| self.start + k * self.stride)
    }

    /// Whether any two members live on different nodes.
    pub fn crosses_nodes(&self, cluster: &ClusterSpec) -> bool {
        if self.size <= 1 {
            return false;
        }
        let first = cluster.node_of(self.start);
        self.members().any(|g| cluster.node_of(g) != first)
    }

    /// Maximum number of group members that share one node.
    ///
    /// When a ring collective crosses nodes, all those members' ring links
    /// funnel through the node's single NIC, dividing its bandwidth.
    pub fn max_members_per_node(&self, cluster: &ClusterSpec) -> usize {
        let mut counts = std::collections::HashMap::new();
        for g in self.members() {
            *counts.entry(cluster.node_of(g)).or_insert(0usize) += 1;
        }
        counts.values().copied().max().unwrap_or(0)
    }

    /// Effective per-member ring bandwidth (bytes/s) for this group.
    pub fn ring_bandwidth(&self, cluster: &ClusterSpec) -> f64 {
        if self.crosses_nodes(cluster) {
            cluster.ib_bw / self.max_members_per_node(cluster) as f64
        } else {
            cluster.nvlink_bw
        }
    }

    /// Per-hop latency for this group.
    pub fn hop_latency(&self, cluster: &ClusterSpec) -> f64 {
        if self.crosses_nodes(cluster) {
            cluster.lat_inter
        } else {
            cluster.lat_intra
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_basics() {
        let r = DeviceRange::new(4, 8);
        assert_eq!(r.end(), 12);
        let c = ClusterSpec::v100(4, 8);
        assert!(r.crosses_nodes(&c));
        assert!(!DeviceRange::new(0, 8).crosses_nodes(&c));
        assert!(!DeviceRange::new(8, 0).crosses_nodes(&c));
    }

    #[test]
    fn contiguous_group_members() {
        let g = CommGroup::contiguous(2, 3);
        assert_eq!(g.members().collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn strided_group_members() {
        let g = CommGroup::strided(1, 3, 4);
        assert_eq!(g.members().collect::<Vec<_>>(), vec![1, 5, 9]);
    }

    #[test]
    fn tp_group_stays_intra_node() {
        let c = ClusterSpec::v100(4, 8);
        // tp=8 within node 1.
        let tp = CommGroup::contiguous(8, 8);
        assert!(!tp.crosses_nodes(&c));
        assert_eq!(tp.ring_bandwidth(&c), c.nvlink_bw);
    }

    #[test]
    fn dp_group_across_nodes_shares_nic() {
        let c = ClusterSpec::v100(4, 8);
        // dp=4 strided by tp=8: GPUs 0, 8, 16, 24 — one per node.
        let dp = CommGroup::strided(0, 4, 8);
        assert!(dp.crosses_nodes(&c));
        assert_eq!(dp.max_members_per_node(&c), 1);
        assert_eq!(dp.ring_bandwidth(&c), c.ib_bw);
    }

    #[test]
    fn packed_cross_node_group_divides_nic() {
        let c = ClusterSpec::v100(2, 8);
        // 16 contiguous GPUs: 8 per node all in one ring.
        let g = CommGroup::contiguous(0, 16);
        assert_eq!(g.max_members_per_node(&c), 8);
        assert!((g.ring_bandwidth(&c) - c.ib_bw / 8.0).abs() < 1.0);
    }

    #[test]
    fn hop_latency_reflects_span() {
        let c = ClusterSpec::v100(2, 8);
        let intra = CommGroup::contiguous(0, 4);
        let inter = CommGroup::contiguous(6, 4);
        assert_eq!(intra.hop_latency(&c), c.lat_intra);
        assert_eq!(inter.hop_latency(&c), c.lat_inter);
    }

    #[test]
    fn singleton_group_never_crosses() {
        let c = ClusterSpec::v100(4, 8);
        let g = CommGroup::contiguous(9, 1);
        assert!(!g.crosses_nodes(&c));
    }
}
