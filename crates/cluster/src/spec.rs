//! Device and cluster specifications.

use aceso_util::json::{obj, FromJson, JsonError, ToJson, Value};

/// Compute/memory characteristics of one accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Device name, e.g. `V100-32GB`.
    pub name: String,
    /// Peak FP16 tensor-core throughput in FLOP/s.
    pub peak_fp16_flops: f64,
    /// Peak FP32 throughput in FLOP/s.
    pub peak_fp32_flops: f64,
    /// HBM capacity in bytes.
    pub mem_bytes: u64,
    /// HBM bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// Fixed per-kernel launch overhead in seconds.
    pub kernel_overhead: f64,
}

impl DeviceSpec {
    /// NVIDIA V100-32GB (the paper's GPU).
    pub fn v100() -> Self {
        Self {
            name: "V100-32GB".into(),
            peak_fp16_flops: 112e12,
            peak_fp32_flops: 15.7e12,
            mem_bytes: 32 * (1 << 30),
            mem_bandwidth: 900e9,
            kernel_overhead: 8e-6,
        }
    }
}

/// A homogeneous multi-node GPU cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Per-device characteristics.
    pub device: DeviceSpec,
    /// Number of servers.
    pub nodes: usize,
    /// GPUs per server.
    pub gpus_per_node: usize,
    /// Effective intra-node (NVLink) bandwidth per GPU pair, bytes/s.
    pub nvlink_bw: f64,
    /// Inter-node (InfiniBand) bandwidth per server NIC, bytes/s.
    pub ib_bw: f64,
    /// Intra-node link latency, seconds.
    pub lat_intra: f64,
    /// Inter-node link latency, seconds.
    pub lat_inter: f64,
}

impl ClusterSpec {
    /// Builds the paper's testbed shape: V100s, NVLink intra-node,
    /// 100 Gb/s InfiniBand inter-node.
    pub fn v100(nodes: usize, gpus_per_node: usize) -> Self {
        Self {
            device: DeviceSpec::v100(),
            nodes,
            gpus_per_node,
            nvlink_bw: 130e9,
            ib_bw: 12.5e9,
            lat_intra: 5e-6,
            lat_inter: 20e-6,
        }
    }

    /// The paper's full 32-GPU evaluation cluster (4 × 8 V100).
    pub fn paper_testbed() -> Self {
        Self::v100(4, 8)
    }

    /// Builds the smallest paper-style cluster holding exactly `gpus`
    /// devices (≤ 8 per node, as in the evaluation's 1/4/8/16/32-GPU
    /// settings). For counts that do not pack into 8-GPU nodes, the
    /// largest divisor ≤ 8 becomes the node size.
    pub fn v100_gpus(gpus: usize) -> Self {
        let gpus = gpus.max(1);
        let per_node = (1..=gpus.min(8))
            .rev()
            .find(|d| gpus.is_multiple_of(*d))
            .unwrap_or(1);
        Self::v100(gpus / per_node, per_node)
    }

    /// Total device count.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Node index that hosts a global GPU id.
    pub fn node_of(&self, gpu: usize) -> usize {
        gpu / self.gpus_per_node
    }
}

impl ToJson for DeviceSpec {
    fn to_json_value(&self) -> Value {
        obj([
            ("name", Value::Str(self.name.clone())),
            ("peak_fp16_flops", Value::Float(self.peak_fp16_flops)),
            ("peak_fp32_flops", Value::Float(self.peak_fp32_flops)),
            ("mem_bytes", Value::UInt(self.mem_bytes)),
            ("mem_bandwidth", Value::Float(self.mem_bandwidth)),
            ("kernel_overhead", Value::Float(self.kernel_overhead)),
        ])
    }
}

impl FromJson for DeviceSpec {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            name: v.field("name")?.as_str()?.to_string(),
            peak_fp16_flops: v.field("peak_fp16_flops")?.as_f64()?,
            peak_fp32_flops: v.field("peak_fp32_flops")?.as_f64()?,
            mem_bytes: v.field("mem_bytes")?.as_u64()?,
            mem_bandwidth: v.field("mem_bandwidth")?.as_f64()?,
            kernel_overhead: v.field("kernel_overhead")?.as_f64()?,
        })
    }
}

impl ToJson for ClusterSpec {
    fn to_json_value(&self) -> Value {
        obj([
            ("device", self.device.to_json_value()),
            ("nodes", Value::UInt(self.nodes as u64)),
            ("gpus_per_node", Value::UInt(self.gpus_per_node as u64)),
            ("nvlink_bw", Value::Float(self.nvlink_bw)),
            ("ib_bw", Value::Float(self.ib_bw)),
            ("lat_intra", Value::Float(self.lat_intra)),
            ("lat_inter", Value::Float(self.lat_inter)),
        ])
    }
}

impl FromJson for ClusterSpec {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            device: DeviceSpec::from_json_value(v.field("device")?)?,
            nodes: v.field("nodes")?.as_usize()?,
            gpus_per_node: v.field("gpus_per_node")?.as_usize()?,
            nvlink_bw: v.field("nvlink_bw")?.as_f64()?,
            ib_bw: v.field("ib_bw")?.as_f64()?,
            lat_intra: v.field("lat_intra")?.as_f64()?,
            lat_inter: v.field("lat_inter")?.as_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let c = ClusterSpec::paper_testbed();
        assert_eq!(c.total_gpus(), 32);
        assert_eq!(c.nodes, 4);
        assert_eq!(c.device.mem_bytes, 32 * (1 << 30));
    }

    #[test]
    fn node_mapping() {
        let c = ClusterSpec::v100(4, 8);
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(7), 0);
        assert_eq!(c.node_of(8), 1);
        assert_eq!(c.node_of(31), 3);
    }

    #[test]
    fn v100_gpus_builder() {
        assert_eq!(ClusterSpec::v100_gpus(1).total_gpus(), 1);
        assert_eq!(ClusterSpec::v100_gpus(4).total_gpus(), 4);
        assert_eq!(ClusterSpec::v100_gpus(8).total_gpus(), 8);
        assert_eq!(ClusterSpec::v100_gpus(16).total_gpus(), 16);
        assert_eq!(ClusterSpec::v100_gpus(32).total_gpus(), 32);
        assert_eq!(ClusterSpec::v100_gpus(32).nodes, 4);
    }

    #[test]
    fn v100_gpus_exact_for_awkward_counts() {
        for g in 1..=40 {
            let c = ClusterSpec::v100_gpus(g);
            assert_eq!(c.total_gpus(), g, "requested {g}");
            assert!(c.gpus_per_node <= 8);
        }
        // 12 GPUs: 2 nodes × 6, not 16 GPUs.
        let c = ClusterSpec::v100_gpus(12);
        assert_eq!((c.nodes, c.gpus_per_node), (2, 6));
        assert_eq!(ClusterSpec::v100_gpus(0).total_gpus(), 1);
    }

    #[test]
    fn fp16_faster_than_fp32() {
        let d = DeviceSpec::v100();
        assert!(d.peak_fp16_flops > d.peak_fp32_flops);
    }
}
