//! The machine-checkable schema registry.
//!
//! [`EVENTS`], [`COUNTERS`], and [`HISTOGRAMS`] describe every event
//! kind, field, counter, and histogram the crate can emit. Tests in
//! this module enforce two directions of the contract:
//!
//! 1. the registry matches the serialiser
//!    ([`Event::to_json_value`](crate::event::Event::to_json_value))
//!    field-for-field, in order, and
//! 2. every registry name appears in `docs/OBSERVABILITY.md`, so the
//!    human-facing schema document cannot silently drift from the code.

/// Version stamped into every metric snapshot as `schema_version`.
/// Bump when an event field or metric name changes meaning.
///
/// v2: the always-zero `perf_validated` counter was removed and the
/// incremental-evaluation counters `perf_incremental_hits` /
/// `perf_full_evals` were added.
///
/// v3: the serve-daemon counters `profile_cache_hits` /
/// `profile_cache_misses` / `serve_requests` / `serve_rejected` were
/// added (they stay zero in library-only runs).
///
/// v4: the crash-recovery counters `checkpoints_written` /
/// `search_resumed` / `client_retries` and the server-level events
/// `search_resumed` / `search_restarted` were added (all stay zero in
/// runs that never touch a checkpoint).
///
/// v5: the keyed `audit_findings` counter family was added to the
/// snapshot (static-verifier findings by audit rule, mirroring the
/// shape of `primitives_applied`; stays empty outside `aceso audit`
/// runs).
///
/// v6: the work-stealing frontier counters were added.
/// `search_worker_batches` (candidate batches consumed by the frontier
/// reducer's ordinal merge) is deterministic and worker-count
/// independent; `search_steals` (tasks stolen between worker deques) is
/// scheduling-dependent and listed in [`NONDETERMINISTIC_COUNTERS`], so
/// bit-identity comparisons mask it. Both stay zero in single-threaded
/// runs except `search_worker_batches`, which counts the same batches
/// the serial path consumes.
///
/// v7: the serve-reactor counters were added. `serve_connections_open`
/// (open-connection gauge sampled at snapshot time),
/// `serve_pipelined_requests` (requests that joined a connection already
/// carrying work), and `serve_fairness_deferrals` (round-robin dispatch
/// decisions that preferred an idle connection over a pipelined one)
/// are all timing- or scheduling-dependent and listed in
/// [`NONDETERMINISTIC_COUNTERS`]. They are server-level counters: they
/// appear in daemon `stats` snapshots, never in per-request response
/// metrics, so the per-request determinism contract is unaffected.
///
/// v8: the persistent profile-store counters `store_hits` /
/// `store_misses` / `store_writes` / `store_evictions` /
/// `store_rejected` and the `store_degraded` event were added. All are
/// server-level (daemon `stats` snapshots only) and deterministic for a
/// given request sequence against a given store directory; they stay
/// zero when the daemon runs without `--store-dir`.
///
/// v9: the chaos-engine surface was added. The keyed
/// `chaos_faults_injected` counter family (injected filesystem faults
/// by kind) and the `fault_injected` event exist only under
/// `aceso chaos` / `ChaosFs` runs and are nondeterministic-masked
/// ([`NONDETERMINISTIC_FAMILIES`]); the `retention_sweep_errors`
/// counter and `sweep_degraded` event surface retention-sweep removals
/// that used to fail silently (both deterministic for a fixed fault
/// schedule, zero in healthy runs).
pub const SCHEMA_VERSION: u64 = 9;

/// One documented field of an event kind.
#[derive(Debug, Clone, Copy)]
pub struct FieldSpec {
    /// JSON key of the field.
    pub name: &'static str,
    /// JSON type (`uint`, `int`, `float`, `string`, `bool`,
    /// `array[uint]`).
    pub ty: &'static str,
    /// Unit or value domain, `-` when dimensionless.
    pub unit: &'static str,
}

/// One documented event kind.
#[derive(Debug, Clone, Copy)]
pub struct EventSpec {
    /// The `kind` tag of the event's JSONL line.
    pub kind: &'static str,
    /// What the event records.
    pub doc: &'static str,
    /// Payload fields in serialisation order (after `seq` and `kind`).
    pub fields: &'static [FieldSpec],
}

const fn f(name: &'static str, ty: &'static str, unit: &'static str) -> FieldSpec {
    FieldSpec { name, ty, unit }
}

/// Every event kind the crate can emit, in the order of
/// [`Event::samples`](crate::event::Event::samples).
pub const EVENTS: &[EventSpec] = &[
    EventSpec {
        kind: "search_start",
        doc: "a full search started",
        fields: &[
            f("stage_counts", "array[uint]", "pipeline stages"),
            f("max_hops", "uint", "hops"),
            f("max_iterations", "uint", "iterations"),
            f("top_k", "uint", "configs"),
            f("seed", "uint", "-"),
            f("heuristic2", "bool", "-"),
        ],
    },
    EventSpec {
        kind: "stage_start",
        doc: "one stage-count sub-search started",
        fields: &[
            f("stage_count", "uint", "pipeline stages"),
            f("init_fingerprint", "uint", "semantic hash"),
            f("init_score", "float", "seconds"),
        ],
    },
    EventSpec {
        kind: "bottleneck",
        doc: "a bottleneck was selected for alleviation (Heuristic-1)",
        fields: &[
            f("stage_count", "uint", "pipeline stages"),
            f("iteration", "uint", "index"),
            f("stage", "uint", "stage index"),
            f("resource", "string", "compute|communication|memory"),
        ],
    },
    EventSpec {
        kind: "candidate_accepted",
        doc: "a candidate improved the iteration's starting score and was accepted",
        fields: &[
            f("stage_count", "uint", "pipeline stages"),
            f("fingerprint", "uint", "semantic hash"),
            f("score", "float", "seconds"),
            f("bottleneck_stage", "uint", "stage index"),
            f("primitive", "string", "Table-1 name"),
            f("primitives_applied", "uint", "primitives"),
            f("hop_depth", "uint", "hops"),
        ],
    },
    EventSpec {
        kind: "candidate_rejected",
        doc: "a candidate did not improve and was parked in the unexplored pool",
        fields: &[
            f("stage_count", "uint", "pipeline stages"),
            f("fingerprint", "uint", "semantic hash"),
            f("score", "float", "seconds"),
            f("bottleneck_stage", "uint", "stage index"),
            f("primitive", "string", "Table-1 name"),
            f("primitives_applied", "uint", "primitives"),
            f("hop_depth", "uint", "hops"),
        ],
    },
    EventSpec {
        kind: "iteration",
        doc: "one iteration of Algorithm 1 finished",
        fields: &[
            f("stage_count", "uint", "pipeline stages"),
            f("iteration", "uint", "index"),
            f("bottlenecks_tried", "uint", "bottlenecks"),
            f("hops_used", "uint", "hops"),
            f("improved", "bool", "-"),
        ],
    },
    EventSpec {
        kind: "finetune",
        doc: "the op-level fine-tuning pass ran on an accepted configuration",
        fields: &[
            f("stage_count", "uint", "pipeline stages"),
            f("evaluations", "uint", "configs"),
            f("fingerprint", "uint", "semantic hash"),
            f("adopted", "bool", "-"),
        ],
    },
    EventSpec {
        kind: "backtrack",
        doc: "the search backtracked to a parked configuration",
        fields: &[
            f("stage_count", "uint", "pipeline stages"),
            f("fingerprint", "uint", "semantic hash"),
            f("score", "float", "seconds"),
        ],
    },
    EventSpec {
        kind: "stage_end",
        doc: "one stage-count sub-search finished",
        fields: &[
            f("stage_count", "uint", "pipeline stages"),
            f("iterations", "uint", "iterations"),
            f("explored", "uint", "configs"),
            f("best_score", "float", "seconds"),
            f("best_fingerprint", "uint", "semantic hash"),
        ],
    },
    EventSpec {
        kind: "search_end",
        doc: "the full search finished",
        fields: &[
            f("explored", "uint", "configs"),
            f("stage_counts_searched", "uint", "sub-searches"),
            f("best_score", "float", "seconds"),
            f("best_fingerprint", "uint", "semantic hash"),
        ],
    },
    EventSpec {
        kind: "search_resumed",
        doc: "a search was resumed from a durable checkpoint (server-level only)",
        fields: &[
            f("request_id", "string", "-"),
            f("iterations_done", "uint", "iterations"),
        ],
    },
    EventSpec {
        kind: "search_restarted",
        doc: "an unusable checkpoint was discarded and the search restarted fresh (server-level only)",
        fields: &[f("request_id", "string", "-"), f("reason", "string", "-")],
    },
    EventSpec {
        kind: "sim_run",
        doc: "the discrete-event simulator executed one configuration",
        fields: &[
            f("stages", "uint", "pipeline stages"),
            f("microbatches", "uint", "microbatches"),
            f("tasks", "uint", "tasks"),
            f("iteration_time", "float", "seconds"),
            f("peak_memory", "uint", "bytes"),
            f("schedule", "string", "1f1b|gpipe"),
            f("oom", "bool", "-"),
        ],
    },
    EventSpec {
        kind: "store_degraded",
        doc: "an unusable persistent-store entry was discarded and the profile database rebuilt fresh (server-level only)",
        fields: &[f("file", "string", "-"), f("reason", "string", "-")],
    },
    EventSpec {
        kind: "fault_injected",
        doc: "the chaos engine injected one filesystem fault (chaos runs only; nondeterministic-masked)",
        fields: &[
            f("op", "uint", "operation ordinal"),
            f("fault", "string", "eio|enospc|short_write|rename_fail|crash"),
            f("path", "string", "-"),
        ],
    },
    EventSpec {
        kind: "sweep_degraded",
        doc: "a retention sweep failed to remove one or more victims (server-level only)",
        fields: &[f("dir", "string", "-"), f("errors", "uint", "failed removals")],
    },
];

/// Every counter name with its description, in snapshot order.
pub const COUNTERS: &[(&str, &str)] = &[
    ("perf_evaluations", "performance-model evaluations"),
    (
        "perf_incremental_hits",
        "evaluations that reused at least one cached per-stage estimate",
    ),
    (
        "perf_full_evals",
        "evaluations that estimated every stage from scratch",
    ),
    ("oom_predictions", "evaluations predicting out-of-memory"),
    ("candidates_generated", "candidates evaluated post-dedup"),
    (
        "candidates_accepted",
        "candidates that improved and were accepted",
    ),
    (
        "candidates_rejected",
        "candidates parked in the unexplored pool",
    ),
    (
        "candidates_deduped",
        "candidates skipped as already visited",
    ),
    ("iterations_total", "Algorithm-1 iterations run"),
    (
        "iterations_improved",
        "iterations that improved the configuration",
    ),
    ("finetune_evals", "configurations evaluated by fine-tuning"),
    ("backtracks", "backtracks to parked configurations"),
    ("stage_searches", "stage-count sub-searches started"),
    ("sim_runs", "simulator executions"),
    ("sim_tasks", "pipeline tasks executed by the simulator"),
    (
        "profile_cache_hits",
        "serve requests resolved from the cross-request ProfileDb cache",
    ),
    (
        "profile_cache_misses",
        "serve requests that built a ProfileDb before searching",
    ),
    (
        "serve_requests",
        "well-formed search requests accepted by the serve daemon",
    ),
    (
        "serve_rejected",
        "requests rejected by the serve daemon (backpressure, budget, validation)",
    ),
    (
        "checkpoints_written",
        "search checkpoints written to durable storage",
    ),
    (
        "search_resumed",
        "searches resumed from a previously written checkpoint",
    ),
    (
        "client_retries",
        "resubmissions of an already-spooled request id (client retries)",
    ),
    (
        "search_worker_batches",
        "candidate batches consumed by the frontier reducer's ordinal merge",
    ),
    (
        "search_steals",
        "frontier tasks stolen between worker deques (scheduling-dependent)",
    ),
    (
        "serve_connections_open",
        "connections open on the serve reactor, sampled at snapshot time",
    ),
    (
        "serve_pipelined_requests",
        "requests that joined a connection already carrying queued or in-flight work",
    ),
    (
        "serve_fairness_deferrals",
        "round-robin dispatches that preferred an idle connection while a pipelined request waited",
    ),
    (
        "store_hits",
        "cache misses resolved from the persistent on-disk profile store",
    ),
    (
        "store_misses",
        "store consultations that found no usable entry",
    ),
    (
        "store_writes",
        "profile databases written back to the persistent store",
    ),
    (
        "store_evictions",
        "store entries evicted from disk by the LRU byte budget",
    ),
    (
        "store_rejected",
        "decodable store entries skipped for precision mismatch",
    ),
    (
        "retention_sweep_errors",
        "retention-sweep removals that failed (spool TTL or store LRU)",
    ),
];

/// Counters whose values legitimately vary between runs with identical
/// seeds and options: the work-stealing steal count (OS scheduling) and
/// the serve-reactor counters (connection timing and dispatch order).
/// Every bit-identity comparison (goldens, checkpoint-resume equality,
/// the worker-count determinism sweep) masks these names, and the
/// search never includes them in a checkpoint. Everything else in
/// [`COUNTERS`] is covered by the determinism contract.
pub const NONDETERMINISTIC_COUNTERS: &[&str] = &[
    "search_steals",
    "serve_connections_open",
    "serve_pipelined_requests",
    "serve_fairness_deferrals",
];

/// Keyed counter *families* whose contents legitimately vary between
/// runs: fault placement in `chaos_faults_injected` follows the seeded
/// chaos schedule, not the workload, so bit-identity comparisons mask
/// the whole family (the per-request determinism contract is unaffected
/// — the family stays empty outside chaos runs). The `fault_injected`
/// event is masked for the same reason.
pub const NONDETERMINISTIC_FAMILIES: &[&str] = &["chaos_faults_injected"];

/// Every histogram name with its unit and description, in snapshot
/// order.
pub const HISTOGRAMS: &[(&str, &str, &str)] = &[
    (
        "eval_latency_us",
        "microseconds",
        "perf-model evaluation latency (wall clock; metrics-only)",
    ),
    (
        "score_delta",
        "ratio",
        "relative score improvement of accepted candidates",
    ),
    (
        "hop_depth",
        "hops",
        "multi-hop depth of accepted candidates",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::metrics::{Counter, HistKind};
    use aceso_util::json::Value;

    /// Direction 1: the registry matches the serialiser exactly.
    #[test]
    fn registry_matches_serialiser_field_for_field() {
        let samples = Event::samples();
        assert_eq!(samples.len(), EVENTS.len(), "registry/variant count");
        for (event, spec) in samples.iter().zip(EVENTS) {
            assert_eq!(event.kind(), spec.kind);
            let v = event.to_json_value();
            let Value::Object(fields) = &v else {
                panic!("event must serialise to an object")
            };
            let emitted: Vec<&str> = fields.iter().skip(1).map(|(k, _)| k.as_str()).collect();
            let specced: Vec<&str> = spec.fields.iter().map(|f| f.name).collect();
            assert_eq!(emitted, specced, "field order for {}", spec.kind);
            for (field, fspec) in fields.iter().skip(1).zip(spec.fields) {
                let ok = match fspec.ty {
                    "uint" => matches!(field.1, Value::UInt(_)),
                    "int" => matches!(field.1, Value::Int(_) | Value::UInt(_)),
                    "float" => matches!(field.1, Value::Float(_)),
                    "string" => matches!(field.1, Value::Str(_)),
                    "bool" => matches!(field.1, Value::Bool(_)),
                    "array[uint]" => matches!(field.1, Value::Array(_)),
                    other => panic!("unknown spec type {other}"),
                };
                assert!(ok, "type of {}.{}", spec.kind, fspec.name);
            }
        }
    }

    #[test]
    fn registry_covers_all_counters_and_histograms() {
        assert_eq!(COUNTERS.len(), Counter::ALL.len());
        for (c, (name, _)) in Counter::ALL.iter().zip(COUNTERS) {
            assert_eq!(c.name(), *name);
        }
        assert_eq!(HISTOGRAMS.len(), HistKind::ALL.len());
        for (h, (name, _, _)) in HistKind::ALL.iter().zip(HISTOGRAMS) {
            assert_eq!(h.name(), *name);
        }
    }

    #[test]
    fn nondeterministic_counters_are_registered_counters() {
        for name in NONDETERMINISTIC_COUNTERS {
            assert!(
                COUNTERS.iter().any(|(n, _)| n == name),
                "`{name}` is listed as non-deterministic but is not a registered counter"
            );
        }
    }

    /// Direction 2: every registry name appears in the schema document.
    #[test]
    fn observability_doc_covers_registry() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/OBSERVABILITY.md");
        let doc =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        for spec in EVENTS {
            assert!(
                doc.contains(&format!("`{}`", spec.kind)),
                "docs/OBSERVABILITY.md is missing event kind `{}`",
                spec.kind
            );
            for field in spec.fields {
                assert!(
                    doc.contains(&format!("`{}`", field.name)),
                    "docs/OBSERVABILITY.md is missing field `{}` of `{}`",
                    field.name,
                    spec.kind
                );
            }
        }
        for (name, _) in COUNTERS {
            assert!(
                doc.contains(&format!("`{name}`")),
                "docs/OBSERVABILITY.md is missing counter `{name}`"
            );
        }
        for (name, _, _) in HISTOGRAMS {
            assert!(
                doc.contains(&format!("`{name}`")),
                "docs/OBSERVABILITY.md is missing histogram `{name}`"
            );
        }
        assert!(
            doc.contains(&format!("schema version: {SCHEMA_VERSION}"))
                || doc.contains(&format!("`schema_version`: {SCHEMA_VERSION}"))
                || doc.contains(&format!("schema_version` = {SCHEMA_VERSION}")),
            "docs/OBSERVABILITY.md must state the current schema version"
        );
    }
}
