//! # aceso-obs — structured observability for the Aceso search stack
//!
//! The paper's headline claim is *search cost*; tracking it requires the
//! search loop to stop being a black box. This crate provides the three
//! instrumentation shapes the stack needs, with zero external
//! dependencies and zero ambient state:
//!
//! * **Events** ([`Event`]) — a typed, documented stream of what the
//!   search did: stage-count sub-search spans, per-iteration outcomes,
//!   every accepted/rejected candidate (fingerprint, score, bottleneck
//!   stage, primitive), fine-tune passes, backtracks, and simulator runs.
//!   Events carry *only deterministic fields* (no wall-clock timestamps),
//!   so two identical seeded searches emit byte-identical JSONL streams.
//! * **Counters** ([`Counter`] plus the keyed `primitives_applied`
//!   family) — monotone totals: perf-model evaluations, candidates
//!   generated/accepted/rejected/deduplicated, OOM predictions,
//!   iterations, backtracks, simulator tasks.
//! * **Histograms** ([`HistKind`]) — fixed-bucket distributions:
//!   perf-model evaluation latency (wall clock; metrics-only, never in
//!   the event stream), relative score deltas of accepted candidates,
//!   and hop depths.
//!
//! Instrumented code records into a [`Recorder`]. Recorders are
//! *thread-scoped*: the parallel stage-count search creates one per
//! thread (no locks, no contention) and the parent merges them into an
//! [`ObsReport`] in deterministic stage-count order after join. A
//! disabled recorder ([`Recorder::disabled`]) skips even the
//! construction of event payloads — every recording call takes a closure
//! or is guarded by one branch on a plain bool — so the instrumentation
//! compiles down to nothing measurable when metrics are off.
//!
//! The JSONL event schema and the metric snapshot format are a
//! documented public contract: see `docs/OBSERVABILITY.md`, which is
//! cross-checked against [`schema`]'s registry by tests in this crate.

#![deny(missing_docs)]

pub mod diff;
pub mod event;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod schema;

pub use diff::{render_diff, DiffError};
pub use event::Event;
pub use metrics::{Counter, HistKind, Histogram, Metrics};
pub use recorder::Recorder;
pub use report::ObsReport;
pub use schema::{EventSpec, FieldSpec, NONDETERMINISTIC_COUNTERS, SCHEMA_VERSION};
