//! Cross-run metric-snapshot diffing (`aceso obs-diff`).
//!
//! Two metric snapshots written by [`crate::ObsReport::metrics_json`]
//! can be compared field-for-field: counter deltas (including the keyed
//! `primitives_applied` family) and histogram shifts (count, mean,
//! min/max) render as review-friendly tables. Snapshots with different
//! `schema_version`s refuse to diff — counter meanings may have changed
//! between versions, so a silent cross-version diff would lie.

use aceso_util::json::Value;
use aceso_util::table::Table;

/// Why two snapshots could not be diffed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffError {
    /// The snapshots carry different `schema_version`s (left, right).
    SchemaMismatch(u64, u64),
    /// A snapshot is structurally not a metrics document.
    Malformed(String),
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::SchemaMismatch(a, b) => write!(
                f,
                "schema_version mismatch: {a} vs {b} — counters may have \
                 changed meaning between versions; refusing to diff. See \
                 the \"Schema history\" notes in docs/OBSERVABILITY.md \
                 for what changed in each version"
            ),
            DiffError::Malformed(msg) => write!(f, "malformed metrics snapshot: {msg}"),
        }
    }
}

impl std::error::Error for DiffError {}

fn version_of(v: &Value, side: &str) -> Result<u64, DiffError> {
    v.field("schema_version")
        .and_then(|f| f.as_u64())
        .map_err(|e| DiffError::Malformed(format!("{side}: schema_version: {e}")))
}

/// All `name → uint` pairs of an object field, empty when absent.
fn uint_entries(v: &Value, field: &str) -> Vec<(String, u64)> {
    match v.get(field) {
        Some(Value::Object(fields)) => fields
            .iter()
            .filter_map(|(k, v)| v.as_u64().ok().map(|n| (k.clone(), n)))
            .collect(),
        _ => Vec::new(),
    }
}

/// Union of both sides' keys, left order first, right-only keys after.
fn key_union(a: &[(String, u64)], b: &[(String, u64)]) -> Vec<String> {
    let mut keys: Vec<String> = a.iter().map(|(k, _)| k.clone()).collect();
    for (k, _) in b {
        if !keys.contains(k) {
            keys.push(k.clone());
        }
    }
    keys
}

fn lookup(entries: &[(String, u64)], key: &str) -> Option<u64> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
}

fn fmt_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |n| n.to_string())
}

fn fmt_delta(a: Option<u64>, b: Option<u64>) -> String {
    match (a, b) {
        (Some(a), Some(b)) => {
            let d = b as i128 - a as i128;
            if d == 0 {
                String::new()
            } else {
                format!("{d:+}")
            }
        }
        _ => "±?".to_string(),
    }
}

/// Float stats of one histogram snapshot.
#[derive(Debug, Clone, Copy, Default)]
struct HistStats {
    count: u64,
    mean: f64,
}

fn hist_stats(v: &Value, name: &str) -> Option<HistStats> {
    let h = v.get("histograms")?.get(name)?;
    let count = h.get("count")?.as_u64().ok()?;
    let sum = h.get("sum")?.as_f64().ok()?;
    Some(HistStats {
        count,
        mean: if count == 0 { 0.0 } else { sum / count as f64 },
    })
}

/// Renders the counter + histogram diff between two parsed snapshots.
///
/// Counter rows cover the union of both sides' `counters` and
/// `primitives_applied` keys; unchanged counters are summarised in one
/// trailing line instead of listed. Returns [`DiffError::SchemaMismatch`]
/// when the snapshots' `schema_version`s differ.
pub fn render_diff(a: &Value, b: &Value) -> Result<String, DiffError> {
    let va = version_of(a, "left")?;
    let vb = version_of(b, "right")?;
    if va != vb {
        return Err(DiffError::SchemaMismatch(va, vb));
    }

    let mut out = String::new();
    let mut counters = Table::new(
        format!("counter deltas (schema_version {va})"),
        &["counter", "left", "right", "delta"],
    );
    let mut unchanged = 0usize;
    for (field, prefix) in [
        ("counters", ""),
        ("primitives_applied", "primitive["),
        ("audit_findings", "audit["),
        ("chaos_faults_injected", "chaos["),
    ] {
        let left = uint_entries(a, field);
        let right = uint_entries(b, field);
        for key in key_union(&left, &right) {
            let la = lookup(&left, &key);
            let rb = lookup(&right, &key);
            if la == rb {
                unchanged += 1;
                continue;
            }
            let label = if prefix.is_empty() {
                key.clone()
            } else {
                format!("{prefix}{key}]")
            };
            counters.row(&[label, fmt_opt(la), fmt_opt(rb), fmt_delta(la, rb)]);
        }
    }
    if counters.is_empty() {
        out.push_str(&format!(
            "no counter drift ({unchanged} counters identical, schema_version {va})\n"
        ));
    } else {
        out.push_str(&counters.render());
        out.push_str(&format!("({unchanged} counters unchanged)\n"));
    }

    let hist_names: Vec<String> = match (a.get("histograms"), b.get("histograms")) {
        (Some(Value::Object(ha)), Some(Value::Object(hb))) => {
            let la: Vec<(String, u64)> = ha.iter().map(|(k, _)| (k.clone(), 0)).collect();
            let lb: Vec<(String, u64)> = hb.iter().map(|(k, _)| (k.clone(), 0)).collect();
            key_union(&la, &lb)
        }
        _ => Vec::new(),
    };
    let mut hists = Table::new(
        "histogram shift",
        &["histogram", "count", "mean", "mean shift"],
    );
    for name in hist_names {
        let sa = hist_stats(a, &name).unwrap_or_default();
        let sb = hist_stats(b, &name).unwrap_or_default();
        if sa.count == 0 && sb.count == 0 {
            continue;
        }
        let shift = if sa.mean == 0.0 {
            "-".to_string()
        } else {
            format!("{:+.1}%", (sb.mean / sa.mean - 1.0) * 100.0)
        };
        hists.row(&[
            name,
            format!("{} -> {}", sa.count, sb.count),
            format!("{:.3} -> {:.3}", sa.mean, sb.mean),
            shift,
        ]);
    }
    if !hists.is_empty() {
        out.push('\n');
        out.push_str(&hists.render());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Counter, HistKind};
    use crate::recorder::Recorder;
    use crate::report::ObsReport;

    fn snapshot(evals: u64, latency: Option<f64>) -> Value {
        let rec = Recorder::new(true);
        rec.add(Counter::PerfEvaluations, evals);
        rec.add(Counter::PerfFullEvals, evals);
        rec.count_primitive("inc-dp", 2);
        if let Some(v) = latency {
            rec.observe(HistKind::EvalLatencyUs, v);
        }
        let mut report = ObsReport::new();
        report.absorb(rec);
        Value::parse(&report.metrics_json()).expect("own snapshot parses")
    }

    #[test]
    fn identical_snapshots_report_no_drift() {
        let a = snapshot(5, None);
        let out = render_diff(&a, &a).expect("diffs");
        assert!(out.contains("no counter drift"), "{out}");
    }

    #[test]
    fn counter_deltas_are_signed() {
        let a = snapshot(5, None);
        let b = snapshot(9, None);
        let out = render_diff(&a, &b).expect("diffs");
        assert!(out.contains("perf_evaluations"), "{out}");
        assert!(out.contains("+4"), "{out}");
        // Unchanged primitive counts are summarised, not listed.
        assert!(!out.contains("primitive[inc-dp]"), "{out}");
        assert!(out.contains("counters unchanged"), "{out}");
    }

    #[test]
    fn histogram_shift_reports_counts_and_means() {
        let a = snapshot(5, Some(10.0));
        let b = snapshot(5, Some(20.0));
        let out = render_diff(&a, &b).expect("diffs");
        assert!(out.contains("eval_latency_us"), "{out}");
        assert!(out.contains("1 -> 1"), "{out}");
        assert!(out.contains("+100.0%"), "{out}");
    }

    #[test]
    fn schema_mismatch_refuses_to_diff() {
        let a = snapshot(5, None);
        let mut b = snapshot(5, None);
        if let Value::Object(fields) = &mut b {
            for (k, v) in fields.iter_mut() {
                if k == "schema_version" {
                    *v = Value::UInt(1);
                }
            }
        }
        match render_diff(&a, &b) {
            Err(DiffError::SchemaMismatch(_, 1)) => {}
            other => panic!("expected schema mismatch, got {other:?}"),
        }
    }

    #[test]
    fn missing_keys_render_as_dash() {
        let a = snapshot(5, None);
        let mut b = snapshot(5, None);
        // Drop one side's primitive family entirely.
        if let Value::Object(fields) = &mut b {
            fields.retain(|(k, _)| k != "primitives_applied");
        }
        // Also bump a counter so the table renders.
        let out = render_diff(&a, &b).expect("diffs");
        assert!(out.contains("primitive[inc-dp]"), "{out}");
        assert!(out.contains('-'), "{out}");
    }
}
