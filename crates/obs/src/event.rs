//! The typed observability event stream.
//!
//! Every variant of [`Event`] is one JSONL line in the `--events-out`
//! stream. Fields are deliberately restricted to deterministic
//! quantities — fingerprints, scores, indices — never wall-clock times,
//! so identical seeded searches serialise to byte-identical streams.
//! The field-by-field contract lives in `docs/OBSERVABILITY.md` and is
//! enforced against [`crate::schema`] by tests.

use aceso_util::json::{JsonError, Value};

/// One structured observability event.
///
/// `stage_count` on search events identifies the pipeline-stage-count
/// sub-search (the paper searches stage counts on parallel threads);
/// `fingerprint` fields are `ParallelConfig::semantic_hash` values;
/// `score` fields are OOM-penalised predicted iteration times in
/// seconds.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A full search started.
    SearchStart {
        /// Pipeline stage counts that will be searched.
        stage_counts: Vec<usize>,
        /// `MaxHops` bound (Algorithm 2).
        max_hops: usize,
        /// Iteration budget per stage count.
        max_iterations: usize,
        /// How many best configurations the search returns.
        top_k: usize,
        /// RNG seed (consumed only when Heuristic-2 is off).
        seed: u64,
        /// Whether Heuristic-2 ranking is on.
        heuristic2: bool,
    },
    /// One stage-count sub-search started.
    StageStart {
        /// Pipeline stage count of this sub-search.
        stage_count: usize,
        /// Fingerprint of the initial configuration.
        init_fingerprint: u64,
        /// Score of the initial configuration (seconds).
        init_score: f64,
    },
    /// A bottleneck was selected for alleviation (Heuristic-1).
    Bottleneck {
        /// Pipeline stage count of the sub-search.
        stage_count: usize,
        /// Iteration index within the sub-search (0-based).
        iteration: usize,
        /// Bottleneck stage index.
        stage: usize,
        /// Top-ranked scarce resource of that stage.
        resource: &'static str,
    },
    /// A generated candidate scored strictly better than the iteration's
    /// starting configuration and was accepted.
    CandidateAccepted {
        /// Pipeline stage count of the sub-search.
        stage_count: usize,
        /// Fingerprint of the accepted configuration.
        fingerprint: u64,
        /// Score of the accepted configuration (seconds).
        score: f64,
        /// Bottleneck stage the improving primitive targeted.
        bottleneck_stage: usize,
        /// Headline primitive that produced the candidate (Table 1 name).
        primitive: &'static str,
        /// Table-1 primitive applications the candidate bundles.
        primitives_applied: usize,
        /// Multi-hop depth at acceptance (primitives applied on the path).
        hop_depth: usize,
    },
    /// A generated candidate did not improve on the iteration's starting
    /// configuration; it was parked in the unexplored pool.
    CandidateRejected {
        /// Pipeline stage count of the sub-search.
        stage_count: usize,
        /// Fingerprint of the rejected configuration.
        fingerprint: u64,
        /// Score of the rejected configuration (seconds).
        score: f64,
        /// Bottleneck stage the primitive targeted.
        bottleneck_stage: usize,
        /// Headline primitive that produced the candidate (Table 1 name).
        primitive: &'static str,
        /// Table-1 primitive applications the candidate bundles.
        primitives_applied: usize,
        /// Multi-hop depth at rejection (primitives applied on the path).
        hop_depth: usize,
    },
    /// One iteration of Algorithm 1 finished.
    Iteration {
        /// Pipeline stage count of the sub-search.
        stage_count: usize,
        /// Iteration index within the sub-search (0-based).
        iteration: usize,
        /// Ranked bottlenecks attempted (1 = Heuristic-1 was right).
        bottlenecks_tried: usize,
        /// Hop depth of the improving sequence (0 when none found).
        hops_used: usize,
        /// Whether the iteration improved the configuration.
        improved: bool,
    },
    /// The §4.2 op-level fine-tuning pass ran on an accepted
    /// configuration.
    Finetune {
        /// Pipeline stage count of the sub-search.
        stage_count: usize,
        /// Configurations evaluated by the tuning pass.
        evaluations: usize,
        /// Fingerprint of the tuned configuration.
        fingerprint: u64,
        /// Whether the tuned configuration was adopted (it is new, or
        /// tuning was a no-op).
        adopted: bool,
    },
    /// The search backtracked to a parked configuration from the
    /// unexplored pool.
    Backtrack {
        /// Pipeline stage count of the sub-search.
        stage_count: usize,
        /// Fingerprint of the configuration resumed from.
        fingerprint: u64,
        /// Its score at parking time (seconds).
        score: f64,
    },
    /// One stage-count sub-search finished.
    StageEnd {
        /// Pipeline stage count of this sub-search.
        stage_count: usize,
        /// Iterations run.
        iterations: usize,
        /// Configurations evaluated by this sub-search.
        explored: usize,
        /// Best score found (seconds).
        best_score: f64,
        /// Fingerprint of the best configuration.
        best_fingerprint: u64,
    },
    /// The full search finished.
    SearchEnd {
        /// Total configurations evaluated across all sub-searches.
        explored: usize,
        /// Stage-count sub-searches that produced a result.
        stage_counts_searched: usize,
        /// Best score across all sub-searches (seconds).
        best_score: f64,
        /// Fingerprint of the overall best configuration.
        best_fingerprint: u64,
    },
    /// A search was resumed from a durable checkpoint (server-level
    /// only: resume is transparent to the request's own event stream,
    /// which stays bit-identical to an uninterrupted run's).
    SearchResumed {
        /// Request id the checkpoint was spooled under (empty for CLI
        /// `--resume` runs).
        request_id: String,
        /// Algorithm-1 iterations already completed in the checkpoint —
        /// the work the resume saved.
        iterations_done: usize,
    },
    /// A checkpoint could not be used (unknown schema version, truncated
    /// or corrupt JSON, fingerprint mismatch) and the search restarted
    /// fresh instead of erroring (server-level only, like
    /// [`Event::SearchResumed`]).
    SearchRestarted {
        /// Request id the unusable checkpoint was spooled under.
        request_id: String,
        /// Why the checkpoint was rejected.
        reason: String,
    },
    /// The discrete-event simulator executed one configuration.
    SimRun {
        /// Pipeline stages of the executed configuration.
        stages: usize,
        /// Microbatches per iteration.
        microbatches: usize,
        /// Pipeline tasks executed (forward + backward).
        tasks: usize,
        /// Measured iteration time (seconds).
        iteration_time: f64,
        /// Measured peak memory (bytes).
        peak_memory: u64,
        /// Pipeline schedule executed (`1f1b` or `gpipe`).
        schedule: &'static str,
        /// Whether peak memory exceeded device capacity.
        oom: bool,
    },
    /// A persistent-store entry could not be used (corrupt, truncated,
    /// foreign, or future-version file) and the profile database was
    /// rebuilt fresh instead of erroring (server-level only, mirroring
    /// the spool contract of [`Event::SearchRestarted`]).
    StoreDegraded {
        /// Store file name the unusable entry lived under.
        file: String,
        /// Why the entry was rejected.
        reason: String,
    },
    /// The chaos engine injected one filesystem fault (schema v9).
    /// Emitted only under `aceso chaos` / `ChaosFs` runs, never in
    /// production; placement follows the seeded schedule, so streams
    /// carrying it are nondeterministic-masked like the
    /// `chaos_faults_injected` family.
    FaultInjected {
        /// Ordinal of the faultable filesystem operation the fault
        /// landed on (0-based, in workload call order).
        op: u64,
        /// Injected fault kind (`eio`, `enospc`, `short_write`,
        /// `rename_fail`, `crash`).
        kind: String,
        /// Path of the operation's target.
        path: String,
    },
    /// A retention sweep (spool TTL or store LRU) failed to remove one
    /// or more victims (schema v9). Hygiene kept going — the files stay
    /// until the next sweep — but the failure is surfaced instead of
    /// swallowed (INV-CHAOS-SWEEP; pairs with the
    /// `retention_sweep_errors` counter).
    SweepDegraded {
        /// Directory the sweep ran over.
        dir: String,
        /// Removals that failed (excluding already-gone files).
        errors: u64,
    },
}

impl Event {
    /// The event's kind tag — the `kind` field of its JSONL line.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SearchStart { .. } => "search_start",
            Event::StageStart { .. } => "stage_start",
            Event::Bottleneck { .. } => "bottleneck",
            Event::CandidateAccepted { .. } => "candidate_accepted",
            Event::CandidateRejected { .. } => "candidate_rejected",
            Event::Iteration { .. } => "iteration",
            Event::Finetune { .. } => "finetune",
            Event::Backtrack { .. } => "backtrack",
            Event::StageEnd { .. } => "stage_end",
            Event::SearchEnd { .. } => "search_end",
            Event::SearchResumed { .. } => "search_resumed",
            Event::SearchRestarted { .. } => "search_restarted",
            Event::SimRun { .. } => "sim_run",
            Event::StoreDegraded { .. } => "store_degraded",
            Event::FaultInjected { .. } => "fault_injected",
            Event::SweepDegraded { .. } => "sweep_degraded",
        }
    }

    /// Serialises the event's payload fields (everything but `seq`,
    /// which the stream writer assigns) in schema order.
    pub fn to_json_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> =
            vec![("kind".to_string(), Value::Str(self.kind().to_string()))];
        let mut put = |name: &str, v: Value| fields.push((name.to_string(), v));
        match self {
            Event::SearchStart {
                stage_counts,
                max_hops,
                max_iterations,
                top_k,
                seed,
                heuristic2,
            } => {
                put(
                    "stage_counts",
                    Value::Array(
                        stage_counts
                            .iter()
                            .map(|&p| Value::UInt(p as u64))
                            .collect(),
                    ),
                );
                put("max_hops", Value::UInt(*max_hops as u64));
                put("max_iterations", Value::UInt(*max_iterations as u64));
                put("top_k", Value::UInt(*top_k as u64));
                put("seed", Value::UInt(*seed));
                put("heuristic2", Value::Bool(*heuristic2));
            }
            Event::StageStart {
                stage_count,
                init_fingerprint,
                init_score,
            } => {
                put("stage_count", Value::UInt(*stage_count as u64));
                put("init_fingerprint", Value::UInt(*init_fingerprint));
                put("init_score", Value::Float(*init_score));
            }
            Event::Bottleneck {
                stage_count,
                iteration,
                stage,
                resource,
            } => {
                put("stage_count", Value::UInt(*stage_count as u64));
                put("iteration", Value::UInt(*iteration as u64));
                put("stage", Value::UInt(*stage as u64));
                put("resource", Value::Str(resource.to_string()));
            }
            Event::CandidateAccepted {
                stage_count,
                fingerprint,
                score,
                bottleneck_stage,
                primitive,
                primitives_applied,
                hop_depth,
            }
            | Event::CandidateRejected {
                stage_count,
                fingerprint,
                score,
                bottleneck_stage,
                primitive,
                primitives_applied,
                hop_depth,
            } => {
                put("stage_count", Value::UInt(*stage_count as u64));
                put("fingerprint", Value::UInt(*fingerprint));
                put("score", Value::Float(*score));
                put("bottleneck_stage", Value::UInt(*bottleneck_stage as u64));
                put("primitive", Value::Str(primitive.to_string()));
                put(
                    "primitives_applied",
                    Value::UInt(*primitives_applied as u64),
                );
                put("hop_depth", Value::UInt(*hop_depth as u64));
            }
            Event::Iteration {
                stage_count,
                iteration,
                bottlenecks_tried,
                hops_used,
                improved,
            } => {
                put("stage_count", Value::UInt(*stage_count as u64));
                put("iteration", Value::UInt(*iteration as u64));
                put("bottlenecks_tried", Value::UInt(*bottlenecks_tried as u64));
                put("hops_used", Value::UInt(*hops_used as u64));
                put("improved", Value::Bool(*improved));
            }
            Event::Finetune {
                stage_count,
                evaluations,
                fingerprint,
                adopted,
            } => {
                put("stage_count", Value::UInt(*stage_count as u64));
                put("evaluations", Value::UInt(*evaluations as u64));
                put("fingerprint", Value::UInt(*fingerprint));
                put("adopted", Value::Bool(*adopted));
            }
            Event::Backtrack {
                stage_count,
                fingerprint,
                score,
            } => {
                put("stage_count", Value::UInt(*stage_count as u64));
                put("fingerprint", Value::UInt(*fingerprint));
                put("score", Value::Float(*score));
            }
            Event::StageEnd {
                stage_count,
                iterations,
                explored,
                best_score,
                best_fingerprint,
            } => {
                put("stage_count", Value::UInt(*stage_count as u64));
                put("iterations", Value::UInt(*iterations as u64));
                put("explored", Value::UInt(*explored as u64));
                put("best_score", Value::Float(*best_score));
                put("best_fingerprint", Value::UInt(*best_fingerprint));
            }
            Event::SearchEnd {
                explored,
                stage_counts_searched,
                best_score,
                best_fingerprint,
            } => {
                put("explored", Value::UInt(*explored as u64));
                put(
                    "stage_counts_searched",
                    Value::UInt(*stage_counts_searched as u64),
                );
                put("best_score", Value::Float(*best_score));
                put("best_fingerprint", Value::UInt(*best_fingerprint));
            }
            Event::SearchResumed {
                request_id,
                iterations_done,
            } => {
                put("request_id", Value::Str(request_id.clone()));
                put("iterations_done", Value::UInt(*iterations_done as u64));
            }
            Event::SearchRestarted { request_id, reason } => {
                put("request_id", Value::Str(request_id.clone()));
                put("reason", Value::Str(reason.clone()));
            }
            Event::SimRun {
                stages,
                microbatches,
                tasks,
                iteration_time,
                peak_memory,
                schedule,
                oom,
            } => {
                put("stages", Value::UInt(*stages as u64));
                put("microbatches", Value::UInt(*microbatches as u64));
                put("tasks", Value::UInt(*tasks as u64));
                put("iteration_time", Value::Float(*iteration_time));
                put("peak_memory", Value::UInt(*peak_memory));
                put("schedule", Value::Str(schedule.to_string()));
                put("oom", Value::Bool(*oom));
            }
            Event::StoreDegraded { file, reason } => {
                put("file", Value::Str(file.clone()));
                put("reason", Value::Str(reason.clone()));
            }
            Event::FaultInjected { op, kind, path } => {
                // `kind` is the stream-level event tag, so the fault
                // kind serialises under `fault`.
                put("op", Value::UInt(*op));
                put("fault", Value::Str(kind.clone()));
                put("path", Value::Str(path.clone()));
            }
            Event::SweepDegraded { dir, errors } => {
                put("dir", Value::Str(dir.clone()));
                put("errors", Value::UInt(*errors));
            }
        }
        Value::Object(fields)
    }

    /// Restores an event from [`Event::to_json_value`] output (a
    /// checkpointed event stream).
    ///
    /// `intern` resolves the string-vocabulary fields (`resource`,
    /// `primitive`, `schedule`) back to the `&'static str` names the
    /// emitting code uses; an unresolvable string — like an unknown
    /// `kind` — is a shape error, which checkpoint loaders treat as an
    /// incompatible checkpoint rather than a panic.
    pub fn from_json_value(
        v: &Value,
        intern: &dyn Fn(&str) -> Option<&'static str>,
    ) -> Result<Event, JsonError> {
        let kind = v.field("kind")?.as_str()?;
        let interned = |key: &str| -> Result<&'static str, JsonError> {
            let s = v.field(key)?.as_str()?;
            intern(s).ok_or_else(|| JsonError::shape(format!("unknown {key} `{s}`")))
        };
        match kind {
            "search_start" => Ok(Event::SearchStart {
                stage_counts: v
                    .field("stage_counts")?
                    .as_array()?
                    .iter()
                    .map(Value::as_usize)
                    .collect::<Result<_, _>>()?,
                max_hops: v.field("max_hops")?.as_usize()?,
                max_iterations: v.field("max_iterations")?.as_usize()?,
                top_k: v.field("top_k")?.as_usize()?,
                seed: v.field("seed")?.as_u64()?,
                heuristic2: v.field("heuristic2")?.as_bool()?,
            }),
            "stage_start" => Ok(Event::StageStart {
                stage_count: v.field("stage_count")?.as_usize()?,
                init_fingerprint: v.field("init_fingerprint")?.as_u64()?,
                init_score: v.field("init_score")?.as_f64()?,
            }),
            "bottleneck" => Ok(Event::Bottleneck {
                stage_count: v.field("stage_count")?.as_usize()?,
                iteration: v.field("iteration")?.as_usize()?,
                stage: v.field("stage")?.as_usize()?,
                resource: interned("resource")?,
            }),
            "candidate_accepted" | "candidate_rejected" => {
                let stage_count = v.field("stage_count")?.as_usize()?;
                let fingerprint = v.field("fingerprint")?.as_u64()?;
                let score = v.field("score")?.as_f64()?;
                let bottleneck_stage = v.field("bottleneck_stage")?.as_usize()?;
                let primitive = interned("primitive")?;
                let primitives_applied = v.field("primitives_applied")?.as_usize()?;
                let hop_depth = v.field("hop_depth")?.as_usize()?;
                Ok(if kind == "candidate_accepted" {
                    Event::CandidateAccepted {
                        stage_count,
                        fingerprint,
                        score,
                        bottleneck_stage,
                        primitive,
                        primitives_applied,
                        hop_depth,
                    }
                } else {
                    Event::CandidateRejected {
                        stage_count,
                        fingerprint,
                        score,
                        bottleneck_stage,
                        primitive,
                        primitives_applied,
                        hop_depth,
                    }
                })
            }
            "iteration" => Ok(Event::Iteration {
                stage_count: v.field("stage_count")?.as_usize()?,
                iteration: v.field("iteration")?.as_usize()?,
                bottlenecks_tried: v.field("bottlenecks_tried")?.as_usize()?,
                hops_used: v.field("hops_used")?.as_usize()?,
                improved: v.field("improved")?.as_bool()?,
            }),
            "finetune" => Ok(Event::Finetune {
                stage_count: v.field("stage_count")?.as_usize()?,
                evaluations: v.field("evaluations")?.as_usize()?,
                fingerprint: v.field("fingerprint")?.as_u64()?,
                adopted: v.field("adopted")?.as_bool()?,
            }),
            "backtrack" => Ok(Event::Backtrack {
                stage_count: v.field("stage_count")?.as_usize()?,
                fingerprint: v.field("fingerprint")?.as_u64()?,
                score: v.field("score")?.as_f64()?,
            }),
            "stage_end" => Ok(Event::StageEnd {
                stage_count: v.field("stage_count")?.as_usize()?,
                iterations: v.field("iterations")?.as_usize()?,
                explored: v.field("explored")?.as_usize()?,
                best_score: v.field("best_score")?.as_f64()?,
                best_fingerprint: v.field("best_fingerprint")?.as_u64()?,
            }),
            "search_end" => Ok(Event::SearchEnd {
                explored: v.field("explored")?.as_usize()?,
                stage_counts_searched: v.field("stage_counts_searched")?.as_usize()?,
                best_score: v.field("best_score")?.as_f64()?,
                best_fingerprint: v.field("best_fingerprint")?.as_u64()?,
            }),
            "search_resumed" => Ok(Event::SearchResumed {
                request_id: v.field("request_id")?.as_str()?.to_string(),
                iterations_done: v.field("iterations_done")?.as_usize()?,
            }),
            "search_restarted" => Ok(Event::SearchRestarted {
                request_id: v.field("request_id")?.as_str()?.to_string(),
                reason: v.field("reason")?.as_str()?.to_string(),
            }),
            "sim_run" => Ok(Event::SimRun {
                stages: v.field("stages")?.as_usize()?,
                microbatches: v.field("microbatches")?.as_usize()?,
                tasks: v.field("tasks")?.as_usize()?,
                iteration_time: v.field("iteration_time")?.as_f64()?,
                peak_memory: v.field("peak_memory")?.as_u64()?,
                schedule: interned("schedule")?,
                oom: v.field("oom")?.as_bool()?,
            }),
            "store_degraded" => Ok(Event::StoreDegraded {
                file: v.field("file")?.as_str()?.to_string(),
                reason: v.field("reason")?.as_str()?.to_string(),
            }),
            "fault_injected" => Ok(Event::FaultInjected {
                op: v.field("op")?.as_u64()?,
                kind: v.field("fault")?.as_str()?.to_string(),
                path: v.field("path")?.as_str()?.to_string(),
            }),
            "sweep_degraded" => Ok(Event::SweepDegraded {
                dir: v.field("dir")?.as_str()?.to_string(),
                errors: v.field("errors")?.as_u64()?,
            }),
            other => Err(JsonError::shape(format!("unknown event kind `{other}`"))),
        }
    }

    /// One representative instance of every variant, in stream order —
    /// the emitter registry the schema tests cross-check against
    /// `docs/OBSERVABILITY.md`.
    pub fn samples() -> Vec<Event> {
        vec![
            Event::SearchStart {
                stage_counts: vec![1, 2],
                max_hops: 7,
                max_iterations: 48,
                top_k: 5,
                seed: 0,
                heuristic2: true,
            },
            Event::StageStart {
                stage_count: 2,
                init_fingerprint: 1,
                init_score: 1.0,
            },
            Event::Bottleneck {
                stage_count: 2,
                iteration: 0,
                stage: 0,
                resource: "compute",
            },
            Event::CandidateAccepted {
                stage_count: 2,
                fingerprint: 2,
                score: 0.9,
                bottleneck_stage: 0,
                primitive: "inc-dp",
                primitives_applied: 1,
                hop_depth: 1,
            },
            Event::CandidateRejected {
                stage_count: 2,
                fingerprint: 3,
                score: 1.1,
                bottleneck_stage: 0,
                primitive: "inc-tp",
                primitives_applied: 1,
                hop_depth: 1,
            },
            Event::Iteration {
                stage_count: 2,
                iteration: 0,
                bottlenecks_tried: 1,
                hops_used: 1,
                improved: true,
            },
            Event::Finetune {
                stage_count: 2,
                evaluations: 4,
                fingerprint: 2,
                adopted: true,
            },
            Event::Backtrack {
                stage_count: 2,
                fingerprint: 3,
                score: 1.1,
            },
            Event::StageEnd {
                stage_count: 2,
                iterations: 1,
                explored: 10,
                best_score: 0.9,
                best_fingerprint: 2,
            },
            Event::SearchEnd {
                explored: 10,
                stage_counts_searched: 2,
                best_score: 0.9,
                best_fingerprint: 2,
            },
            Event::SearchResumed {
                request_id: "req-1".to_string(),
                iterations_done: 12,
            },
            Event::SearchRestarted {
                request_id: "req-1".to_string(),
                reason: "unknown schema version".to_string(),
            },
            Event::SimRun {
                stages: 2,
                microbatches: 8,
                tasks: 32,
                iteration_time: 0.95,
                peak_memory: 1 << 30,
                schedule: "1f1b",
                oom: false,
            },
            Event::StoreDegraded {
                file: "0000000000000007-000000000000002a.adb".to_string(),
                reason: "checksum mismatch".to_string(),
            },
            Event::FaultInjected {
                op: 3,
                kind: "short_write".to_string(),
                path: "/store/0000000000000007-000000000000002a.adb.tmp.42".to_string(),
            },
            Event::SweepDegraded {
                dir: "/spool".to_string(),
                errors: 1,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_serialises_with_kind_first() {
        for e in Event::samples() {
            let v = e.to_json_value();
            let Value::Object(fields) = &v else {
                panic!("event must serialise to an object")
            };
            assert_eq!(fields[0].0, "kind");
            assert_eq!(fields[0].1, Value::Str(e.kind().to_string()));
            // Round-trips through the JSON layer.
            let text = v.to_string_compact();
            assert_eq!(Value::parse(&text).expect("parses"), v);
        }
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        // The sample vocabulary: the same names core emits.
        let vocab = ["compute", "inc-dp", "inc-tp", "1f1b"];
        let intern = move |s: &str| vocab.iter().find(|&&w| w == s).copied();
        for e in Event::samples() {
            let back = Event::from_json_value(&e.to_json_value(), &intern)
                .unwrap_or_else(|err| panic!("{}: {err}", e.kind()));
            assert_eq!(back, e);
        }
    }

    #[test]
    fn from_json_rejects_unknown_kind_and_vocabulary() {
        let v = Value::parse("{\"kind\": \"mystery\"}").unwrap();
        assert!(Event::from_json_value(&v, &|_| None).is_err());
        let e = Event::Bottleneck {
            stage_count: 2,
            iteration: 0,
            stage: 0,
            resource: "compute",
        };
        // An interner that recognises nothing → shape error, not panic.
        assert!(Event::from_json_value(&e.to_json_value(), &|_| None).is_err());
    }

    #[test]
    fn samples_cover_every_kind_once() {
        let mut kinds: Vec<&str> = Event::samples().iter().map(Event::kind).collect();
        let n = kinds.len();
        kinds.dedup();
        assert_eq!(kinds.len(), n, "duplicate kind in samples");
    }
}
