//! End-of-run aggregation: merged events + metrics, renderable as a
//! JSONL stream, a metric-snapshot JSON document, or a summary table.

use crate::event::Event;
use crate::metrics::{Counter, HistKind, Metrics};
use crate::recorder::Recorder;
use crate::schema::SCHEMA_VERSION;
use aceso_util::json::{obj, Value};
use aceso_util::table::Table;

/// The merged observability output of one run.
///
/// Recorders are absorbed in whatever order the caller chooses; the
/// search absorbs its per-thread stage recorders sorted by stage count
/// so the merged stream is deterministic. `seq` numbers are assigned at
/// render time ([`ObsReport::events_jsonl`]), not at record time, so
/// thread scheduling can never leak into the stream.
#[derive(Debug, Default)]
pub struct ObsReport {
    events: Vec<Event>,
    metrics: Metrics,
    wall_time_secs: Option<f64>,
}

impl ObsReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes a recorder, appending its events and merging its
    /// metrics.
    pub fn absorb(&mut self, rec: Recorder) {
        let (events, metrics) = rec.into_parts();
        self.events.extend(events);
        self.metrics.merge(&metrics);
    }

    /// Records the run's wall-clock time (metrics snapshot only; never
    /// part of the event stream).
    pub fn set_wall_time(&mut self, secs: f64) {
        self.wall_time_secs = Some(secs);
    }

    /// The merged events, in absorbed order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The merged metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Current value of a counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.metrics.counter(c)
    }

    /// Renders the event stream as JSONL: one compact object per line,
    /// `seq` assigned 0..n in stream order. Deterministic fields only —
    /// two identical seeded runs produce byte-identical output.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for (seq, e) in self.events.iter().enumerate() {
            let mut v = e.to_json_value();
            if let Value::Object(fields) = &mut v {
                fields.insert(0, ("seq".to_string(), Value::UInt(seq as u64)));
            }
            out.push_str(&v.to_string_compact());
            out.push('\n');
        }
        out
    }

    /// Renders the metric snapshot as a pretty JSON document:
    /// `schema_version`, `wall_time_secs` (null unless set), `counters`,
    /// `primitives_applied`, `audit_findings`, `chaos_faults_injected`,
    /// and `histograms`.
    pub fn metrics_json(&self) -> String {
        let doc = obj([
            ("schema_version", Value::UInt(SCHEMA_VERSION)),
            (
                "wall_time_secs",
                self.wall_time_secs.map_or(Value::Null, Value::Float),
            ),
            ("counters", self.metrics.counters_json()),
            ("primitives_applied", self.metrics.primitives_json()),
            ("audit_findings", self.metrics.audit_findings_json()),
            ("chaos_faults_injected", self.metrics.chaos_faults_json()),
            ("histograms", self.metrics.histograms_json()),
        ]);
        let mut text = doc.to_string_pretty();
        text.push('\n');
        text
    }

    /// Renders the human-readable end-of-run summary table.
    pub fn summary_table(&self) -> String {
        let mut t = Table::new("search observability summary", &["metric", "value"]);
        for c in Counter::ALL {
            t.row(&[c.name().to_string(), self.counter(c).to_string()]);
        }
        for (name, n) in self.metrics.primitives() {
            t.row(&[format!("primitive[{name}]"), n.to_string()]);
        }
        for (rule, n) in self.metrics.audit_findings() {
            t.row(&[format!("audit[{rule}]"), n.to_string()]);
        }
        for (kind, n) in self.metrics.chaos_faults() {
            t.row(&[format!("chaos[{kind}]"), n.to_string()]);
        }
        for h in HistKind::ALL {
            let hist = self.metrics.histogram(h);
            if hist.count() > 0 {
                t.row(&[format!("{} mean", h.name()), format!("{:.3}", hist.mean())]);
            }
        }
        t.row(&["events".to_string(), self.events.len().to_string()]);
        if let Some(w) = self.wall_time_secs {
            t.row(&["wall_time_secs".to_string(), format!("{w:.3}")]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ObsReport {
        let rec = Recorder::new(true);
        for e in Event::samples() {
            rec.emit(|| e.clone());
        }
        rec.add(Counter::PerfEvaluations, 10);
        rec.add(Counter::CandidatesGenerated, 4);
        rec.add(Counter::CandidatesAccepted, 1);
        rec.add(Counter::CandidatesRejected, 3);
        rec.count_primitive("inc-dp", 1);
        rec.observe(HistKind::ScoreDelta, 0.1);
        let mut report = ObsReport::new();
        report.absorb(rec);
        report
    }

    #[test]
    fn jsonl_lines_parse_and_are_sequenced() {
        let report = sample_report();
        let jsonl = report.events_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), Event::samples().len());
        for (i, line) in lines.iter().enumerate() {
            let v = Value::parse(line).expect("line parses");
            assert_eq!(v.field("seq").unwrap().as_u64().unwrap(), i as u64);
            assert!(v.get("kind").is_some());
        }
    }

    #[test]
    fn metrics_json_parses_and_carries_schema_version() {
        let mut report = sample_report();
        report.set_wall_time(1.25);
        let v = Value::parse(&report.metrics_json()).expect("snapshot parses");
        assert_eq!(
            v.field("schema_version").unwrap().as_u64().unwrap(),
            SCHEMA_VERSION
        );
        assert_eq!(v.field("wall_time_secs").unwrap().as_f64().unwrap(), 1.25);
        let counters = v.field("counters").unwrap();
        assert_eq!(
            counters
                .field("perf_evaluations")
                .unwrap()
                .as_u64()
                .unwrap(),
            10
        );
        assert!(v.field("histograms").unwrap().get("score_delta").is_some());
        assert_eq!(
            v.field("primitives_applied")
                .unwrap()
                .field("inc-dp")
                .unwrap()
                .as_u64()
                .unwrap(),
            1
        );
    }

    #[test]
    fn summary_table_lists_every_counter() {
        let report = sample_report();
        let table = report.summary_table();
        for c in Counter::ALL {
            assert!(table.contains(c.name()), "missing {}", c.name());
        }
        assert!(table.contains("primitive[inc-dp]"));
        assert!(table.contains("events"));
    }

    #[test]
    fn absorb_order_is_stream_order() {
        let a = Recorder::new(true);
        a.emit(|| Event::Backtrack {
            stage_count: 1,
            fingerprint: 1,
            score: 1.0,
        });
        let b = Recorder::new(true);
        b.emit(|| Event::Backtrack {
            stage_count: 2,
            fingerprint: 2,
            score: 2.0,
        });
        let mut report = ObsReport::new();
        report.absorb(a);
        report.absorb(b);
        let jsonl = report.events_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines[0].contains("\"stage_count\":1"));
        assert!(lines[1].contains("\"stage_count\":2"));
    }
}
