//! Monotonic counters and fixed-bucket histograms.
//!
//! All metric identities the schema documents are enforced here or by
//! the cross-crate tests: counters only ever increase, merging is
//! commutative summation, and histogram buckets are compile-time
//! constants so two runs bucket identically.

use aceso_util::json::{obj, JsonError, Value};
use std::collections::BTreeMap;

/// The fixed monotonic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Performance-model evaluations (checked + unchecked).
    PerfEvaluations,
    /// Evaluations served incrementally: at least one per-stage estimate
    /// was reused from the `CachedEvaluator`'s memo table.
    PerfIncrementalHits,
    /// Evaluations that estimated every stage from scratch (cached-path
    /// cold misses plus every uncached `PerfModel` evaluation).
    PerfFullEvals,
    /// Evaluations predicting out-of-memory.
    OomPredictions,
    /// Candidates generated and evaluated by the multi-hop search
    /// (post-deduplication).
    CandidatesGenerated,
    /// Generated candidates that improved on their iteration's starting
    /// score and were accepted.
    CandidatesAccepted,
    /// Generated candidates that did not improve and were parked.
    CandidatesRejected,
    /// Candidates skipped because their fingerprint was already visited.
    CandidatesDeduped,
    /// Algorithm-1 iterations run.
    IterationsTotal,
    /// Iterations that found an improving configuration.
    IterationsImproved,
    /// Configurations evaluated by the §4.2 fine-tuning pass.
    FinetuneEvals,
    /// Backtracks to parked configurations from the unexplored pool.
    Backtracks,
    /// Stage-count sub-searches started.
    StageSearches,
    /// Discrete-event simulator executions.
    SimRuns,
    /// Pipeline tasks executed by the simulator.
    SimTasks,
    /// Serve-mode requests resolved from the cross-request
    /// `ProfileCache` without rebuilding the `ProfileDb`.
    ProfileCacheHits,
    /// Serve-mode requests that had to build (or partially rebuild) a
    /// `ProfileDb` before searching.
    ProfileCacheMisses,
    /// Well-formed search requests accepted by the serve daemon.
    ServeRequests,
    /// Requests rejected by the serve daemon (backpressure, budget, or
    /// validation failures).
    ServeRejected,
    /// Search checkpoints written to durable storage (CLI `--checkpoint`
    /// or serve-daemon spooling).
    CheckpointsWritten,
    /// Searches resumed from a previously written checkpoint.
    SearchResumed,
    /// Resubmissions of an already-spooled request id observed by the
    /// serve daemon (client-side retries after a crash or disconnect).
    ClientRetries,
    /// Candidate batches (one per generation task) consumed by the
    /// frontier reducer's ordinal merge. Deterministic: the merge
    /// consumes batches in canonical serial order regardless of worker
    /// count, so two runs with the same seed agree even at different
    /// `--search-threads`.
    SearchWorkerBatches,
    /// Tasks a frontier worker stole from another worker's deque.
    /// **Scheduling-dependent** — intentionally non-deterministic
    /// (see [`crate::schema::NONDETERMINISTIC_COUNTERS`]); every
    /// bit-identity comparison masks it, and it is never checkpointed.
    SearchSteals,
    /// Connections currently open on the serve reactor, sampled at
    /// snapshot time (a gauge rendered through the counter machinery).
    /// **Timing-dependent** — listed in
    /// [`crate::schema::NONDETERMINISTIC_COUNTERS`]; server-level only.
    ServeConnectionsOpen,
    /// Request frames that joined a connection already carrying queued
    /// or in-flight work (pipelining). **Timing-dependent** — whether a
    /// follow-up request counts as pipelined depends on when its
    /// predecessor finished; server-level only.
    ServePipelinedRequests,
    /// Dispatch decisions where the reactor's round-robin preferred a
    /// connection with no work in flight while another connection's
    /// pipelined request waited (one per waiting connection).
    /// **Scheduling-dependent**; server-level only.
    ServeFairnessDeferrals,
    /// Cache misses resolved from the persistent on-disk profile store
    /// instead of a fresh build; server-level only.
    StoreHits,
    /// Store consultations that found no usable entry (absent file, or
    /// one that degraded to a rebuild); server-level only.
    StoreMisses,
    /// Profile databases written back to the persistent store after a
    /// fresh build; server-level only.
    StoreWrites,
    /// Store entries evicted from disk by the LRU byte budget;
    /// server-level only.
    StoreEvictions,
    /// Store entries that decoded cleanly but were skipped because their
    /// precision mismatched the request's build (the in-memory merge
    /// path's precision-filter rule, applied to the disk tier);
    /// server-level only.
    StoreRejected,
    /// Retention-sweep removals (spool TTL or store LRU) that failed for
    /// a reason other than the file already being gone. Hygiene errors
    /// used to be swallowed; they now surface here plus a
    /// `sweep_degraded` event (INV-CHAOS-SWEEP); server-level only.
    RetentionSweepErrors,
}

impl Counter {
    /// All counters, in snapshot order.
    pub const ALL: [Counter; 33] = [
        Counter::PerfEvaluations,
        Counter::PerfIncrementalHits,
        Counter::PerfFullEvals,
        Counter::OomPredictions,
        Counter::CandidatesGenerated,
        Counter::CandidatesAccepted,
        Counter::CandidatesRejected,
        Counter::CandidatesDeduped,
        Counter::IterationsTotal,
        Counter::IterationsImproved,
        Counter::FinetuneEvals,
        Counter::Backtracks,
        Counter::StageSearches,
        Counter::SimRuns,
        Counter::SimTasks,
        Counter::ProfileCacheHits,
        Counter::ProfileCacheMisses,
        Counter::ServeRequests,
        Counter::ServeRejected,
        Counter::CheckpointsWritten,
        Counter::SearchResumed,
        Counter::ClientRetries,
        Counter::SearchWorkerBatches,
        Counter::SearchSteals,
        Counter::ServeConnectionsOpen,
        Counter::ServePipelinedRequests,
        Counter::ServeFairnessDeferrals,
        Counter::StoreHits,
        Counter::StoreMisses,
        Counter::StoreWrites,
        Counter::StoreEvictions,
        Counter::StoreRejected,
        Counter::RetentionSweepErrors,
    ];

    /// The counter's snapshot-key name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::PerfEvaluations => "perf_evaluations",
            Counter::PerfIncrementalHits => "perf_incremental_hits",
            Counter::PerfFullEvals => "perf_full_evals",
            Counter::OomPredictions => "oom_predictions",
            Counter::CandidatesGenerated => "candidates_generated",
            Counter::CandidatesAccepted => "candidates_accepted",
            Counter::CandidatesRejected => "candidates_rejected",
            Counter::CandidatesDeduped => "candidates_deduped",
            Counter::IterationsTotal => "iterations_total",
            Counter::IterationsImproved => "iterations_improved",
            Counter::FinetuneEvals => "finetune_evals",
            Counter::Backtracks => "backtracks",
            Counter::StageSearches => "stage_searches",
            Counter::SimRuns => "sim_runs",
            Counter::SimTasks => "sim_tasks",
            Counter::ProfileCacheHits => "profile_cache_hits",
            Counter::ProfileCacheMisses => "profile_cache_misses",
            Counter::ServeRequests => "serve_requests",
            Counter::ServeRejected => "serve_rejected",
            Counter::CheckpointsWritten => "checkpoints_written",
            Counter::SearchResumed => "search_resumed",
            Counter::ClientRetries => "client_retries",
            Counter::SearchWorkerBatches => "search_worker_batches",
            Counter::SearchSteals => "search_steals",
            Counter::ServeConnectionsOpen => "serve_connections_open",
            Counter::ServePipelinedRequests => "serve_pipelined_requests",
            Counter::ServeFairnessDeferrals => "serve_fairness_deferrals",
            Counter::StoreHits => "store_hits",
            Counter::StoreMisses => "store_misses",
            Counter::StoreWrites => "store_writes",
            Counter::StoreEvictions => "store_evictions",
            Counter::StoreRejected => "store_rejected",
            Counter::RetentionSweepErrors => "retention_sweep_errors",
        }
    }
}

/// The fixed histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistKind {
    /// Performance-model evaluation latency, microseconds (wall clock —
    /// the one non-deterministic metric; excluded from the event
    /// stream).
    EvalLatencyUs,
    /// Relative score improvement of accepted candidates,
    /// `(init − new) / init`.
    ScoreDelta,
    /// Multi-hop depth of accepted candidates (Table-1 primitives
    /// applied on the path).
    HopDepth,
}

impl HistKind {
    /// All histograms, in snapshot order.
    pub const ALL: [HistKind; 3] = [
        HistKind::EvalLatencyUs,
        HistKind::ScoreDelta,
        HistKind::HopDepth,
    ];

    /// The histogram's snapshot-key name.
    pub fn name(self) -> &'static str {
        match self {
            HistKind::EvalLatencyUs => "eval_latency_us",
            HistKind::ScoreDelta => "score_delta",
            HistKind::HopDepth => "hop_depth",
        }
    }

    /// Upper bucket edges (inclusive); values above the last edge land
    /// in an implicit overflow bucket.
    pub fn edges(self) -> &'static [f64] {
        match self {
            HistKind::EvalLatencyUs => &[
                1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0,
                10_000.0, 25_000.0, 50_000.0, 100_000.0,
            ],
            HistKind::ScoreDelta => &[1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.2, 0.5, 1.0],
            HistKind::HopDepth => &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0, 12.0, 16.0],
        }
    }

    fn index(self) -> usize {
        match self {
            HistKind::EvalLatencyUs => 0,
            HistKind::ScoreDelta => 1,
            HistKind::HopDepth => 2,
        }
    }
}

/// One fixed-bucket histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    kind: HistKind,
    /// One count per edge, plus the trailing overflow bucket.
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn new(kind: HistKind) -> Self {
        Self {
            kind,
            buckets: vec![0; kind.edges().len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let edges = self.kind.edges();
        let idx = edges.iter().position(|&e| v <= e).unwrap_or(edges.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Merges another histogram of the same kind into this one.
    fn merge(&mut self, other: &Histogram) {
        debug_assert_eq!(self.kind, other.kind);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Exact checkpoint snapshot: bucket counts plus sum/min/max as
    /// IEEE-754 bit patterns. Unlike [`Histogram::to_json_value`] (which
    /// degrades the empty-histogram `±inf` sentinels to `null`), this form
    /// restores the struct bit-for-bit via
    /// [`Histogram::from_checkpoint_value`].
    fn to_checkpoint_value(&self) -> Value {
        obj([
            (
                "buckets",
                Value::Array(self.buckets.iter().map(|&c| Value::UInt(c)).collect()),
            ),
            ("count", Value::UInt(self.count)),
            ("sum_bits", Value::UInt(self.sum.to_bits())),
            ("min_bits", Value::UInt(self.min.to_bits())),
            ("max_bits", Value::UInt(self.max.to_bits())),
        ])
    }

    /// Restores a histogram from [`Histogram::to_checkpoint_value`] output.
    fn from_checkpoint_value(kind: HistKind, v: &Value) -> Result<Histogram, JsonError> {
        let buckets: Vec<u64> = v
            .field("buckets")?
            .as_array()?
            .iter()
            .map(Value::as_u64)
            .collect::<Result<_, _>>()?;
        if buckets.len() != kind.edges().len() + 1 {
            return Err(JsonError::shape(format!(
                "histogram `{}` expects {} buckets, got {}",
                kind.name(),
                kind.edges().len() + 1,
                buckets.len()
            )));
        }
        Ok(Histogram {
            kind,
            buckets,
            count: v.field("count")?.as_u64()?,
            sum: f64::from_bits(v.field("sum_bits")?.as_u64()?),
            min: f64::from_bits(v.field("min_bits")?.as_u64()?),
            max: f64::from_bits(v.field("max_bits")?.as_u64()?),
        })
    }

    /// Snapshot as JSON: count/sum/min/max plus `{le, count}` buckets
    /// (the final bucket has `le: null` — the overflow bucket).
    pub fn to_json_value(&self) -> Value {
        let edges = self.kind.edges();
        let buckets: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let le = edges.get(i).map_or(Value::Null, |&e| Value::Float(e));
                obj([("le", le), ("count", Value::UInt(c))])
            })
            .collect();
        obj([
            ("count", Value::UInt(self.count)),
            ("sum", Value::Float(self.sum)),
            (
                "min",
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.min)
                },
            ),
            (
                "max",
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.max)
                },
            ),
            ("buckets", Value::Array(buckets)),
        ])
    }
}

/// A full metric set: fixed counters, the keyed `primitives_applied`,
/// `audit_findings`, and `chaos_faults_injected` counter families, and
/// the fixed histograms.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    counters: [u64; Counter::ALL.len()],
    /// Accepted candidates by headline primitive, weighted by the
    /// Table-1 applications each bundles.
    primitives: BTreeMap<&'static str, u64>,
    /// Static-verifier findings by audit rule (schema v5). Stays empty
    /// in search and serve runs; `aceso audit` fills it.
    audit_findings: BTreeMap<&'static str, u64>,
    /// Injected filesystem faults by kind (schema v9). Stays empty in
    /// production runs; `aceso chaos` fills it. Fault placement depends
    /// on the seeded schedule, so the family is nondeterministic-masked
    /// (see [`crate::schema::NONDETERMINISTIC_FAMILIES`]).
    chaos_faults: BTreeMap<&'static str, u64>,
    histograms: Vec<Histogram>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self {
            counters: [0; Counter::ALL.len()],
            primitives: BTreeMap::new(),
            audit_findings: BTreeMap::new(),
            chaos_faults: BTreeMap::new(),
            histograms: HistKind::ALL.iter().map(|&k| Histogram::new(k)).collect(),
        }
    }
}

impl Metrics {
    /// Adds `n` to a counter.
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counters[Counter::ALL
            .iter()
            .position(|&x| x == c)
            .expect("counter in ALL")] += n;
    }

    /// Current value of a counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[Counter::ALL
            .iter()
            .position(|&x| x == c)
            .expect("counter in ALL")]
    }

    /// Adds `n` to the keyed `primitives_applied` family.
    pub fn add_primitive(&mut self, name: &'static str, n: u64) {
        *self.primitives.entry(name).or_insert(0) += n;
    }

    /// The keyed `primitives_applied` counters, sorted by key.
    pub fn primitives(&self) -> &BTreeMap<&'static str, u64> {
        &self.primitives
    }

    /// Adds `n` to the keyed `audit_findings` family, keyed by audit
    /// rule name.
    pub fn add_audit_finding(&mut self, rule: &'static str, n: u64) {
        *self.audit_findings.entry(rule).or_insert(0) += n;
    }

    /// The keyed `audit_findings` counters, sorted by rule.
    pub fn audit_findings(&self) -> &BTreeMap<&'static str, u64> {
        &self.audit_findings
    }

    /// Adds `n` to the keyed `chaos_faults_injected` family, keyed by
    /// fault kind (`eio`, `enospc`, `short_write`, `rename_fail`,
    /// `crash`).
    pub fn add_chaos_fault(&mut self, kind: &'static str, n: u64) {
        *self.chaos_faults.entry(kind).or_insert(0) += n;
    }

    /// The keyed `chaos_faults_injected` counters, sorted by kind.
    pub fn chaos_faults(&self) -> &BTreeMap<&'static str, u64> {
        &self.chaos_faults
    }

    /// Records a histogram observation.
    pub fn observe(&mut self, h: HistKind, v: f64) {
        self.histograms[h.index()].observe(v);
    }

    /// The histogram of one kind.
    pub fn histogram(&self, h: HistKind) -> &Histogram {
        &self.histograms[h.index()]
    }

    /// Merges another metric set into this one (commutative sums).
    pub fn merge(&mut self, other: &Metrics) {
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        for (&k, &v) in &other.primitives {
            *self.primitives.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.audit_findings {
            *self.audit_findings.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.chaos_faults {
            *self.chaos_faults.entry(k).or_insert(0) += v;
        }
        for (a, b) in self.histograms.iter_mut().zip(&other.histograms) {
            a.merge(b);
        }
    }

    /// Exact checkpoint snapshot of the whole metric set: counters by
    /// name, the keyed primitive family, and the histograms in their
    /// bit-exact checkpoint form. Restoring via
    /// [`Metrics::from_checkpoint_value`] reproduces the struct exactly,
    /// so a resumed search's merged snapshot equals an uninterrupted
    /// run's.
    pub fn to_checkpoint_value(&self) -> Value {
        obj([
            ("counters", self.counters_json()),
            ("primitives", self.primitives_json()),
            ("audit_findings", self.audit_findings_json()),
            ("chaos_faults_injected", self.chaos_faults_json()),
            (
                "histograms",
                Value::Object(
                    HistKind::ALL
                        .iter()
                        .map(|&h| {
                            (
                                h.name().to_string(),
                                self.histogram(h).to_checkpoint_value(),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Restores a metric set from [`Metrics::to_checkpoint_value`] output.
    ///
    /// `intern` resolves keys of the `primitives_applied` family back to
    /// the `&'static str` names the emitting code uses; an unresolvable
    /// key (or any unknown counter/histogram name) is a shape error —
    /// callers treat that as an incompatible checkpoint, not a panic.
    pub fn from_checkpoint_value(
        v: &Value,
        intern: &dyn Fn(&str) -> Option<&'static str>,
    ) -> Result<Metrics, JsonError> {
        let mut m = Metrics::default();
        let counters = v.field("counters")?;
        let Value::Object(counter_fields) = counters else {
            return Err(JsonError::shape("`counters` must be an object"));
        };
        if counter_fields.len() != Counter::ALL.len() {
            return Err(JsonError::shape(format!(
                "expected {} counters, got {}",
                Counter::ALL.len(),
                counter_fields.len()
            )));
        }
        for (name, value) in counter_fields {
            let c = Counter::ALL
                .iter()
                .find(|c| c.name() == name)
                .ok_or_else(|| JsonError::shape(format!("unknown counter `{name}`")))?;
            m.add(*c, value.as_u64()?);
        }
        let primitives = v.field("primitives")?;
        let Value::Object(primitive_fields) = primitives else {
            return Err(JsonError::shape("`primitives` must be an object"));
        };
        for (name, value) in primitive_fields {
            let interned = intern(name)
                .ok_or_else(|| JsonError::shape(format!("unknown primitive `{name}`")))?;
            m.add_primitive(interned, value.as_u64()?);
        }
        // `audit_findings` joined the snapshot in schema v5; a missing
        // field is an older (pre-v5) checkpoint with an empty family,
        // not a shape error. Search checkpoints never carry findings,
        // so in practice this object is empty either way.
        if let Some(findings) = v.get("audit_findings") {
            let Value::Object(finding_fields) = findings else {
                return Err(JsonError::shape("`audit_findings` must be an object"));
            };
            for (name, value) in finding_fields {
                let interned = intern(name)
                    .ok_or_else(|| JsonError::shape(format!("unknown audit rule `{name}`")))?;
                m.add_audit_finding(interned, value.as_u64()?);
            }
        }
        // `chaos_faults_injected` joined in schema v9; same pre-version
        // tolerance as `audit_findings` above.
        if let Some(faults) = v.get("chaos_faults_injected") {
            let Value::Object(fault_fields) = faults else {
                return Err(JsonError::shape(
                    "`chaos_faults_injected` must be an object",
                ));
            };
            for (name, value) in fault_fields {
                let interned = intern(name)
                    .ok_or_else(|| JsonError::shape(format!("unknown fault kind `{name}`")))?;
                m.add_chaos_fault(interned, value.as_u64()?);
            }
        }
        let histograms = v.field("histograms")?;
        for kind in HistKind::ALL {
            m.histograms[kind.index()] =
                Histogram::from_checkpoint_value(kind, histograms.field(kind.name())?)?;
        }
        Ok(m)
    }

    /// Snapshot of all counters as a JSON object (schema order).
    pub fn counters_json(&self) -> Value {
        Value::Object(
            Counter::ALL
                .iter()
                .map(|&c| (c.name().to_string(), Value::UInt(self.counter(c))))
                .collect(),
        )
    }

    /// Snapshot of all histograms as a JSON object (schema order).
    pub fn histograms_json(&self) -> Value {
        Value::Object(
            HistKind::ALL
                .iter()
                .map(|&h| (h.name().to_string(), self.histogram(h).to_json_value()))
                .collect(),
        )
    }

    /// Snapshot of the keyed `primitives_applied` family as a JSON
    /// object (sorted keys).
    pub fn primitives_json(&self) -> Value {
        Value::Object(
            self.primitives
                .iter()
                .map(|(&k, &v)| (k.to_string(), Value::UInt(v)))
                .collect(),
        )
    }

    /// Snapshot of the keyed `audit_findings` family as a JSON object
    /// (sorted keys).
    pub fn audit_findings_json(&self) -> Value {
        Value::Object(
            self.audit_findings
                .iter()
                .map(|(&k, &v)| (k.to_string(), Value::UInt(v)))
                .collect(),
        )
    }

    /// Snapshot of the keyed `chaos_faults_injected` family as a JSON
    /// object (sorted keys).
    pub fn chaos_faults_json(&self) -> Value {
        Value::Object(
            self.chaos_faults
                .iter()
                .map(|(&k, &v)| (k.to_string(), Value::UInt(v)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_merge() {
        let mut a = Metrics::default();
        a.add(Counter::PerfEvaluations, 3);
        a.add(Counter::CandidatesAccepted, 1);
        let mut b = Metrics::default();
        b.add(Counter::PerfEvaluations, 2);
        b.add_primitive("inc-dp", 2);
        a.merge(&b);
        assert_eq!(a.counter(Counter::PerfEvaluations), 5);
        assert_eq!(a.counter(Counter::CandidatesAccepted), 1);
        assert_eq!(a.primitives()["inc-dp"], 2);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut m = Metrics::default();
        for v in [1.0, 2.0, 3.0, 100.0] {
            m.observe(HistKind::HopDepth, v);
        }
        let h = m.histogram(HistKind::HopDepth);
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), 26.5);
        // 100.0 exceeds the last edge (16) → overflow bucket.
        let v = h.to_json_value();
        let buckets = v.field("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.last().unwrap().field("le").unwrap(), &Value::Null);
        assert_eq!(
            buckets
                .last()
                .unwrap()
                .field("count")
                .unwrap()
                .as_u64()
                .unwrap(),
            1
        );
    }

    #[test]
    fn empty_histogram_has_null_min_max() {
        let m = Metrics::default();
        let v = m.histogram(HistKind::ScoreDelta).to_json_value();
        assert_eq!(v.field("min").unwrap(), &Value::Null);
        assert_eq!(v.field("max").unwrap(), &Value::Null);
    }

    #[test]
    fn snapshots_cover_all_names() {
        let m = Metrics::default();
        let c = m.counters_json();
        for counter in Counter::ALL {
            assert!(c.get(counter.name()).is_some(), "{}", counter.name());
        }
        let h = m.histograms_json();
        for hist in HistKind::ALL {
            assert!(h.get(hist.name()).is_some(), "{}", hist.name());
        }
    }

    #[test]
    fn checkpoint_snapshot_round_trips_exactly() {
        let mut m = Metrics::default();
        m.add(Counter::PerfEvaluations, 7);
        m.add(Counter::SearchResumed, 1);
        m.add_primitive("inc-dp", 3);
        m.observe(HistKind::ScoreDelta, 0.015);
        m.observe(HistKind::HopDepth, 4.0);
        // EvalLatencyUs stays empty: its ±inf min/max sentinels must
        // survive the round trip too.
        let intern = |s: &str| (s == "inc-dp").then_some("inc-dp");
        let back =
            Metrics::from_checkpoint_value(&m.to_checkpoint_value(), &intern).expect("round trip");
        assert_eq!(back, m);
    }

    #[test]
    fn audit_findings_round_trip_and_tolerate_pre_v5_checkpoints() {
        let mut m = Metrics::default();
        m.add_audit_finding("PLAN-MEM", 2);
        let intern = |s: &str| (s == "PLAN-MEM").then_some("PLAN-MEM");
        let back =
            Metrics::from_checkpoint_value(&m.to_checkpoint_value(), &intern).expect("round trip");
        assert_eq!(back.audit_findings()["PLAN-MEM"], 2);
        assert_eq!(back, m);
        // A pre-v5 checkpoint has no `audit_findings` field at all:
        // restore must treat it as an empty family, not a shape error.
        let mut old = Metrics::default().to_checkpoint_value();
        if let Value::Object(fields) = &mut old {
            fields.retain(|(k, _)| k != "audit_findings");
        }
        let restored = Metrics::from_checkpoint_value(&old, &|_| None).expect("pre-v5 restores");
        assert!(restored.audit_findings().is_empty());
        // Unknown rule names still fail strictly.
        let mut bad = m.to_checkpoint_value();
        if let Value::Object(fields) = &mut bad {
            if let Some(Value::Object(findings)) = fields
                .iter_mut()
                .find(|(k, _)| k == "audit_findings")
                .map(|(_, v)| v)
            {
                findings.push(("mystery-rule".to_string(), Value::UInt(1)));
            }
        }
        assert!(Metrics::from_checkpoint_value(&bad, &intern).is_err());
    }

    #[test]
    fn chaos_faults_round_trip_and_tolerate_pre_v9_checkpoints() {
        let mut m = Metrics::default();
        m.add_chaos_fault("short_write", 3);
        let intern = |s: &str| (s == "short_write").then_some("short_write");
        let back =
            Metrics::from_checkpoint_value(&m.to_checkpoint_value(), &intern).expect("round trip");
        assert_eq!(back.chaos_faults()["short_write"], 3);
        assert_eq!(back, m);
        // A pre-v9 checkpoint has no `chaos_faults_injected` field.
        let mut old = Metrics::default().to_checkpoint_value();
        if let Value::Object(fields) = &mut old {
            fields.retain(|(k, _)| k != "chaos_faults_injected");
        }
        let restored = Metrics::from_checkpoint_value(&old, &|_| None).expect("pre-v9 restores");
        assert!(restored.chaos_faults().is_empty());
    }

    #[test]
    fn checkpoint_snapshot_rejects_unknown_names() {
        let m = Metrics::default();
        let mut v = m.to_checkpoint_value();
        // Rename a counter key: strict restore must fail, not guess.
        if let Value::Object(fields) = &mut v {
            if let Some(Value::Object(counters)) = fields
                .iter_mut()
                .find(|(k, _)| k == "counters")
                .map(|(_, v)| v)
            {
                counters[0].0 = "not_a_counter".to_string();
            }
        }
        assert!(Metrics::from_checkpoint_value(&v, &|_| None).is_err());
        // Unknown primitive keys fail via the interner.
        let mut p = m.to_checkpoint_value();
        if let Value::Object(fields) = &mut p {
            if let Some(Value::Object(prims)) = fields
                .iter_mut()
                .find(|(k, _)| k == "primitives")
                .map(|(_, v)| v)
            {
                prims.push(("mystery".to_string(), Value::UInt(1)));
            }
        }
        assert!(Metrics::from_checkpoint_value(&p, &|_| None).is_err());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(HistKind::ALL.iter().map(|h| h.name()));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}
