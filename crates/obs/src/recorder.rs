//! Thread-scoped recording of events and metrics.
//!
//! A [`Recorder`] is deliberately *not* shared between threads: the
//! parallel stage-count search creates one per spawned thread, records
//! without any synchronisation, and the parent merges the recorders in
//! deterministic order after join (see [`crate::ObsReport::absorb`]).
//! The type is `Send` (so it can cross the `std::thread::scope` join
//! boundary) but not `Sync` — `RefCell` interior mutability lets
//! instrumented code record through a shared `&Recorder` without
//! `&mut` plumbing.

use crate::event::Event;
use crate::metrics::{Counter, HistKind, Metrics};
use std::cell::RefCell;

/// A single-threaded event + metric recorder.
///
/// A disabled recorder ([`Recorder::disabled`]) never constructs event
/// payloads — [`Recorder::emit`] takes a closure that is only invoked
/// when recording is on — and every metric call reduces to one branch
/// on a plain bool.
#[derive(Debug, Default)]
pub struct Recorder {
    enabled: bool,
    events: RefCell<Vec<Event>>,
    metrics: RefCell<Metrics>,
}

impl Recorder {
    /// Creates a recorder; when `enabled` is false every recording call
    /// is a no-op.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            events: RefCell::new(Vec::new()),
            metrics: RefCell::new(Metrics::default()),
        }
    }

    /// A recorder that records nothing.
    pub fn disabled() -> Self {
        Self::new(false)
    }

    /// An enabled recorder pre-loaded with previously recorded state —
    /// the splice point of a checkpoint resume: the restored sub-search
    /// appends to the saved events and accumulates onto the saved
    /// metrics, so the merged output equals an uninterrupted run's.
    pub fn from_parts(events: Vec<Event>, metrics: Metrics) -> Self {
        Self {
            enabled: true,
            events: RefCell::new(events),
            metrics: RefCell::new(metrics),
        }
    }

    /// Whether this recorder is recording.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records the event built by `f`; `f` is not called when disabled.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> Event) {
        if self.enabled {
            self.events.borrow_mut().push(f());
        }
    }

    /// Increments a counter by one.
    #[inline]
    pub fn count(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if self.enabled {
            self.metrics.borrow_mut().add(c, n);
        }
    }

    /// Adds `n` to the keyed `primitives_applied` counter family.
    #[inline]
    pub fn count_primitive(&self, name: &'static str, n: u64) {
        if self.enabled {
            self.metrics.borrow_mut().add_primitive(name, n);
        }
    }

    /// Adds `n` to the keyed `audit_findings` counter family.
    #[inline]
    pub fn count_audit_finding(&self, rule: &'static str, n: u64) {
        if self.enabled {
            self.metrics.borrow_mut().add_audit_finding(rule, n);
        }
    }

    /// Adds `n` to the keyed `chaos_faults_injected` counter family.
    #[inline]
    pub fn count_chaos_fault(&self, kind: &'static str, n: u64) {
        if self.enabled {
            self.metrics.borrow_mut().add_chaos_fault(kind, n);
        }
    }

    /// Records a histogram observation.
    #[inline]
    pub fn observe(&self, h: HistKind, v: f64) {
        if self.enabled {
            self.metrics.borrow_mut().observe(h, v);
        }
    }

    /// Consumes the recorder, returning everything it recorded.
    pub fn into_parts(self) -> (Vec<Event>, Metrics) {
        (self.events.into_inner(), self.metrics.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_recorder_captures_everything() {
        let rec = Recorder::new(true);
        rec.emit(|| Event::Backtrack {
            stage_count: 2,
            fingerprint: 7,
            score: 1.5,
        });
        rec.count(Counter::Backtracks);
        rec.add(Counter::PerfEvaluations, 3);
        rec.count_primitive("inc-dp", 2);
        rec.observe(HistKind::HopDepth, 2.0);
        let (events, metrics) = rec.into_parts();
        assert_eq!(events.len(), 1);
        assert_eq!(metrics.counter(Counter::Backtracks), 1);
        assert_eq!(metrics.counter(Counter::PerfEvaluations), 3);
        assert_eq!(metrics.primitives()["inc-dp"], 2);
        assert_eq!(metrics.histogram(HistKind::HopDepth).count(), 1);
    }

    #[test]
    fn disabled_recorder_skips_payload_construction() {
        let rec = Recorder::disabled();
        rec.emit(|| panic!("payload must not be built when disabled"));
        rec.count(Counter::Backtracks);
        rec.observe(HistKind::ScoreDelta, 0.5);
        let (events, metrics) = rec.into_parts();
        assert!(events.is_empty());
        assert_eq!(metrics, Metrics::default());
    }

    #[test]
    fn recorder_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Recorder>();
    }
}
