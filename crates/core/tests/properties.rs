//! Property-style tests over the primitive candidate generator: seeded
//! random walks through configuration space, asserting that every
//! candidate `generate_with` emits — under every combination-feature
//! setting — passes full validation, conserves the GPU total, reports at
//! least one applied primitive, and differs from its input. This is the
//! executable twin of the `aceso-audit` transform analyzer, run from
//! random starting points instead of the fixed corpus.

use aceso_cluster::ClusterSpec;
use aceso_config::{balanced_init, validate::validate, ParallelConfig};
use aceso_core::primitives::{generate_with, GenOptions};
use aceso_core::{Primitive, Resource};
use aceso_model::{zoo, ModelGraph};
use aceso_perf::PerfModel;
use aceso_profile::ProfileDb;
use aceso_util::SplitMix64;

/// All §4.3 combination-feature settings the walk alternates between.
const GEN_OPTIONS: [GenOptions; 4] = [
    GenOptions {
        attach_rc: false,
        relay_moves: false,
        enable_zero: false,
    },
    GenOptions {
        attach_rc: true,
        relay_moves: false,
        enable_zero: false,
    },
    GenOptions {
        attach_rc: false,
        relay_moves: true,
        enable_zero: true,
    },
    GenOptions {
        attach_rc: true,
        relay_moves: true,
        enable_zero: true,
    },
];

/// One random walk: from a balanced init, repeatedly generate candidates
/// for a random (primitive, stage, resource), check them all, then step
/// to a random candidate.
fn walk(model: &ModelGraph, cluster: &ClusterSpec, p: usize, seed: u64, steps: usize) {
    let db = ProfileDb::build(model, cluster);
    let pm = PerfModel::new(model, cluster, &db);
    let mut rng = SplitMix64::new(seed);
    let mut config: ParallelConfig = match balanced_init(model, cluster, p) {
        Ok(c) => c,
        Err(_) => return, // stage count infeasible for this pair
    };

    for step in 0..steps {
        let est = pm.evaluate_unchecked(&config);
        let stage = rng.next_below(config.num_stages());
        let prim = *rng.choose(&Primitive::EXTENDED).expect("nonempty");
        let resource = *rng.choose(&Resource::ALL).expect("nonempty");
        let opts = *rng.choose(&GEN_OPTIONS).expect("nonempty");
        let input_hash = config.semantic_hash();
        let input_gpus = config.total_gpus();

        let candidates = generate_with(&pm, &config, &est, prim, stage, resource, opts);
        for cand in &candidates {
            let ctx = format!(
                "{} seed {seed} step {step}: {} on stage {stage} ({opts:?})",
                model.name,
                prim.name()
            );
            validate(&cand.config, model, cluster)
                .unwrap_or_else(|e| panic!("{ctx}: candidate fails validation: {e}"));
            assert_eq!(
                cand.config.total_gpus(),
                input_gpus,
                "{ctx}: candidate changed the GPU total"
            );
            assert!(
                cand.primitives_applied >= 1,
                "{ctx}: candidate reports zero applied primitives"
            );
            assert_ne!(
                cand.config.semantic_hash(),
                input_hash,
                "{ctx}: candidate is identical to its input"
            );
        }

        // Step somewhere new; if this primitive had no candidates, the
        // next loop iteration rolls a different one.
        if let Some(next) = rng.choose(&candidates) {
            config = next.config.clone();
        }
    }
}

#[test]
fn random_walks_only_generate_valid_candidates() {
    let cluster = ClusterSpec::v100(1, 8);
    let model = zoo::gpt3_custom("prop-gpt", 6, 512, 8, 256, 8192, 64);
    for seed in 0..6 {
        for p in [1, 2, 3] {
            walk(&model, &cluster, p, 0xACE5_0000 + seed, 24);
        }
    }
}

#[test]
fn random_walks_hold_on_heterogeneous_models() {
    let cluster = ClusterSpec::v100(1, 4);
    for (i, model) in [zoo::t5(zoo::T5Size::S0_77b), zoo::deepnet(8)]
        .into_iter()
        .enumerate()
    {
        for p in [2, 4] {
            walk(&model, &cluster, p, 0xBEEF + i as u64, 12);
        }
    }
}
