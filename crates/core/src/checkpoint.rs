//! Versioned search checkpoints: pause a search, serialise its complete
//! per-stage state to JSON, and resume later with **bit-identical**
//! results — the resumed run's best configuration, `best_time` float
//! bits, merged event stream, and every counter equal an uninterrupted
//! run's.
//!
//! Bit-identity is only achievable because every piece of
//! nondeterministic or float-typed state is captured exactly:
//!
//! * floats are stored as `u64` **bit patterns** (`f64::to_bits`), so
//!   `NaN` payloads and the `±inf` sentinels of empty histograms
//!   survive the JSON round-trip;
//! * the visited-fingerprint set and the unexplored heap are drained in
//!   a canonical order before serialisation and rebuilt on resume —
//!   heap pop order is arrangement-independent because every entry's
//!   `(score, tie)` pair is unique;
//! * the per-thread RNG is snapshotted by internal state, not by seed;
//! * the [`CachedEvaluator`](aceso_perf::CachedEvaluator) stage memo is
//!   exported and re-imported so the incremental-vs-full evaluation
//!   counter split does not diverge on resume.
//!
//! A checkpoint is bound to its search by three fingerprints (model,
//! cluster, options) plus the metrics flag; resuming against anything
//! else fails with [`CheckpointError::Mismatch`] — callers degrade to a
//! fresh search, they never resume across incompatible inputs.

use crate::primitives::{Primitive, Resource};
use crate::search::{ScoredConfig, SearchOptions};
use crate::trace::{AcceptedConfig, ConvergencePoint, IterationRecord, SearchTrace};
use aceso_cluster::ClusterSpec;
use aceso_config::{OpParallel, ParallelConfig, StageConfig};
use aceso_model::ModelGraph;
use aceso_obs::{Event, Metrics};
use aceso_perf::MemoEntry;
use aceso_profile::ProfileDb;
use aceso_util::json::{obj, JsonError, ToJson, Value};
use aceso_util::FnvHasher;

/// Version of the checkpoint wire format. Bumped on any change to the
/// JSON shape; a daemon that finds a checkpoint with an unknown version
/// runs a fresh search instead of guessing.
///
/// History: v1 was the original format; v2 added the informational
/// `search_threads` field (the resolved frontier worker count at pause
/// time — never compared on resume, a checkpoint may be resumed at any
/// worker count) and widened the checkpointed counter set to include
/// `search_worker_batches` (deterministic) — `search_steals` is
/// scheduling-dependent and deliberately never enters a checkpoint.
pub const CHECKPOINT_SCHEMA_VERSION: u64 = 2;

/// Stable fingerprint of a model's profile-relevant content: the
/// sequence of operator signatures (order-sensitively hashed — op order
/// is part of the model), precision, and global batch.
pub fn model_fingerprint(model: &ModelGraph) -> u64 {
    let mut h = FnvHasher::new();
    for op in &model.ops {
        h.write_u64(ProfileDb::op_signature(op));
    }
    h.write_bytes(
        model
            .precision
            .to_json_value()
            .to_string_compact()
            .as_bytes(),
    );
    h.write_usize(model.global_batch);
    h.finish()
}

/// Stable fingerprint of a cluster topology (its canonical JSON form).
pub fn cluster_fingerprint(cluster: &ClusterSpec) -> u64 {
    let mut h = FnvHasher::new();
    h.write_bytes(cluster.to_json_value().to_string_compact().as_bytes());
    h.finish()
}

/// Stable fingerprint of every [`SearchOptions`] field that affects the
/// deterministic result. `time_budget`, `parallel`, and
/// `search_threads` are deliberately excluded: none of them changes
/// what an unexpired search computes (frontier results are bit-identical
/// at every worker count), a resumed search must be allowed a fresh
/// wall-clock budget, and a checkpoint taken at one worker count must
/// resume cleanly at another.
pub fn options_fingerprint(o: &SearchOptions) -> u64 {
    let mut h = FnvHasher::new();
    h.write_usize(o.max_hops);
    h.write_usize(o.max_iterations);
    match &o.stage_counts {
        Some(cs) => {
            h.write_bool(true);
            h.write_usize(cs.len());
            for &c in cs {
                h.write_usize(c);
            }
        }
        None => h.write_bool(false),
    }
    h.write_usize(o.top_k);
    h.write_bool(o.fine_tune);
    h.write_bool(o.use_heuristic2);
    h.write_u64(o.seed);
    h.write_usize(o.branch_limit);
    h.write_usize(o.max_bottlenecks);
    h.write_bool(o.gen_options.attach_rc);
    h.write_bool(o.gen_options.relay_moves);
    h.write_bool(o.gen_options.enable_zero);
    match &o.initial {
        Some(c) => {
            h.write_bool(true);
            h.write_u64(c.semantic_hash());
        }
        None => h.write_bool(false),
    }
    h.finish()
}

/// Maps a deserialised string back to the `&'static str` the search
/// vocabulary uses in events and metric keys: resource names, primitive
/// names, pipeline schedules, and the `"-"` no-resource placeholder.
/// Returns `None` for anything outside the vocabulary, which callers
/// surface as a shape error (and then degrade to a fresh search).
pub fn intern_obs_str(s: &str) -> Option<&'static str> {
    if s == "-" {
        return Some("-");
    }
    if let Some(r) = Resource::ALL.iter().find(|r| r.name() == s) {
        return Some(r.name());
    }
    if let Some(p) = Primitive::EXTENDED.iter().find(|p| p.name() == s) {
        return Some(p.name());
    }
    ["1f1b", "gpipe"].iter().find(|&&w| w == s).copied()
}

/// Why a checkpoint could not be loaded or resumed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Malformed JSON, or JSON of the wrong shape (including truncation).
    Json(JsonError),
    /// The checkpoint was written by an unknown (likely newer) format.
    UnknownSchemaVersion(u64),
    /// The checkpoint belongs to a different search (the named
    /// fingerprint or flag does not match).
    Mismatch(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Json(e) => write!(f, "malformed checkpoint: {e}"),
            CheckpointError::UnknownSchemaVersion(v) => {
                write!(
                    f,
                    "unknown checkpoint schema version {v} (this build writes \
                     {CHECKPOINT_SCHEMA_VERSION})"
                )
            }
            CheckpointError::Mismatch(what) => {
                write!(
                    f,
                    "checkpoint belongs to a different search: {what} differs"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<JsonError> for CheckpointError {
    fn from(e: JsonError) -> Self {
        CheckpointError::Json(e)
    }
}

/// A configuration plus its exact score bits — the serialised form of
/// [`ScoredConfig`], kept bit-exact so resuming never re-evaluates (a
/// re-evaluation would shift the evaluation counters).
#[derive(Debug, Clone)]
pub struct CheckpointedScore {
    /// The configuration.
    pub config: ParallelConfig,
    /// `score` as `f64::to_bits`.
    pub score_bits: u64,
    /// `iteration_time` as `f64::to_bits`.
    pub iteration_time_bits: u64,
    /// Whether the prediction exceeds device memory.
    pub oom: bool,
}

impl CheckpointedScore {
    /// Captures a [`ScoredConfig`] bit-exactly.
    pub fn from_scored(s: &ScoredConfig) -> Self {
        Self {
            config: s.config.clone(),
            score_bits: s.score.to_bits(),
            iteration_time_bits: s.iteration_time.to_bits(),
            oom: s.oom,
        }
    }

    /// Restores the [`ScoredConfig`] bit-exactly.
    pub fn to_scored(&self) -> ScoredConfig {
        ScoredConfig {
            config: self.config.clone(),
            score: f64::from_bits(self.score_bits),
            iteration_time: f64::from_bits(self.iteration_time_bits),
            oom: self.oom,
        }
    }
}

/// One entry of the unexplored-configurations pool, with exact score
/// bits and the tie-break id that makes heap pop order deterministic.
#[derive(Debug, Clone)]
pub struct ParkedConfig {
    /// Heap score as `f64::to_bits`.
    pub score_bits: u64,
    /// Tie-break id (insertion order at record time).
    pub tie: u64,
    /// The parked configuration.
    pub config: ParallelConfig,
}

/// In-flight state of one stage-count sub-search (absent once the stage
/// has finished).
#[derive(Debug, Clone)]
pub struct StageProgress {
    /// The next iteration index the resumed loop will run.
    pub next_iter: usize,
    /// The configuration the loop is currently improving.
    pub current: ParallelConfig,
    /// Best configuration found so far, bit-exact.
    pub best: CheckpointedScore,
    /// Visited semantic hashes, sorted ascending (canonical order; the
    /// live `HashSet` iterates nondeterministically).
    pub visited: Vec<u64>,
    /// The unexplored heap, drained in deterministic order. Rebuilt by
    /// pushing on resume — pop order only depends on the unique
    /// `(score, tie)` pairs, not on the heap's internal arrangement.
    pub unexplored: Vec<ParkedConfig>,
    /// Configurations evaluated so far in this stage.
    pub explored: usize,
    /// Last tie-break id handed out.
    pub tie_counter: u64,
    /// Internal RNG state (not the seed — the stream must continue).
    pub rng_state: u64,
    /// The cached evaluator's stage memo, exported in canonical key
    /// order. Re-imported on resume so the incremental-hit/full-eval
    /// counter split matches an uninterrupted run.
    pub memo: Vec<MemoEntry>,
}

/// Checkpoint of one stage-count sub-search: its recorded events and
/// metrics so far, its trace, and either in-flight progress or (when
/// `done`) its final top-k pool.
#[derive(Debug, Clone)]
pub struct StageCheckpoint {
    /// Pipeline stage count this sub-search explores.
    pub stage_count: usize,
    /// Whether the sub-search has finished.
    pub done: bool,
    /// Events recorded so far (resume appends to these).
    pub events: Vec<Event>,
    /// Metrics recorded so far (resume accumulates onto these).
    pub metrics: Metrics,
    /// The trace built so far (complete when `done`).
    pub trace: SearchTrace,
    /// In-flight state; `Some` exactly when `done` is false.
    pub progress: Option<StageProgress>,
    /// Final top-k pool, bit-exact; non-empty only when `done`.
    pub tops: Vec<CheckpointedScore>,
}

/// A complete, versioned search checkpoint.
///
/// Produced by [`AcesoSearch::run_partial`](crate::search::AcesoSearch::run_partial)
/// and consumed by
/// [`AcesoSearch::resume_partial`](crate::search::AcesoSearch::resume_partial);
/// serialises to a single JSON document via [`SearchCheckpoint::to_json_string`].
#[derive(Debug, Clone)]
pub struct SearchCheckpoint {
    /// Wire-format version ([`CHECKPOINT_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// [`model_fingerprint`] of the search's model.
    pub model_fingerprint: u64,
    /// [`cluster_fingerprint`] of the search's cluster.
    pub cluster_fingerprint: u64,
    /// [`options_fingerprint`] of the search's options.
    pub options_fingerprint: u64,
    /// Whether the run records observability (must match on resume —
    /// half-recorded streams cannot be spliced).
    pub metrics: bool,
    /// Wall-clock seconds consumed by previous slices, as `f64::to_bits`
    /// (accumulated into the final `wall_time`).
    pub elapsed_secs_bits: u64,
    /// Resolved frontier worker count when the checkpoint was taken.
    /// **Informational only**: results are worker-count independent, so
    /// this is never part of any fingerprint, never compared on resume
    /// (a checkpoint may be resumed at a different worker count), and
    /// masked by checkpoint-byte determinism comparisons.
    pub search_threads: u64,
    /// Events emitted before any stage ran (the `search_start` record).
    pub head_events: Vec<Event>,
    /// Per-stage-count checkpoints, sorted by stage count.
    pub stages: Vec<StageCheckpoint>,
}

impl SearchCheckpoint {
    /// Wall-clock seconds consumed by previous slices.
    pub fn elapsed_secs(&self) -> f64 {
        f64::from_bits(self.elapsed_secs_bits)
    }

    /// Total search iterations completed across all stage counts.
    pub fn iterations_done(&self) -> usize {
        self.stages.iter().map(|s| s.trace.iterations.len()).sum()
    }

    /// Whether every stage has finished (resuming yields the final
    /// result without any further search work).
    pub fn is_complete(&self) -> bool {
        self.stages.iter().all(|s| s.done)
    }

    /// The pause bound this checkpoint was taken under: the highest
    /// per-stage iteration index any open stage will resume at. Callers
    /// slicing a search (`resume_partial` with a fresh `pause_after`)
    /// add their step to this to schedule the next pause; `0` when every
    /// stage already finished.
    pub fn resume_bound(&self) -> usize {
        self.stages
            .iter()
            .filter_map(|s| s.progress.as_ref().map(|p| p.next_iter))
            .max()
            .unwrap_or(0)
    }

    /// Serialises to a compact single-line JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json_value().to_string_compact()
    }

    /// The checkpoint as a JSON value.
    pub fn to_json_value(&self) -> Value {
        obj([
            ("schema_version", Value::UInt(self.schema_version)),
            ("model_fingerprint", Value::UInt(self.model_fingerprint)),
            ("cluster_fingerprint", Value::UInt(self.cluster_fingerprint)),
            ("options_fingerprint", Value::UInt(self.options_fingerprint)),
            ("metrics", Value::Bool(self.metrics)),
            ("elapsed_secs_bits", Value::UInt(self.elapsed_secs_bits)),
            ("search_threads", Value::UInt(self.search_threads)),
            ("head_events", events_to_json(&self.head_events)),
            (
                "stages",
                Value::Array(self.stages.iter().map(stage_to_json).collect()),
            ),
        ])
    }

    /// Parses a checkpoint document. The schema version is checked
    /// before anything else so a newer format fails with
    /// [`CheckpointError::UnknownSchemaVersion`], not a shape error.
    pub fn from_json_str(text: &str) -> Result<Self, CheckpointError> {
        let v = Value::parse(text).map_err(CheckpointError::Json)?;
        let schema_version = v.field("schema_version")?.as_u64()?;
        if schema_version != CHECKPOINT_SCHEMA_VERSION {
            return Err(CheckpointError::UnknownSchemaVersion(schema_version));
        }
        let mut stages = Vec::new();
        for s in v.field("stages")?.as_array()? {
            stages.push(stage_from_json(s)?);
        }
        Ok(Self {
            schema_version,
            model_fingerprint: v.field("model_fingerprint")?.as_u64()?,
            cluster_fingerprint: v.field("cluster_fingerprint")?.as_u64()?,
            options_fingerprint: v.field("options_fingerprint")?.as_u64()?,
            metrics: v.field("metrics")?.as_bool()?,
            elapsed_secs_bits: v.field("elapsed_secs_bits")?.as_u64()?,
            search_threads: v.field("search_threads")?.as_u64()?,
            head_events: events_from_json(v.field("head_events")?)?,
            stages,
        })
    }
}

/// Compact checkpoint-local encoding of a [`ParallelConfig`]. The
/// public JSON form serialises every operator as a five-field object —
/// fine for result frames and plans, but a checkpoint parks thousands
/// of configurations in the unexplored backtrack heap, and at hundreds
/// of ops each that form reached hundreds of megabytes per spool.
/// Per-operator settings come in long uniform runs (the property
/// `ParallelConfig::semantic_hash` exploits), so checkpoints store a
/// configuration as `[microbatch, [stage, ...]]`, each stage as
/// `[op_start, op_end, gpus, [run, ...]]`, and each run as `[len, tp,
/// dp, dim_index, flags]` with `flags = recompute | zero << 1`.
/// Lossless, so the resume bit-identity contract is unaffected.
fn config_to_json(c: &ParallelConfig) -> Value {
    let stages = c
        .stages
        .iter()
        .map(|s| {
            let mut runs = Vec::new();
            let mut i = 0;
            while i < s.ops.len() {
                let o = s.ops[i];
                let mut run = 1;
                while i + run < s.ops.len() && s.ops[i + run] == o {
                    run += 1;
                }
                runs.push(Value::Array(vec![
                    Value::UInt(run as u64),
                    Value::UInt(u64::from(o.tp)),
                    Value::UInt(u64::from(o.dp)),
                    Value::UInt(u64::from(o.dim_index)),
                    Value::UInt(u64::from(o.recompute) | u64::from(o.zero) << 1),
                ]));
                i += run;
            }
            Value::Array(vec![
                Value::UInt(s.op_start as u64),
                Value::UInt(s.op_end as u64),
                Value::UInt(s.gpus as u64),
                Value::Array(runs),
            ])
        })
        .collect();
    Value::Array(vec![Value::UInt(c.microbatch as u64), Value::Array(stages)])
}

fn config_from_json(v: &Value) -> Result<ParallelConfig, JsonError> {
    let top = v.as_array()?;
    if top.len() != 2 {
        return Err(JsonError::shape("config must be [microbatch, stages]"));
    }
    let mut stages = Vec::new();
    for s in top[1].as_array()? {
        let s = s.as_array()?;
        if s.len() != 4 {
            return Err(JsonError::shape(
                "config stage must be [op_start, op_end, gpus, op_runs]",
            ));
        }
        let op_start = s[0].as_usize()?;
        let op_end = s[1].as_usize()?;
        if op_end < op_start {
            return Err(JsonError::shape("stage op range is inverted"));
        }
        let mut ops = Vec::new();
        for r in s[3].as_array()? {
            let r = r.as_array()?;
            if r.len() != 5 {
                return Err(JsonError::shape(
                    "op run must be [len, tp, dp, dim_index, flags]",
                ));
            }
            let len = r[0].as_usize()?;
            let flags = r[4].as_u64()?;
            if flags > 3 {
                return Err(JsonError::shape("op run flags out of range"));
            }
            // Bound before expanding: run lengths must fit the declared
            // op range, so a corrupt length cannot force a huge
            // allocation.
            if len == 0 || ops.len() + len > op_end - op_start {
                return Err(JsonError::shape("op runs do not fit the stage's op range"));
            }
            ops.resize(
                ops.len() + len,
                OpParallel {
                    tp: r[1].as_u32()?,
                    dp: r[2].as_u32()?,
                    dim_index: r[3].as_u8()?,
                    recompute: flags & 1 != 0,
                    zero: flags & 2 != 0,
                },
            );
        }
        if ops.len() != op_end - op_start {
            return Err(JsonError::shape(
                "op runs do not cover the stage's op range",
            ));
        }
        stages.push(StageConfig {
            op_start,
            op_end,
            gpus: s[2].as_usize()?,
            ops,
        });
    }
    Ok(ParallelConfig {
        stages,
        microbatch: top[0].as_usize()?,
    })
}

fn events_to_json(events: &[Event]) -> Value {
    Value::Array(events.iter().map(Event::to_json_value).collect())
}

fn events_from_json(v: &Value) -> Result<Vec<Event>, JsonError> {
    let mut out = Vec::new();
    for e in v.as_array()? {
        out.push(Event::from_json_value(e, &intern_obs_str)?);
    }
    Ok(out)
}

fn scored_to_json(s: &CheckpointedScore) -> Value {
    obj([
        ("config", config_to_json(&s.config)),
        ("score_bits", Value::UInt(s.score_bits)),
        ("iteration_time_bits", Value::UInt(s.iteration_time_bits)),
        ("oom", Value::Bool(s.oom)),
    ])
}

fn scored_from_json(v: &Value) -> Result<CheckpointedScore, JsonError> {
    Ok(CheckpointedScore {
        config: config_from_json(v.field("config")?)?,
        score_bits: v.field("score_bits")?.as_u64()?,
        iteration_time_bits: v.field("iteration_time_bits")?.as_u64()?,
        oom: v.field("oom")?.as_bool()?,
    })
}

fn trace_to_json(t: &SearchTrace) -> Value {
    obj([
        ("stage_count", Value::UInt(t.stage_count as u64)),
        ("max_hops", Value::UInt(t.max_hops as u64)),
        ("initial_score_bits", Value::UInt(t.initial_score.to_bits())),
        ("explored", Value::UInt(t.explored as u64)),
        (
            "iterations",
            Value::Array(
                t.iterations
                    .iter()
                    .map(|r| {
                        obj([
                            ("bottlenecks_tried", Value::UInt(r.bottlenecks_tried as u64)),
                            ("hops_used", Value::UInt(r.hops_used as u64)),
                            ("improved", Value::Bool(r.improved)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "convergence",
            Value::Array(
                t.convergence
                    .iter()
                    .map(|c| {
                        obj([
                            ("elapsed_bits", Value::UInt(c.elapsed.to_bits())),
                            ("explored", Value::UInt(c.explored as u64)),
                            ("best_score_bits", Value::UInt(c.best_score.to_bits())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "accepted",
            Value::Array(
                t.accepted
                    .iter()
                    .map(|a| {
                        obj([
                            ("fingerprint", Value::UInt(a.fingerprint)),
                            ("score_bits", Value::UInt(a.score.to_bits())),
                            ("config", config_to_json(&a.config)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn trace_from_json(v: &Value) -> Result<SearchTrace, JsonError> {
    let mut iterations = Vec::new();
    for r in v.field("iterations")?.as_array()? {
        iterations.push(IterationRecord {
            bottlenecks_tried: r.field("bottlenecks_tried")?.as_usize()?,
            hops_used: r.field("hops_used")?.as_usize()?,
            improved: r.field("improved")?.as_bool()?,
        });
    }
    let mut convergence = Vec::new();
    for c in v.field("convergence")?.as_array()? {
        convergence.push(ConvergencePoint {
            elapsed: f64::from_bits(c.field("elapsed_bits")?.as_u64()?),
            explored: c.field("explored")?.as_usize()?,
            best_score: f64::from_bits(c.field("best_score_bits")?.as_u64()?),
        });
    }
    let mut accepted = Vec::new();
    for a in v.field("accepted")?.as_array()? {
        accepted.push(AcceptedConfig {
            fingerprint: a.field("fingerprint")?.as_u64()?,
            score: f64::from_bits(a.field("score_bits")?.as_u64()?),
            config: config_from_json(a.field("config")?)?,
        });
    }
    Ok(SearchTrace {
        stage_count: v.field("stage_count")?.as_usize()?,
        max_hops: v.field("max_hops")?.as_usize()?,
        initial_score: f64::from_bits(v.field("initial_score_bits")?.as_u64()?),
        iterations,
        convergence,
        accepted,
        explored: v.field("explored")?.as_usize()?,
    })
}

/// Memo entries are the second-largest checkpoint component (a mature
/// stage memo holds ~10k entries), so they serialise as one flat
/// 17-element array — `[content, microbatch, dev_start, prev_last_dp,
/// has_next, <6 time fields as f64 bits>, <5 memory fields>,
/// in_flight]` — instead of nested field-named objects.
fn memo_entry_to_json(e: &MemoEntry) -> Value {
    let est = &e.estimate;
    Value::Array(vec![
        Value::UInt(e.content),
        Value::UInt(e.microbatch as u64),
        Value::UInt(e.dev_start as u64),
        Value::UInt(u64::from(e.prev_last_dp)),
        Value::UInt(u64::from(e.has_next)),
        Value::UInt(est.comp_fwd.to_bits()),
        Value::UInt(est.comp_bwd.to_bits()),
        Value::UInt(est.comm_fwd.to_bits()),
        Value::UInt(est.comm_bwd.to_bits()),
        Value::UInt(est.dp_sync.to_bits()),
        Value::UInt(est.stage_time.to_bits()),
        Value::UInt(est.mem_params),
        Value::UInt(est.mem_opt),
        Value::UInt(est.mem_act_per_mb),
        Value::UInt(est.mem_reserved),
        Value::UInt(est.mem_total),
        Value::UInt(est.in_flight as u64),
    ])
}

fn memo_entry_from_json(v: &Value) -> Result<MemoEntry, JsonError> {
    let a = v.as_array()?;
    if a.len() != 17 {
        return Err(JsonError::shape("memo entry must be a 17-element array"));
    }
    let has_next = match a[4].as_u64()? {
        0 => false,
        1 => true,
        _ => return Err(JsonError::shape("memo has_next flag out of range")),
    };
    Ok(MemoEntry {
        content: a[0].as_u64()?,
        microbatch: a[1].as_usize()?,
        dev_start: a[2].as_usize()?,
        prev_last_dp: a[3].as_u32()?,
        has_next,
        estimate: aceso_perf::StageEstimate {
            comp_fwd: f64::from_bits(a[5].as_u64()?),
            comp_bwd: f64::from_bits(a[6].as_u64()?),
            comm_fwd: f64::from_bits(a[7].as_u64()?),
            comm_bwd: f64::from_bits(a[8].as_u64()?),
            dp_sync: f64::from_bits(a[9].as_u64()?),
            stage_time: f64::from_bits(a[10].as_u64()?),
            mem_params: a[11].as_u64()?,
            mem_opt: a[12].as_u64()?,
            mem_act_per_mb: a[13].as_u64()?,
            mem_reserved: a[14].as_u64()?,
            mem_total: a[15].as_u64()?,
            in_flight: a[16].as_usize()?,
        },
    })
}

fn progress_to_json(p: &StageProgress) -> Value {
    obj([
        ("next_iter", Value::UInt(p.next_iter as u64)),
        ("current", config_to_json(&p.current)),
        ("best", scored_to_json(&p.best)),
        (
            "visited",
            Value::Array(p.visited.iter().map(|&h| Value::UInt(h)).collect()),
        ),
        (
            // Flat `[score_bits, tie, config]` triples: the parked
            // backtrack heap is the largest checkpoint component.
            "unexplored",
            Value::Array(
                p.unexplored
                    .iter()
                    .map(|e| {
                        Value::Array(vec![
                            Value::UInt(e.score_bits),
                            Value::UInt(e.tie),
                            config_to_json(&e.config),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("explored", Value::UInt(p.explored as u64)),
        ("tie_counter", Value::UInt(p.tie_counter)),
        ("rng_state", Value::UInt(p.rng_state)),
        (
            "memo",
            Value::Array(p.memo.iter().map(memo_entry_to_json).collect()),
        ),
    ])
}

fn progress_from_json(v: &Value) -> Result<StageProgress, JsonError> {
    let mut visited = Vec::new();
    for h in v.field("visited")?.as_array()? {
        visited.push(h.as_u64()?);
    }
    let mut unexplored = Vec::new();
    for e in v.field("unexplored")?.as_array()? {
        let e = e.as_array()?;
        if e.len() != 3 {
            return Err(JsonError::shape(
                "unexplored entry must be [score_bits, tie, config]",
            ));
        }
        unexplored.push(ParkedConfig {
            score_bits: e[0].as_u64()?,
            tie: e[1].as_u64()?,
            config: config_from_json(&e[2])?,
        });
    }
    let mut memo = Vec::new();
    for e in v.field("memo")?.as_array()? {
        memo.push(memo_entry_from_json(e)?);
    }
    Ok(StageProgress {
        next_iter: v.field("next_iter")?.as_usize()?,
        current: config_from_json(v.field("current")?)?,
        best: scored_from_json(v.field("best")?)?,
        visited,
        unexplored,
        explored: v.field("explored")?.as_usize()?,
        tie_counter: v.field("tie_counter")?.as_u64()?,
        rng_state: v.field("rng_state")?.as_u64()?,
        memo,
    })
}

fn stage_to_json(s: &StageCheckpoint) -> Value {
    obj([
        ("stage_count", Value::UInt(s.stage_count as u64)),
        ("done", Value::Bool(s.done)),
        ("events", events_to_json(&s.events)),
        ("metrics", s.metrics.to_checkpoint_value()),
        ("trace", trace_to_json(&s.trace)),
        (
            "progress",
            s.progress.as_ref().map_or(Value::Null, progress_to_json),
        ),
        (
            "tops",
            Value::Array(s.tops.iter().map(scored_to_json).collect()),
        ),
    ])
}

fn stage_from_json(v: &Value) -> Result<StageCheckpoint, JsonError> {
    let done = v.field("done")?.as_bool()?;
    let progress = match v.field("progress")? {
        Value::Null => None,
        p => Some(progress_from_json(p)?),
    };
    if done == progress.is_some() {
        return Err(JsonError::shape(
            "stage checkpoint must carry progress exactly when not done",
        ));
    }
    let mut tops = Vec::new();
    for t in v.field("tops")?.as_array()? {
        tops.push(scored_from_json(t)?);
    }
    Ok(StageCheckpoint {
        stage_count: v.field("stage_count")?.as_usize()?,
        done,
        events: events_from_json(v.field("events")?)?,
        metrics: Metrics::from_checkpoint_value(v.field("metrics")?, &intern_obs_str)?,
        trace: trace_from_json(v.field("trace")?)?,
        progress,
        tops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_model::zoo::gpt3_custom;

    #[test]
    fn fingerprints_are_stable_and_discriminating() {
        let m = gpt3_custom("t", 4, 512, 8, 256, 8192, 64);
        let m2 = gpt3_custom("u", 6, 512, 8, 256, 8192, 64);
        assert_eq!(model_fingerprint(&m), model_fingerprint(&m));
        assert_ne!(model_fingerprint(&m), model_fingerprint(&m2));
        let c2 = ClusterSpec::v100(1, 2);
        let c4 = ClusterSpec::v100(1, 4);
        assert_eq!(cluster_fingerprint(&c2), cluster_fingerprint(&c2));
        assert_ne!(cluster_fingerprint(&c2), cluster_fingerprint(&c4));
    }

    #[test]
    fn options_fingerprint_tracks_result_affecting_knobs_only() {
        let base = SearchOptions::default();
        let same = options_fingerprint(&base);
        assert_eq!(same, options_fingerprint(&SearchOptions::default()));
        // Result-affecting knobs change the fingerprint.
        let seeded = SearchOptions {
            seed: 7,
            ..SearchOptions::default()
        };
        assert_ne!(same, options_fingerprint(&seeded));
        let hops = SearchOptions {
            max_hops: 3,
            ..SearchOptions::default()
        };
        assert_ne!(same, options_fingerprint(&hops));
        // Wall-clock budget and threading do not.
        let budgeted = SearchOptions {
            time_budget: Some(std::time::Duration::from_secs(1)),
            parallel: false,
            ..SearchOptions::default()
        };
        assert_eq!(same, options_fingerprint(&budgeted));
        // The frontier worker count never affects results, so it must
        // not affect the fingerprint either: a checkpoint taken at one
        // worker count resumes at any other.
        let threaded = SearchOptions {
            search_threads: 8,
            ..SearchOptions::default()
        };
        assert_eq!(same, options_fingerprint(&threaded));
    }

    #[test]
    fn interner_covers_the_search_vocabulary_and_nothing_else() {
        for r in Resource::ALL {
            assert_eq!(intern_obs_str(r.name()), Some(r.name()));
        }
        for p in Primitive::EXTENDED {
            assert_eq!(intern_obs_str(p.name()), Some(p.name()));
        }
        assert_eq!(intern_obs_str("-"), Some("-"));
        assert_eq!(intern_obs_str("1f1b"), Some("1f1b"));
        assert_eq!(intern_obs_str("gpipe"), Some("gpipe"));
        assert_eq!(intern_obs_str("inc-banana"), None);
        assert_eq!(intern_obs_str(""), None);
    }

    #[test]
    fn compact_config_encoding_roundtrips_losslessly() {
        // Two stages with run breaks mid-stage: tp/dp changes, a
        // recompute toggle, and a zero toggle all terminate runs.
        let mk = |tp, dp, recompute, zero| OpParallel {
            tp,
            dp,
            dim_index: 0,
            recompute,
            zero,
        };
        let mut s0 = StageConfig::uniform(0, 7, mk(2, 2, false, false));
        s0.ops[3] = mk(1, 4, false, false);
        s0.ops[4] = mk(1, 4, true, false);
        let mut s1 = StageConfig::uniform(7, 12, mk(4, 1, true, false));
        s1.ops[4] = mk(4, 1, true, true);
        let config = ParallelConfig {
            stages: vec![s0, s1],
            microbatch: 16,
        };
        let encoded = config_to_json(&config);
        let text = encoded.to_string_compact();
        assert!(
            text.len() < config.to_json_value().to_string_compact().len(),
            "compact form must be smaller than the public per-op form"
        );
        let decoded = config_from_json(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(decoded, config);
    }

    #[test]
    fn compact_config_decoding_rejects_malformed_runs() {
        let mk = |tp, dp| OpParallel {
            tp,
            dp,
            dim_index: 0,
            recompute: false,
            zero: false,
        };
        let config = ParallelConfig {
            stages: vec![StageConfig::uniform(0, 5, mk(1, 2))],
            microbatch: 8,
        };
        let good = config_to_json(&config).to_string_compact();
        // A run length that overflows the declared op range is rejected
        // before any expansion.
        let overflow = good.replacen("[5,1,2,0,0]", "[5000000000,1,2,0,0]", 1);
        assert_ne!(overflow, good);
        assert!(config_from_json(&Value::parse(&overflow).unwrap()).is_err());
        // A run set that under-covers the range is rejected too.
        let short = good.replacen("[5,1,2,0,0]", "[4,1,2,0,0]", 1);
        assert!(config_from_json(&Value::parse(&short).unwrap()).is_err());
        // Flags outside the two defined bits are rejected.
        let flags = good.replacen("[5,1,2,0,0]", "[5,1,2,0,4]", 1);
        assert!(config_from_json(&Value::parse(&flags).unwrap()).is_err());
    }

    #[test]
    fn unknown_schema_version_is_detected_before_shape_errors() {
        // A document with a future version and an otherwise-garbage body
        // must fail on the version, not the body.
        let text = r#"{"schema_version":99,"nonsense":true}"#;
        match SearchCheckpoint::from_json_str(text) {
            Err(CheckpointError::UnknownSchemaVersion(99)) => {}
            other => panic!("expected UnknownSchemaVersion, got {other:?}"),
        }
    }

    #[test]
    fn truncated_json_is_a_json_error() {
        let text = r#"{"schema_version":2,"model_fingerprint":12,"#;
        match SearchCheckpoint::from_json_str(text) {
            Err(CheckpointError::Json(_)) => {}
            other => panic!("expected Json error, got {other:?}"),
        }
    }
}
