//! Reconfiguration primitives (paper Table 1) and candidate generation.
//!
//! Each primitive adjusts exactly one mechanism of one stage (or, for the
//! microbatch pair, the whole model) and carries a *resource signature*:
//! the direction in which it moves the stage's computation, communication
//! and memory consumption. The search queries the table for primitives
//! whose signature *decreases* the bottleneck resource, then generates the
//! concrete candidate configurations each primitive implies — including
//! partner-stage adjustments (device donations), argument choices (how
//! many ops to move / recompute, §4.1), the relay form of op moves, and
//! the attached recompute fix-up (§4.3).

use crate::transform::{self, Mechanism};
use aceso_config::ParallelConfig;
use aceso_perf::{ConfigEstimate, Evaluator};

/// The three hardware resources of the trading view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Computation time.
    Compute,
    /// Communication time.
    Communication,
    /// Memory footprint.
    Memory,
}

impl Resource {
    /// All resources.
    pub const ALL: [Resource; 3] = [Resource::Compute, Resource::Communication, Resource::Memory];

    /// Lower-case name, as it appears in observability events.
    pub fn name(self) -> &'static str {
        match self {
            Resource::Compute => "compute",
            Resource::Communication => "communication",
            Resource::Memory => "memory",
        }
    }
}

/// Direction of a primitive's impact on one resource (Table 1 arrows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trend {
    /// Consumption increases (↗).
    Inc,
    /// Consumption unchanged (⇒).
    Same,
    /// Consumption decreases (↘).
    Dec,
}

/// The ten reconfiguration primitives of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// Increase the number of operators in a pipeline stage.
    IncOp,
    /// Decrease the number of operators in a pipeline stage.
    DecOp,
    /// Increase the (global) microbatch size.
    IncMbs,
    /// Decrease the (global) microbatch size.
    DecMbs,
    /// Increase data-parallel concurrency of a stage.
    IncDp,
    /// Decrease data-parallel concurrency of a stage.
    DecDp,
    /// Increase tensor-parallel concurrency of a stage.
    IncTp,
    /// Decrease tensor-parallel concurrency of a stage.
    DecTp,
    /// Recompute more operators in a stage.
    IncRc,
    /// Recompute fewer operators in a stage.
    DecRc,
    /// Extension (not in Table 1): shard optimiser states across the
    /// stage's data-parallel group (ZeRO-1).
    IncZero,
    /// Extension: stop sharding optimiser states.
    DecZero,
}

impl Primitive {
    /// All primitives in Table 1 order.
    pub const ALL: [Primitive; 10] = [
        Primitive::IncOp,
        Primitive::DecOp,
        Primitive::IncMbs,
        Primitive::DecMbs,
        Primitive::IncDp,
        Primitive::DecDp,
        Primitive::IncTp,
        Primitive::DecTp,
        Primitive::IncRc,
        Primitive::DecRc,
    ];

    /// Table 1 plus the ZeRO extension pair — demonstrating the paper's
    /// "Aceso can be extended with new primitives" claim end to end.
    pub const EXTENDED: [Primitive; 12] = [
        Primitive::IncOp,
        Primitive::DecOp,
        Primitive::IncMbs,
        Primitive::DecMbs,
        Primitive::IncDp,
        Primitive::DecDp,
        Primitive::IncTp,
        Primitive::DecTp,
        Primitive::IncRc,
        Primitive::DecRc,
        Primitive::IncZero,
        Primitive::DecZero,
    ];

    /// Table 1 resource signature `(compute, communication, memory)` for
    /// the stage the primitive is applied to.
    pub fn effects(self) -> (Trend, Trend, Trend) {
        use Trend::{Dec, Inc, Same};
        match self {
            Primitive::IncOp => (Inc, Same, Inc),
            Primitive::DecOp => (Dec, Same, Dec),
            // A larger microbatch amortises per-kernel fixed costs (less
            // compute time) but stashes more per in-flight microbatch.
            Primitive::IncMbs => (Dec, Same, Inc),
            Primitive::DecMbs => (Inc, Same, Dec),
            // More devices share the work and the state, for more traffic.
            Primitive::IncDp => (Dec, Inc, Dec),
            Primitive::DecDp => (Inc, Dec, Inc),
            Primitive::IncTp => (Dec, Inc, Dec),
            Primitive::DecTp => (Inc, Dec, Inc),
            // The classic trade of duplicated compute for memory.
            Primitive::IncRc => (Inc, Same, Dec),
            Primitive::DecRc => (Dec, Same, Inc),
            // ZeRO-1 trades a parameter all-gather for optimiser memory.
            Primitive::IncZero => (Same, Inc, Dec),
            Primitive::DecZero => (Same, Dec, Inc),
        }
    }

    /// Whether the primitive decreases `resource` on its target stage.
    pub fn decreases(self, resource: Resource) -> bool {
        let (comp, comm, mem) = self.effects();
        let t = match resource {
            Resource::Compute => comp,
            Resource::Communication => comm,
            Resource::Memory => mem,
        };
        t == Trend::Dec
    }

    /// Primitives that decrease `resource`, in Table 1 order — the
    /// eligibility query of §3.2.2.
    ///
    /// # Examples
    ///
    /// ```
    /// use aceso_core::{Primitive, Resource};
    ///
    /// // Only concurrency decreases relieve a communication bottleneck.
    /// assert_eq!(
    ///     Primitive::eligible_for(Resource::Communication),
    ///     vec![Primitive::DecDp, Primitive::DecTp],
    /// );
    /// ```
    pub fn eligible_for(resource: Resource) -> Vec<Primitive> {
        Primitive::ALL
            .iter()
            .copied()
            .filter(|p| p.decreases(resource))
            .collect()
    }

    /// Eligibility query over the extended table (includes the ZeRO pair).
    pub fn eligible_for_extended(resource: Resource) -> Vec<Primitive> {
        Primitive::EXTENDED
            .iter()
            .copied()
            .filter(|p| p.decreases(resource))
            .collect()
    }

    /// Short stable name (for traces and tables).
    pub fn name(self) -> &'static str {
        match self {
            Primitive::IncOp => "inc-op#",
            Primitive::DecOp => "dec-op#",
            Primitive::IncMbs => "inc-mbs",
            Primitive::DecMbs => "dec-mbs",
            Primitive::IncDp => "inc-dp",
            Primitive::DecDp => "dec-dp",
            Primitive::IncTp => "inc-tp",
            Primitive::DecTp => "dec-tp",
            Primitive::IncRc => "inc-rc",
            Primitive::DecRc => "dec-rc",
            Primitive::IncZero => "inc-zero",
            Primitive::DecZero => "dec-zero",
        }
    }
}

/// Toggles for the §4.3 primitive-combination optimisations (exposed so
/// the ablation harness can measure their value).
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Attach the recompute fix-up to every candidate.
    pub attach_rc: bool,
    /// Generate relay (multi-stage) op moves toward a distant idle stage.
    pub relay_moves: bool,
    /// Search the ZeRO-1 extension primitives (off by default to match the
    /// paper's Table 1 search space).
    pub enable_zero: bool,
}

impl Default for GenOptions {
    fn default() -> Self {
        Self {
            attach_rc: true,
            relay_moves: true,
            enable_zero: false,
        }
    }
}

/// One generated candidate: the rewritten configuration plus provenance.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The rewritten configuration.
    pub config: ParallelConfig,
    /// The primitive that produced it.
    pub primitive: Primitive,
    /// The stage it targeted.
    pub stage: usize,
    /// Number of Table-1 primitive applications this candidate bundles
    /// (relay moves chain several op moves; the attached recompute fix-up
    /// adds one more) — the unit the paper's hop counts are measured in.
    pub primitives_applied: usize,
}

/// Ranks partner stages by how much of the bottleneck's scarce resource
/// they have to spare (paper §3.2.1: "the one with the most available
/// resources required by the bottleneck stage").
fn partners_by_slack(est: &ConfigEstimate, stage: usize, resource: Resource) -> Vec<usize> {
    let mut others: Vec<usize> = (0..est.stages.len()).filter(|&s| s != stage).collect();
    match resource {
        Resource::Memory => {
            others.sort_by(|&a, &b| est.stages[a].mem_total.cmp(&est.stages[b].mem_total));
        }
        _ => {
            others.sort_by(|&a, &b| {
                est.stages[a]
                    .steady_per_mb()
                    .partial_cmp(&est.stages[b].steady_per_mb())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }
    }
    others
}

/// Generates the concrete configurations a primitive implies for a
/// bottleneck stage, given the current estimate.
///
/// Several argument values may be plausible (how many ops to move, which
/// donors to tap); all are emitted and the caller ranks them by estimated
/// performance (Heuristic-2's best-performance-first).
pub fn generate<E: Evaluator>(
    pm: &E,
    config: &ParallelConfig,
    est: &ConfigEstimate,
    prim: Primitive,
    stage: usize,
    resource: Resource,
) -> Vec<Candidate> {
    generate_with(
        pm,
        config,
        est,
        prim,
        stage,
        resource,
        GenOptions::default(),
    )
}

/// [`generate`] with explicit combination toggles.
pub fn generate_with<E: Evaluator>(
    pm: &E,
    config: &ParallelConfig,
    est: &ConfigEstimate,
    prim: Primitive,
    stage: usize,
    resource: Resource,
    gen_opts: GenOptions,
) -> Vec<Candidate> {
    let model = pm.model();
    let p = config.num_stages();
    // (candidate, primitives applied so far)
    let mut out: Vec<(ParallelConfig, usize)> = Vec::new();

    match prim {
        Primitive::DecOp => {
            // Move boundary ops toward the idlest side; try a few k values
            // and a relay toward a distant idlest stage (§4.3).
            let idlest = partners_by_slack(est, stage, resource).into_iter().next();
            let mut dirs: Vec<usize> = Vec::new();
            if let Some(idle) = idlest {
                if idle < stage && stage > 0 {
                    dirs.push(stage - 1);
                }
                if idle > stage && stage + 1 < p {
                    dirs.push(stage + 1);
                }
            }
            if stage > 0 && !dirs.contains(&(stage - 1)) {
                dirs.push(stage - 1);
            }
            if stage + 1 < p && !dirs.contains(&(stage + 1)) {
                dirs.push(stage + 1);
            }
            let n_ops = config.stages[stage].num_ops();
            for to in dirs {
                // Power-of-two move sizes up to half the stage, so a
                // 1000-op stage can rebalance in few iterations.
                let mut k = 1usize;
                while k < n_ops {
                    if let Some(c) = transform::move_ops(model, config, stage, to, k) {
                        out.push((c, 1));
                    }
                    if k >= n_ops / 2 {
                        break;
                    }
                    k *= 2;
                }
            }
            // Relay move toward a non-adjacent idlest stage.
            if let Some(idle) = idlest.filter(|_| gen_opts.relay_moves) {
                if stage.abs_diff(idle) > 1 {
                    if let Some(c) = relay_move(model, config, stage, idle, 2) {
                        out.push((c, stage.abs_diff(idle)));
                    }
                }
            }
        }
        Primitive::IncOp => {
            // Pull boundary ops from a neighbour (partner of dec-op#).
            for from in [stage.wrapping_sub(1), stage + 1] {
                if from >= p || from == stage {
                    continue;
                }
                for k in [1usize, 2, 4] {
                    if let Some(c) = transform::move_ops(model, config, from, stage, k) {
                        out.push((c, 1));
                    }
                }
            }
        }
        Primitive::IncMbs => {
            out.extend(transform::scale_microbatch(model, config, true).map(|c| (c, 1)));
        }
        Primitive::DecMbs => {
            out.extend(transform::scale_microbatch(model, config, false).map(|c| (c, 1)));
        }
        Primitive::IncDp | Primitive::IncTp => {
            let mech = if prim == Primitive::IncDp {
                Mechanism::Dp
            } else {
                Mechanism::Tp
            };
            let donors = partners_by_slack(est, stage, resource);
            // A grow bundles the donor stages' dec primitives with the
            // bottleneck's inc (partner primitives, §3.2.1): ≥ 2 applications.
            out.extend(transform::grow_stage(model, config, stage, mech, &donors).map(|c| (c, 2)));
            // In-place conversion (no device movement).
            out.extend(transform::convert_stage(model, config, stage, mech).map(|c| (c, 2)));
        }
        Primitive::DecDp | Primitive::DecTp => {
            let mech = if prim == Primitive::DecDp {
                Mechanism::Dp
            } else {
                Mechanism::Tp
            };
            // Freed devices go to the *neediest* stages (reverse slack).
            let mut receivers = partners_by_slack(est, stage, resource);
            receivers.reverse();
            out.extend(
                transform::shrink_stage(model, config, stage, &receivers, mech).map(|c| (c, 2)),
            );
            // In-place conversion away from this mechanism.
            let toward = if prim == Primitive::DecDp {
                Mechanism::Tp
            } else {
                Mechanism::Dp
            };
            out.extend(transform::convert_stage(model, config, stage, toward).map(|c| (c, 2)));
        }
        Primitive::IncRc => {
            out.extend(greedy_recompute_to_fit(pm, config, est, stage).map(|c| (c, 1)));
            out.extend(transform::recompute_largest(model, config, stage, 1).map(|c| (c, 1)));
            out.extend(
                transform::recompute_largest(model, config, stage, usize::MAX).map(|c| (c, 1)),
            );
        }
        Primitive::DecRc => {
            out.extend(greedy_uncompute_in_headroom(pm, config, est, stage).map(|c| (c, 1)));
            out.extend(transform::uncompute_smallest(model, config, stage, 1).map(|c| (c, 1)));
        }
        Primitive::IncZero => {
            out.extend(set_zero(config, stage, true).map(|c| (c, 1)));
        }
        Primitive::DecZero => {
            out.extend(set_zero(config, stage, false).map(|c| (c, 1)));
        }
    }

    // §4.3: attach a recompute fix-up to every candidate so memory shifts
    // caused by the primitive do not leave a stage needlessly OOM or
    // needlessly recomputing. The fix-up counts as one more applied
    // primitive when it changes the configuration.
    let fixed: Vec<(ParallelConfig, usize)> = if gen_opts.attach_rc {
        out.into_iter()
            .map(|(c, hops)| {
                let before = c.semantic_hash();
                let fixed = rc_fixup(pm, c);
                let extra = usize::from(fixed.semantic_hash() != before);
                (fixed, hops + extra)
            })
            .collect()
    } else {
        out
    };

    // Seed the dedup set with the input: a candidate identical to the
    // configuration it rewrites is a wasted hop, never a real move.
    let mut seen = std::collections::HashSet::from([config.semantic_hash()]);
    let candidates: Vec<Candidate> = fixed
        .into_iter()
        .filter(|(c, _)| seen.insert(c.semantic_hash()))
        .map(|(config, primitives_applied)| Candidate {
            config,
            primitive: prim,
            stage,
            primitives_applied,
        })
        .collect();
    for cand in &candidates {
        crate::invariants::assert_valid(model, pm.cluster(), &cand.config, prim.name());
    }
    candidates
}

/// ZeRO-1 extension: flips optimiser-state sharding for every op in the
/// stage that has a non-trivial dp group. `None` when nothing changes.
fn set_zero(config: &ParallelConfig, stage: usize, on: bool) -> Option<ParallelConfig> {
    let mut cfg = config.clone();
    let mut changed = false;
    for op in &mut cfg.stages[stage].ops {
        if op.dp > 1 && op.zero != on {
            op.zero = on;
            changed = true;
        }
    }
    changed.then_some(cfg)
}

/// Relay form of dec-op# (§4.3): shifts `k` ops per hop along the chain of
/// stages from `from` toward `idle`.
fn relay_move(
    model: &aceso_model::ModelGraph,
    config: &ParallelConfig,
    from: usize,
    idle: usize,
    k: usize,
) -> Option<ParallelConfig> {
    let mut cfg = config.clone();
    let mut cur = from;
    while cur != idle {
        let next = if idle > cur { cur + 1 } else { cur - 1 };
        cfg = transform::move_ops(model, &cfg, cur, next, k)?;
        cur = next;
    }
    Some(cfg)
}

/// inc-rc argument choice (§4.1): flag largest-stash ops until the stage's
/// predicted memory fits the device, using Eq. 1 arithmetic directly.
fn greedy_recompute_to_fit<E: Evaluator>(
    pm: &E,
    config: &ParallelConfig,
    est: &ConfigEstimate,
    stage: usize,
) -> Option<ParallelConfig> {
    let capacity = pm.cluster().device.mem_bytes;
    let se = &est.stages[stage];
    if se.mem_total <= capacity {
        return None;
    }
    let overshoot = se.mem_total - capacity;
    let model = pm.model();
    let s = &config.stages[stage];
    let in_flight = se.in_flight as u64;
    let act_bytes = model.precision.bytes();
    let mut items: Vec<(usize, u64)> = s
        .ops
        .iter()
        .enumerate()
        .filter(|(_, o)| !o.recompute)
        .map(|(j, o)| {
            let op = &model.ops[s.op_start + j];
            let per_dev = config.microbatch as u64 / u64::from(o.dp);
            let saved = op.stash_per_rank(usize::from(o.dim_index), o.tp) * per_dev * act_bytes;
            (j, saved * in_flight)
        })
        .collect();
    items.sort_by_key(|&(_, saved)| std::cmp::Reverse(saved));
    let mut cfg = config.clone();
    let mut freed = 0u64;
    for (j, saved) in items {
        if freed >= overshoot {
            break;
        }
        cfg.stages[stage].ops[j].recompute = true;
        freed += saved;
    }
    if freed == 0 {
        return None;
    }
    Some(cfg)
}

/// dec-rc argument choice: clear smallest-stash flags while staying within
/// the device's memory headroom.
fn greedy_uncompute_in_headroom<E: Evaluator>(
    pm: &E,
    config: &ParallelConfig,
    est: &ConfigEstimate,
    stage: usize,
) -> Option<ParallelConfig> {
    let capacity = pm.cluster().device.mem_bytes;
    let se = &est.stages[stage];
    if se.mem_total >= capacity {
        return None;
    }
    let mut headroom = capacity - se.mem_total;
    let model = pm.model();
    let s = &config.stages[stage];
    let in_flight = se.in_flight as u64;
    let act_bytes = model.precision.bytes();
    let mut items: Vec<(usize, u64)> = s
        .ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.recompute)
        .map(|(j, o)| {
            let op = &model.ops[s.op_start + j];
            let per_dev = config.microbatch as u64 / u64::from(o.dp);
            let cost = op.stash_per_rank(usize::from(o.dim_index), o.tp) * per_dev * act_bytes;
            (j, cost * in_flight)
        })
        .collect();
    items.sort_by_key(|&(_, cost)| cost);
    let mut cfg = config.clone();
    let mut cleared = 0usize;
    for (j, cost) in items {
        // Keep a 5% capacity margin, mirroring the deliberate
        // overestimation stance of §3.3.
        if cost + capacity / 20 > headroom {
            break;
        }
        cfg.stages[stage].ops[j].recompute = false;
        headroom -= cost;
        cleared += 1;
    }
    if cleared == 0 {
        return None;
    }
    Some(cfg)
}

/// Attached recompute check (§4.3): after any primitive, re-fit recompute
/// flags on every stage whose memory the primitive disturbed.
pub fn rc_fixup<E: Evaluator>(pm: &E, config: ParallelConfig) -> ParallelConfig {
    let est = pm.evaluate_unchecked(&config);
    let mut cfg = config;
    for stage in 0..cfg.stages.len() {
        if est.stages[stage].mem_total > pm.cluster().device.mem_bytes {
            if let Some(fixed) = greedy_recompute_to_fit(pm, &cfg, &est, stage) {
                cfg = fixed;
            }
        }
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_cluster::ClusterSpec;
    use aceso_config::balanced_init;
    use aceso_config::validate::validate;
    use aceso_model::zoo::gpt3_custom;
    use aceso_model::ModelGraph;
    use aceso_perf::PerfModel;
    use aceso_profile::ProfileDb;

    fn setup() -> (ModelGraph, ClusterSpec) {
        (
            gpt3_custom("t", 4, 512, 8, 256, 8192, 64),
            ClusterSpec::v100(1, 8),
        )
    }

    #[test]
    fn table1_signatures() {
        use Trend::*;
        assert_eq!(Primitive::IncDp.effects(), (Dec, Inc, Dec));
        assert_eq!(Primitive::IncRc.effects(), (Inc, Same, Dec));
        assert_eq!(Primitive::DecOp.effects(), (Dec, Same, Dec));
        // Every inc has a dec with mirrored trends.
        for (inc, dec) in [
            (Primitive::IncOp, Primitive::DecOp),
            (Primitive::IncMbs, Primitive::DecMbs),
            (Primitive::IncDp, Primitive::DecDp),
            (Primitive::IncTp, Primitive::DecTp),
            (Primitive::IncRc, Primitive::DecRc),
        ] {
            let (a, b, c) = inc.effects();
            let (x, y, z) = dec.effects();
            let flip = |t: Trend| match t {
                Inc => Dec,
                Dec => Inc,
                Same => Same,
            };
            assert_eq!((flip(a), flip(b), flip(c)), (x, y, z), "{}", inc.name());
        }
    }

    #[test]
    fn eligibility_query() {
        let mem = Primitive::eligible_for(Resource::Memory);
        assert!(mem.contains(&Primitive::IncRc));
        assert!(mem.contains(&Primitive::IncTp));
        assert!(mem.contains(&Primitive::DecMbs));
        assert!(!mem.contains(&Primitive::DecRc));
        let comm = Primitive::eligible_for(Resource::Communication);
        assert_eq!(comm, vec![Primitive::DecDp, Primitive::DecTp]);
        let comp = Primitive::eligible_for(Resource::Compute);
        assert!(comp.contains(&Primitive::DecOp));
        assert!(comp.contains(&Primitive::IncMbs));
        assert!(comp.contains(&Primitive::DecRc));
    }

    #[test]
    fn generate_produces_valid_candidates() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let pm = PerfModel::new(&m, &c, &db);
        let cfg = balanced_init(&m, &c, 4).expect("init");
        let est = pm.evaluate_unchecked(&cfg);
        let mut total = 0;
        for prim in Primitive::ALL {
            for stage in 0..4 {
                for res in Resource::ALL {
                    for cand in generate(&pm, &cfg, &est, prim, stage, res) {
                        assert!(
                            validate(&cand.config, &m, &c).is_ok(),
                            "{} stage {stage} invalid",
                            prim.name()
                        );
                        total += 1;
                    }
                }
            }
        }
        assert!(total > 20, "expected many candidates, got {total}");
    }

    #[test]
    fn dec_op_moves_fewer_ops_first() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let pm = PerfModel::new(&m, &c, &db);
        let cfg = balanced_init(&m, &c, 2).expect("init");
        let est = pm.evaluate_unchecked(&cfg);
        let cands = generate(&pm, &cfg, &est, Primitive::DecOp, 0, Resource::Compute);
        assert!(!cands.is_empty());
        // First candidate moves exactly one op.
        let first = &cands[0].config;
        assert_eq!(first.stages[0].num_ops(), cfg.stages[0].num_ops() - 1);
    }

    #[test]
    fn inc_tp_conversion_available_for_single_stage() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let pm = PerfModel::new(&m, &c, &db);
        let cfg = balanced_init(&m, &c, 1).expect("init");
        let est = pm.evaluate_unchecked(&cfg);
        let cands = generate(&pm, &cfg, &est, Primitive::IncTp, 0, Resource::Memory);
        assert!(!cands.is_empty(), "single-stage tp conversion must exist");
        assert!(cands[0].config.stages[0].ops.iter().any(|o| o.tp > 1));
    }

    #[test]
    fn rc_fixup_resolves_oom_when_possible() {
        // A model that OOMs without recompute on 1 GPU (≈26 GB of
        // params/optimiser plus ≈16 GB of stashed activations).
        let m = gpt3_custom("t", 32, 2048, 32, 2048, 51200, 256);
        let c = ClusterSpec::v100(1, 1);
        let db = ProfileDb::build(&m, &c);
        let pm = PerfModel::new(&m, &c, &db);
        let cfg = balanced_init(&m, &c, 1).expect("init");
        let before = pm.evaluate_unchecked(&cfg);
        assert!(before.oom(), "baseline should be OOM");
        let fixed = rc_fixup(&pm, cfg);
        let after = pm.evaluate_unchecked(&fixed);
        assert!(after.max_memory < before.max_memory);
    }

    #[test]
    fn zero_extension_signatures() {
        use Trend::{Dec, Inc, Same};
        assert_eq!(Primitive::IncZero.effects(), (Same, Inc, Dec));
        assert_eq!(Primitive::DecZero.effects(), (Same, Dec, Inc));
        assert_eq!(Primitive::IncZero.name(), "inc-zero");
    }

    #[test]
    fn zero_extension_eligibility() {
        // Table-1 queries never see the extension pair...
        assert!(!Primitive::eligible_for(Resource::Memory).contains(&Primitive::IncZero));
        // ...the extended query does.
        let ext = Primitive::eligible_for_extended(Resource::Memory);
        assert!(ext.contains(&Primitive::IncZero));
        assert!(
            Primitive::eligible_for_extended(Resource::Communication).contains(&Primitive::DecZero)
        );
        assert_eq!(Primitive::EXTENDED.len(), Primitive::ALL.len() + 2);
    }

    #[test]
    fn inc_zero_shards_optimizer_memory() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let pm = PerfModel::new(&m, &c, &db);
        let cfg = balanced_init(&m, &c, 2).expect("init");
        let est = pm.evaluate_unchecked(&cfg);
        let cands = generate_with(
            &pm,
            &cfg,
            &est,
            Primitive::IncZero,
            0,
            Resource::Memory,
            GenOptions {
                enable_zero: true,
                ..GenOptions::default()
            },
        );
        assert_eq!(cands.len(), 1);
        let zest = pm.evaluate_unchecked(&cands[0].config);
        assert!(zest.stages[0].mem_opt < est.stages[0].mem_opt);
        assert!(zest.stages[0].dp_sync > est.stages[0].dp_sync);
        // Round trip back.
        let back = generate_with(
            &pm,
            &cands[0].config,
            &zest,
            Primitive::DecZero,
            0,
            Resource::Communication,
            GenOptions {
                enable_zero: true,
                ..GenOptions::default()
            },
        );
        assert_eq!(back[0].config.semantic_hash(), cfg.semantic_hash());
    }
}
