//! Feature-gated runtime invariant checks (`debug-invariants`).
//!
//! With the feature off (the default) every function here is an empty
//! `#[inline(always)]` stub, so release binaries pay nothing. With it on,
//! the transforms, the candidate generator, and the search panic at the
//! exact point an invariant breaks — the dynamic twin of the static
//! analyzers in `aceso-audit`.

use aceso_cluster::ClusterSpec;
use aceso_config::ParallelConfig;
use aceso_model::ModelGraph;

/// Panics unless `config` passes full validation against the model and
/// the cluster. Used where both are in scope (candidate generation, the
/// search's accept path).
#[cfg(feature = "debug-invariants")]
pub fn assert_valid(model: &ModelGraph, cluster: &ClusterSpec, config: &ParallelConfig, ctx: &str) {
    if let Err(e) = aceso_config::validate::validate(config, model, cluster) {
        panic!("debug-invariants[{ctx}]: invalid configuration: {e}");
    }
}

/// No-op stub (feature off).
#[cfg(not(feature = "debug-invariants"))]
#[inline(always)]
pub fn assert_valid(_: &ModelGraph, _: &ClusterSpec, _: &ParallelConfig, _: &str) {}

/// Panics unless `config` keeps the cluster-independent structural
/// invariants every transform must preserve: stage op ranges partition the
/// model, `tp·dp` matches each stage's GPU count, degrees stay powers of
/// two within the op's tp limit, partition dims exist, the microbatch
/// divides the global batch, every dp divides the microbatch, and ZeRO is
/// clamped off wherever `dp == 1`.
///
/// The cluster-size check is deliberately absent: transforms see no
/// cluster, they must merely conserve the configuration's own GPU total
/// (which [`assert_valid`] pins to the cluster at the call sites that
/// have one).
#[cfg(feature = "debug-invariants")]
pub fn assert_structure(model: &ModelGraph, config: &ParallelConfig, ctx: &str) {
    let mut expect = 0usize;
    for (i, s) in config.stages.iter().enumerate() {
        assert_eq!(
            s.op_start, expect,
            "debug-invariants[{ctx}]: stage {i} op range breaks the partition"
        );
        assert!(
            s.op_end > s.op_start,
            "debug-invariants[{ctx}]: stage {i} is empty"
        );
        assert_eq!(
            s.ops.len(),
            s.num_ops(),
            "debug-invariants[{ctx}]: stage {i} ops length mismatch"
        );
        expect = s.op_end;
        for (j, op) in s.ops.iter().enumerate() {
            let g = s.op_start + j;
            assert_eq!(
                op.gpus() as usize,
                s.gpus,
                "debug-invariants[{ctx}]: stage {i} op {g}: tp*dp != stage gpus"
            );
            assert!(
                op.tp.is_power_of_two() && op.dp.is_power_of_two(),
                "debug-invariants[{ctx}]: stage {i} op {g}: degrees not powers of two"
            );
            assert!(
                op.tp <= model.ops[g].tp_limit,
                "debug-invariants[{ctx}]: stage {i} op {g}: tp over operator limit"
            );
            assert!(
                usize::from(op.dim_index) < model.ops[g].partitions.len(),
                "debug-invariants[{ctx}]: stage {i} op {g}: bad partition dim"
            );
            assert!(
                config.microbatch.is_multiple_of(op.dp as usize),
                "debug-invariants[{ctx}]: stage {i} op {g}: dp does not divide microbatch"
            );
            assert!(
                !(op.zero && op.dp == 1),
                "debug-invariants[{ctx}]: stage {i} op {g}: unclamped zero on dp == 1"
            );
        }
    }
    assert_eq!(
        expect,
        model.len(),
        "debug-invariants[{ctx}]: op ranges do not cover the model"
    );
    assert!(
        config.microbatch > 0 && model.global_batch.is_multiple_of(config.microbatch),
        "debug-invariants[{ctx}]: microbatch does not divide the global batch"
    );
}

/// No-op stub (feature off).
#[cfg(not(feature = "debug-invariants"))]
#[inline(always)]
pub fn assert_structure(_: &ModelGraph, _: &ParallelConfig, _: &str) {}

#[cfg(all(test, feature = "debug-invariants"))]
mod tests {
    use super::*;
    use aceso_cluster::ClusterSpec;
    use aceso_config::balanced_init;
    use aceso_model::zoo::gpt3_custom;

    #[test]
    fn accepts_valid_config() {
        let model = gpt3_custom("t", 2, 256, 4, 128, 1000, 64);
        let cluster = ClusterSpec::v100(1, 4);
        let cfg = balanced_init(&model, &cluster, 2).expect("init");
        assert_structure(&model, &cfg, "test");
        assert_valid(&model, &cluster, &cfg, "test");
    }

    #[test]
    #[should_panic(expected = "unclamped zero")]
    fn panics_on_unclamped_zero() {
        let model = gpt3_custom("t", 2, 256, 4, 128, 1000, 64);
        let cluster = ClusterSpec::v100(1, 4);
        let mut cfg = balanced_init(&model, &cluster, 4).expect("init");
        cfg.stages[0].ops[0].zero = true; // dp == 1 in a 1-GPU stage
        assert_structure(&model, &cfg, "test");
    }
}
