//! Work-stealing frontier execution for the multi-hop search.
//!
//! Within one stage-count sub-search, each (resource, primitive) pair of
//! a multi-hop step is an independent *generation task*: generate the
//! primitive's candidates and score them. The serial search runs these
//! tasks lazily in a canonical order; this module runs the same tasks
//! speculatively on a pool of workers and lets the reducer replay the
//! results in exactly that canonical order, so everything observable —
//! events, counters, heap updates, visited-set contents, checkpoint
//! bytes — stays bit-identical to a single-threaded run.
//!
//! The contract (invariants `INV-ORDINAL`, `INV-MEMO`, `INV-VISITED`,
//! `INV-RNG`, `INV-STEALS`) is documented in `docs/SEARCH.md` and
//! enforced by `tests/search_golden.rs` / `tests/checkpoint_resume.rs`.
//!
//! Three pieces live here:
//!
//! * [`ShardedVisited`] — the visited-fingerprint set, sharded by
//!   semantic-hash bits so workers can read it without contending on one
//!   lock. Only the reducer writes (workers are idle at wave barriers
//!   when it does), which is what makes worker-side dedup decisions
//!   consistent with the serial replay.
//! * [`FrontierPool`] — a std-only work-stealing pool in the
//!   crossbeam-deque shape: one shared injector plus one deque per
//!   worker; a worker drains its own deque first, batch-grabs from the
//!   injector next, and steals from the back of a sibling's deque when
//!   both are empty (counted in the `search_steals` counter). The pool
//!   is generic over the task/result types so its scheduling can be
//!   tested deterministically without running a real search.
//! * [`run_wave_task`] — the concrete worker body: run candidate
//!   generation through a [`TracingEvaluator`], score every not-yet-
//!   visited candidate with the worker's private [`CachedEvaluator`],
//!   and ship the captured [`EvalTrace`]s back for canonical replay.

use crate::primitives::{generate_with, Candidate, GenOptions, Primitive, Resource};
use aceso_config::ParallelConfig;
use aceso_perf::{CachedEvaluator, ConfigEstimate, EvalTrace, TracingEvaluator};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// Number of visited-set shards (a power of two; the shard index is the
/// fingerprint's low bits).
const VISITED_SHARDS: usize = 16;

/// The visited-fingerprint set of one stage-count sub-search, sharded by
/// semantic hash so frontier workers can consult it lock-cheaply.
///
/// Writes happen only on the reducer thread, and only while every worker
/// is parked at a wave barrier — so a worker that observes a fingerprint
/// as visited can rely on it staying visited (the set is monotone), and
/// a worker that observes it as absent merely evaluates speculatively;
/// the reducer re-checks during the ordinal replay.
pub(crate) struct ShardedVisited {
    shards: Vec<RwLock<HashSet<u64>>>,
}

impl ShardedVisited {
    /// An empty set.
    pub(crate) fn new() -> Self {
        Self {
            shards: (0..VISITED_SHARDS)
                .map(|_| RwLock::new(HashSet::new()))
                .collect(),
        }
    }

    fn shard(&self, h: u64) -> &RwLock<HashSet<u64>> {
        &self.shards[(h as usize) & (VISITED_SHARDS - 1)]
    }

    /// Inserts a fingerprint; `true` when it was not present (the same
    /// contract as `HashSet::insert`).
    pub(crate) fn insert(&self, h: u64) -> bool {
        self.shard(h).write().expect("visited shard").insert(h)
    }

    /// Whether a fingerprint is present.
    pub(crate) fn contains(&self, h: u64) -> bool {
        self.shard(h).read().expect("visited shard").contains(&h)
    }

    /// All fingerprints in sorted order — the canonical checkpoint form,
    /// byte-identical to the single-`HashSet` export it replaced.
    pub(crate) fn export_sorted(&self) -> Vec<u64> {
        let mut all: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("visited shard")
                    .iter()
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable();
        all
    }
}

/// One generation task of a wave: apply `prim` toward `resource` on the
/// bottleneck `stage` of `config`. Tasks of one wave share the config
/// and estimate via `Arc` — workers never clone a `ParallelConfig` just
/// to read it.
pub(crate) struct WaveTask {
    /// The configuration the primitive rewrites.
    pub config: Arc<ParallelConfig>,
    /// Its estimate (candidate generators read per-stage breakdowns).
    pub est: Arc<ConfigEstimate>,
    /// The primitive to apply.
    pub prim: Primitive,
    /// Bottleneck stage index.
    pub stage: usize,
    /// Resource the primitive should relieve.
    pub resource: Resource,
    /// Generation toggles.
    pub gen_opts: GenOptions,
}

/// A worker's verdict on one generated candidate.
pub(crate) enum CandEval {
    /// The fingerprint was already visited when the worker looked — the
    /// replay counts it as deduplicated without ever evaluating it
    /// (visited-set monotonicity guarantees the replay agrees).
    Skipped {
        /// The candidate's semantic hash.
        hash: u64,
    },
    /// The worker evaluated the candidate speculatively.
    Done {
        /// The generated candidate (config + provenance).
        cand: Candidate,
        /// Its semantic hash, computed worker-side.
        hash: u64,
        /// The worker's estimate (bit-identical to what the canonical
        /// evaluator would compute — evaluation is a pure function).
        est: ConfigEstimate,
        /// Replayable per-stage memo trace of the evaluation.
        trace: EvalTrace,
    },
}

/// Everything one generation task produced, tagged implicitly with its
/// canonical ordinal by position in the wave's result vector.
pub(crate) struct TaskResult {
    /// Traces of the evaluations candidate generation itself performed
    /// (the attached recompute fix-up), in execution order.
    pub gen_traces: Vec<EvalTrace>,
    /// Per-candidate outcomes, in generation order.
    pub cands: Vec<CandEval>,
}

/// The worker body: generate `task.prim`'s candidates and score the
/// unvisited ones, capturing every evaluation as a replayable trace.
pub(crate) fn run_wave_task(
    ev: &CachedEvaluator<'_>,
    visited: &ShardedVisited,
    task: &WaveTask,
) -> TaskResult {
    let tev = TracingEvaluator::new(ev);
    let cands = generate_with(
        &tev,
        &task.config,
        &task.est,
        task.prim,
        task.stage,
        task.resource,
        task.gen_opts,
    );
    let gen_traces = tev.take_traces();
    let cands = cands
        .into_iter()
        .map(|cand| {
            let hash = cand.config.semantic_hash();
            if visited.contains(hash) {
                CandEval::Skipped { hash }
            } else {
                let (est, trace) = ev.evaluate_traced(&cand.config);
                CandEval::Done {
                    cand,
                    hash,
                    est,
                    trace,
                }
            }
        })
        .collect();
    TaskResult { gen_traces, cands }
}

/// State of the wave currently in flight.
struct WaveState<R> {
    /// Tasks submitted but not yet completed.
    pending: usize,
    /// Result slots, indexed by task ordinal.
    results: Vec<Option<R>>,
    /// Set when a worker panicked mid-task; the reducer re-raises.
    poisoned: bool,
}

/// A std-only work-stealing worker pool (shared injector + per-worker
/// deques + steal-on-empty), used wave-synchronously: the reducer
/// submits one wave of ordinal-tagged tasks, blocks until all complete,
/// and receives the results in ordinal order regardless of which worker
/// ran what when.
///
/// Generic over task (`T`) and result (`R`) so scheduling behaviour —
/// batch grabbing, stealing, shutdown — has deterministic unit tests
/// that don't involve the search.
pub(crate) struct FrontierPool<T, R> {
    /// Wave submission queue, shared by all workers.
    injector: Mutex<VecDeque<(usize, T)>>,
    /// Wakes workers when work arrives or shutdown is signalled.
    work_cv: Condvar,
    /// One deque per worker; the owner pops the front, thieves the back.
    deques: Vec<Mutex<VecDeque<(usize, T)>>>,
    /// The in-flight wave.
    wave: Mutex<WaveState<R>>,
    /// Wakes the reducer when the wave completes (or poisons).
    done_cv: Condvar,
    /// Tasks taken from a sibling's deque — the `search_steals` counter.
    steals: AtomicU64,
    /// Set under the injector lock by [`FrontierPool::shutdown`].
    stop: AtomicBool,
}

impl<T: Send, R: Send> FrontierPool<T, R> {
    /// A pool for `workers` worker threads (spawned separately via
    /// [`FrontierPool::spawn_workers`], which needs a thread scope).
    pub(crate) fn new(workers: usize) -> Self {
        assert!(workers >= 1, "a pool needs at least one worker");
        Self {
            injector: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            wave: Mutex::new(WaveState {
                pending: 0,
                results: Vec::new(),
                poisoned: false,
            }),
            done_cv: Condvar::new(),
            steals: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        }
    }

    /// Total steals so far.
    pub(crate) fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Spawns the worker threads into `scope`. `factory` runs once per
    /// worker *on that worker's thread* and returns the closure that
    /// executes tasks — which is how each worker gets its own private,
    /// non-`Sync` state (the search installs a per-worker
    /// [`CachedEvaluator`] this way).
    pub(crate) fn spawn_workers<'env, 'scope, G, W>(
        &'env self,
        scope: &'scope std::thread::Scope<'scope, 'env>,
        factory: &'env G,
    ) where
        G: Fn(usize) -> W + Sync,
        W: FnMut(&T) -> R,
        T: 'env,
        R: 'env,
    {
        for idx in 0..self.deques.len() {
            scope.spawn(move || {
                let mut run = factory(idx);
                self.worker_loop(idx, &mut run);
            });
        }
    }

    /// Submits one wave and blocks until every task has completed,
    /// returning the results in task-ordinal order. Panics (after waking
    /// everything up for a clean join) if a worker panicked.
    pub(crate) fn run_wave(&self, tasks: Vec<T>) -> Vec<R> {
        if tasks.is_empty() {
            return Vec::new();
        }
        let n = tasks.len();
        {
            let mut wave = self.wave.lock().expect("wave state");
            debug_assert_eq!(wave.pending, 0, "waves are strictly sequential");
            wave.pending = n;
            wave.results = (0..n).map(|_| None).collect();
        }
        {
            let mut inj = self.injector.lock().expect("injector");
            inj.extend(tasks.into_iter().enumerate());
            self.work_cv.notify_all();
        }
        let mut wave = self.wave.lock().expect("wave state");
        while wave.pending > 0 && !wave.poisoned {
            wave = self.done_cv.wait(wave).expect("wave state");
        }
        if wave.poisoned {
            drop(wave);
            self.shutdown(); // let the thread scope join cleanly
            panic!("a frontier worker panicked mid-task");
        }
        wave.results
            .drain(..)
            .map(|r| r.expect("every ordinal completed"))
            .collect()
    }

    /// Signals every worker to exit once the queues are drained. Called
    /// by the reducer after the last wave (queues are empty by then).
    pub(crate) fn shutdown(&self) {
        let _inj = self.injector.lock().expect("injector");
        self.stop.store(true, Ordering::Release);
        self.work_cv.notify_all();
    }

    fn worker_loop<W: FnMut(&T) -> R>(&self, idx: usize, run: &mut W) {
        while let Some((ordinal, task)) = self.next_task(idx) {
            let mut guard = PanicGuard {
                pool: self,
                armed: true,
            };
            let result = run(&task);
            guard.armed = false;
            drop(guard);
            let mut wave = self.wave.lock().expect("wave state");
            wave.results[ordinal] = Some(result);
            wave.pending -= 1;
            if wave.pending == 0 {
                self.done_cv.notify_all();
            }
        }
    }

    /// Own deque front → injector batch → steal a sibling's back → sleep.
    fn next_task(&self, idx: usize) -> Option<(usize, T)> {
        loop {
            if let Some(t) = self.deques[idx].lock().expect("own deque").pop_front() {
                return Some(t);
            }
            {
                let mut inj = self.injector.lock().expect("injector");
                if !inj.is_empty() {
                    // Grab a fair share in one go; extras go to our own
                    // deque where siblings can steal them back.
                    let batch = inj.len().div_ceil(self.deques.len()).max(1);
                    let first = inj.pop_front().expect("non-empty injector");
                    if batch > 1 {
                        let mut own = self.deques[idx].lock().expect("own deque");
                        for _ in 1..batch {
                            match inj.pop_front() {
                                Some(t) => own.push_back(t),
                                None => break,
                            }
                        }
                    }
                    return Some(first);
                }
            }
            for j in (0..self.deques.len()).filter(|&j| j != idx) {
                if let Some(t) = self.deques[j].lock().expect("sibling deque").pop_back() {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(t);
                }
            }
            let inj = self.injector.lock().expect("injector");
            if self.stop.load(Ordering::Acquire) {
                return None;
            }
            if inj.is_empty() {
                // Re-checked under the lock, so a submission between our
                // sweep and this wait cannot be missed. Work sitting in a
                // sibling's deque needs no wakeup: its owner is awake by
                // construction (a worker only sleeps with an empty deque).
                drop(self.work_cv.wait(inj).expect("injector"));
            }
        }
    }
}

/// Marks the in-flight wave poisoned if a task panics, so the reducer
/// wakes up and re-raises instead of waiting forever.
struct PanicGuard<'p, T, R> {
    pool: &'p FrontierPool<T, R>,
    armed: bool,
}

impl<T, R> Drop for PanicGuard<'_, T, R> {
    fn drop(&mut self) {
        if self.armed {
            // The wave mutex cannot be poisoned by us (we never hold it
            // while running tasks), but be tolerant anyway: this path
            // already reports a panic.
            let mut wave = match self.pool.wave.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            wave.poisoned = true;
            self.pool.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn sharded_visited_matches_hashset_semantics() {
        let v = ShardedVisited::new();
        let mut reference = HashSet::new();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..500 {
            x = x.wrapping_mul(0x2545_F491_4F6C_DD1D).rotate_left(17);
            let h = x % 97; // force collisions
            assert_eq!(v.insert(h), reference.insert(h));
            assert!(v.contains(h));
        }
        let mut expect: Vec<u64> = reference.into_iter().collect();
        expect.sort_unstable();
        assert_eq!(v.export_sorted(), expect);
    }

    #[test]
    fn waves_return_results_in_ordinal_order() {
        let pool: FrontierPool<usize, usize> = FrontierPool::new(4);
        let factory = |_idx: usize| |t: &usize| t * t;
        std::thread::scope(|scope| {
            pool.spawn_workers(scope, &factory);
            for round in 0..3 {
                let tasks: Vec<usize> = (0..32).map(|i| i + round).collect();
                let results = pool.run_wave(tasks);
                let expect: Vec<usize> = (0..32).map(|i| (i + round) * (i + round)).collect();
                assert_eq!(results, expect, "round {round}");
            }
            pool.shutdown();
        });
    }

    /// A task parked in a blocked worker's own deque can only run by
    /// being stolen — so the steal counter must move. Worker A pops
    /// `WaitFlag` (front of its deque) and blocks; `SetFlag` sits behind
    /// it, unreachable to A until the flag is set; worker B's only path
    /// to `SetFlag` is a steal. No interleaving avoids it.
    #[test]
    fn steal_on_empty_is_exercised_and_counted() {
        enum Job {
            WaitFlag,
            SetFlag,
        }
        let flag = (StdMutex::new(false), Condvar::new());
        let pool: FrontierPool<Job, ()> = FrontierPool::new(2);
        let factory = |_idx: usize| {
            let flag = &flag;
            move |job: &Job| match job {
                Job::WaitFlag => {
                    let mut set = flag.0.lock().expect("flag");
                    while !*set {
                        set = flag.1.wait(set).expect("flag");
                    }
                }
                Job::SetFlag => {
                    *flag.0.lock().expect("flag") = true;
                    flag.1.notify_all();
                }
            }
        };
        std::thread::scope(|scope| {
            pool.spawn_workers(scope, &factory);
            // Preload worker 0's deque directly so the schedule is pinned.
            {
                let mut wave = pool.wave.lock().expect("wave");
                wave.pending = 2;
                wave.results = vec![None, None];
            }
            {
                let mut own = pool.deques[0].lock().expect("deque");
                own.push_back((0, Job::WaitFlag));
                own.push_back((1, Job::SetFlag));
                let _inj = pool.injector.lock().expect("injector");
                pool.work_cv.notify_all();
            }
            let mut wave = pool.wave.lock().expect("wave");
            while wave.pending > 0 {
                wave = pool.done_cv.wait(wave).expect("wave");
            }
            drop(wave);
            pool.shutdown();
        });
        assert!(
            pool.steals() >= 1,
            "SetFlag can only have run via a steal, got {} steals",
            pool.steals()
        );
    }

    #[test]
    fn shutdown_with_no_work_joins_cleanly() {
        let pool: FrontierPool<usize, usize> = FrontierPool::new(3);
        let factory = |_idx: usize| |t: &usize| *t;
        std::thread::scope(|scope| {
            pool.spawn_workers(scope, &factory);
            pool.shutdown();
        });
        assert_eq!(pool.steals(), 0);
    }
}
